//===- suites/UndefSuite.cpp - The custom undefinedness suite -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// 178 test pairs over 70 behaviors. Layout per behavior: catalog id,
// static flag, then one add() per test with the undefined program and
// its defined control. Tests are deliberately small and single-purpose
// (one behavior per program, paper section 5.2.2); a unit test asserts
// the totals 178 / 70 / 42.
//
//===----------------------------------------------------------------------===//

#include "suites/UndefSuite.h"

#include "support/Strings.h"
#include "ub/Catalog.h"

#include <set>

using namespace cundef;

namespace {

void add(std::vector<TestCase> &Out, uint16_t Id, bool Static,
         const char *Tag, const char *Bad, const char *Good) {
  TestCase Test;
  Test.Name = strFormat("ub%03u_%s", Id, Tag);
  Test.CatalogId = Id;
  Test.StaticBehavior = Static;
  Test.Bad = Bad;
  Test.Good = Good;
  Out.push_back(std::move(Test));
}

std::vector<TestCase> buildSuite() {
  std::vector<TestCase> S;

  //===--- Dynamic core behaviors (the 42 of section 5.2.2) -------------===//

  // 1: division by zero (4 tests)
  add(S, 1, false, "direct",
      "int main(void) { int d = 0; return 5 / d; }\n",
      "int main(void) { int d = 5; return 5 / d; }\n");
  add(S, 1, false, "via_call",
      "static int denom(void) { return 0; }\n"
      "int main(void) { return 10 / denom(); }\n",
      "static int denom(void) { return 2; }\n"
      "int main(void) { return 10 / denom(); }\n");
  add(S, 1, false, "loop_invariant",
      "#include <stdio.h>\n"
      "int main(void) {\n"
      "  int r = 0, d = 0, i;\n"
      "  for (i = 0; i < 5; i++) { printf(\"%d\\n\", i); r += 5 / d; }\n"
      "  return r;\n}\n",
      "#include <stdio.h>\n"
      "int main(void) {\n"
      "  int r = 0, d = 1, i;\n"
      "  for (i = 0; i < 5; i++) { printf(\"%d\\n\", i); r += 5 / d; }\n"
      "  return r;\n}\n");
  add(S, 1, false, "compound",
      "int main(void) { int x = 8, d = 0; x /= d; return x; }\n",
      "int main(void) { int x = 8, d = 2; x /= d; return x; }\n");

  // 2: remainder by zero (3 tests)
  add(S, 2, false, "direct",
      "int main(void) { int d = 0; return 5 % d; }\n",
      "int main(void) { int d = 3; return 5 % d; }\n");
  add(S, 2, false, "computed",
      "int main(void) { int a = 4; return 9 % (a - 4); }\n",
      "int main(void) { int a = 4; return 9 % (a + 4); }\n");
  add(S, 2, false, "compound",
      "int main(void) { int x = 9, d = 0; x %= d; return x; }\n",
      "int main(void) { int x = 9, d = 4; x %= d; return x; }\n");

  // 3: signed overflow (4 tests)
  add(S, 3, false, "add_max",
      "int main(void) { int x = 2147483647; return (x + 1) != 0; }\n",
      "int main(void) { int x = 2147483646; return (x + 1) != 0; }\n");
  add(S, 3, false, "mul",
      "int main(void) { int x = 1000000; return (x * x) != 0; }\n",
      "int main(void) { int x = 1000; return (x * x) != 0; }\n");
  add(S, 3, false, "negate_min",
      "int main(void) { int x = -2147483647 - 1; return (-x) != 0; }\n",
      "int main(void) { int x = -2147483647; return (-x) != 0; }\n");
  add(S, 3, false, "wraparound_check",
      // The paper's section 2.3 example: if (x + 1 < x) overflows.
      "int main(void) {\n"
      "  int x = 2147483647;\n"
      "  if (x + 1 < x) { return 1; }\n"
      "  return 0;\n}\n",
      "int main(void) {\n"
      "  int x = 100;\n"
      "  if (x + 1 < x) { return 1; }\n"
      "  return 0;\n}\n");

  // 4: shift count too large (3 tests)
  add(S, 4, false, "left",
      "int main(void) { int x = 1; return (x << 32) != 0; }\n",
      "int main(void) { int x = 1; return (x << 3) != 0; }\n");
  add(S, 4, false, "right",
      "int main(void) { int x = 256; return (x >> 40) != 0; }\n",
      "int main(void) { int x = 256; return (x >> 4) != 0; }\n");
  add(S, 4, false, "variable",
      "int main(void) { int n = 33; return (1 << n) != 0; }\n",
      "int main(void) { int n = 13; return (1 << n) != 0; }\n");

  // 5: left shift of negative value (3 tests)
  add(S, 5, false, "direct",
      "int main(void) { int x = -1; return (x << 2) != 0; }\n",
      "int main(void) { int x = 1; return (x << 2) != 0; }\n");
  add(S, 5, false, "not_representable",
      "int main(void) { int x = 1073741824; return (x << 1) != 0; }\n",
      "int main(void) { int x = 1073741; return (x << 1) != 0; }\n");
  add(S, 5, false, "var",
      "int main(void) { int v = -8; int s = v << 1; return s != 0; }\n",
      "int main(void) { int v = 8; int s = v << 1; return s != 0; }\n");

  // 6: null pointer dereference (4 tests)
  add(S, 6, false, "read",
      "int main(void) { int *p = 0; return *p; }\n",
      "int main(void) { int x = 7; int *p = &x; return *p; }\n");
  add(S, 6, false, "write",
      "int main(void) { int *p = 0; *p = 1; return 0; }\n",
      "int main(void) { int x; int *p = &x; *p = 1; return x; }\n");
  add(S, 6, false, "stmt_discarded",
      // The paper's section 2.3 example: *(char*)NULL as a statement.
      "#include <stddef.h>\n"
      "int main(void) {\n"
      "  char *p = NULL;\n"
      "  *p;\n"
      "  return 0;\n}\n",
      "#include <stddef.h>\n"
      "int main(void) {\n"
      "  char c = 'x';\n"
      "  char *p = &c;\n"
      "  *p;\n"
      "  return 0;\n}\n");
  add(S, 6, false, "arrow",
      "struct box { int v; };\n"
      "int main(void) { struct box *p = 0; return p->v; }\n",
      "struct box { int v; };\n"
      "int main(void) { struct box b; b.v = 3; struct box *p = &b;"
      " return p->v; }\n");

  // 7: dereference of a void pointer (2 tests)
  add(S, 7, false, "direct",
      "int main(void) { int x = 1; void *p = &x; *p; return 0; }\n",
      "int main(void) { int x = 1; int *p = &x; *p; return 0; }\n");
  add(S, 7, false, "cast_chain",
      "int main(void) { int x = 2; void *p = &x; *(void*)p; return 0; }\n",
      "int main(void) { int x = 2; void *p = &x; *(int*)p; return 0; }\n");

  // 8: dereference of a dangling (forged) pointer (2 tests)
  add(S, 8, false, "int_forged",
      "int main(void) { int *p = (int*)1234; return *p; }\n",
      "int main(void) { int x = 1234; int *p = &x; return *p; }\n");
  add(S, 8, false, "arith_forged",
      "int main(void) { long a = 64; int *p = (int*)(a * 2); *p = 1;"
      " return 0; }\n",
      "int main(void) { int t = 0; int *p = &t; *p = 1; return t; }\n");

  // 9: read out of bounds (4 tests)
  add(S, 9, false, "stack_index",
      "int main(void) { int a[4]; a[0] = 1; return a[6]; }\n",
      "int main(void) { int a[4]; a[0] = 1; return a[0]; }\n");
  add(S, 9, false, "negative",
      "int main(void) { int a[4]; a[0] = 1; return a[-2]; }\n",
      "int main(void) { int a[4]; a[0] = 1; return a[0]; }\n");
  add(S, 9, false, "heap",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(4 * sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 5;\n  int r = p[9];\n  free(p);\n  return r;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(4 * sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 5;\n  int r = p[0];\n  free(p);\n  return r;\n}\n");
  add(S, 9, false, "via_pointer",
      "int main(void) { int a[3]; a[2] = 9; int *p = a; return *(p + 2)"
      " + p[3 - 3] + p[5 - 1]; }\n",
      "int main(void) { int a[3]; a[0] = 1; a[1] = 2; a[2] = 9;"
      " int *p = a; return *(p + 2) + p[0] + p[1]; }\n");

  // 10: write out of bounds (4 tests)
  add(S, 10, false, "stack_index",
      "int main(void) { int a[4]; a[5] = 3; return 0; }\n",
      "int main(void) { int a[4]; a[3] = 3; return a[3]; }\n");
  add(S, 10, false, "heap",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  p[8] = 'x';\n  free(p);\n  return 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  p[7] = 'x';\n  free(p);\n  return 0;\n}\n");
  add(S, 10, false, "strcpy_smash",
      "#include <string.h>\n"
      "int main(void) { char buf[4]; strcpy(buf, \"too long\");"
      " return buf[0]; }\n",
      "#include <string.h>\n"
      "int main(void) { char buf[16]; strcpy(buf, \"shorter\");"
      " return buf[0]; }\n");
  add(S, 10, false, "loop_off_by_one",
      "int main(void) {\n"
      "  int a[5]; int i;\n"
      "  for (i = 0; i <= 5; i++) { a[i] = i; }\n"
      "  return a[0];\n}\n",
      "int main(void) {\n"
      "  int a[5]; int i;\n"
      "  for (i = 0; i < 5; i++) { a[i] = i; }\n"
      "  return a[0];\n}\n");

  // 12: access to an object whose lifetime ended (3 tests)
  add(S, 12, false, "block_exit",
      "int main(void) {\n"
      "  int *p;\n"
      "  { int x = 3; p = &x; }\n"
      "  return *p;\n}\n",
      "int main(void) {\n"
      "  int x = 3;\n  int *p;\n"
      "  { p = &x; }\n"
      "  return *p;\n}\n");
  add(S, 12, false, "loop_body_scope",
      "int main(void) {\n"
      "  int *p = 0; int i;\n"
      "  for (i = 0; i < 2; i++) { int local = i; p = &local; }\n"
      "  return *p;\n}\n",
      "int main(void) {\n"
      "  int keep = 0; int *p = &keep; int i;\n"
      "  for (i = 0; i < 2; i++) { keep = i; p = &keep; }\n"
      "  return *p;\n}\n");
  add(S, 12, false, "write_dead",
      "int main(void) {\n"
      "  int *p;\n"
      "  { int x = 1; p = &x; }\n"
      "  *p = 9;\n  return 0;\n}\n",
      "int main(void) {\n"
      "  int x = 1; int *p;\n"
      "  { p = &x; }\n"
      "  *p = 9;\n  return x;\n}\n");

  // 13: pointer arithmetic out of bounds (4 tests)
  add(S, 13, false, "past_one_past",
      "int main(void) { int a[3]; int *p = a + 5; return p == a; }\n",
      "int main(void) { int a[3]; int *p = a + 3; return p == a; }\n");
  add(S, 13, false, "before_start",
      "int main(void) { int a[3]; int *p = a - 1; return p == a; }\n",
      "int main(void) { int a[3]; int *p = a + 0; return p == a; }\n");
  add(S, 13, false, "increment_walk",
      "int main(void) {\n"
      "  int a[2]; int *p = a; int i;\n"
      "  for (i = 0; i < 4; i++) { p++; }\n"
      "  return p == a;\n}\n",
      "int main(void) {\n"
      "  int a[4]; int *p = a; int i;\n"
      "  for (i = 0; i < 4; i++) { p++; }\n"
      "  return p == a;\n}\n");
  add(S, 13, false, "compound_add",
      "int main(void) { int a[4]; int *p = a; p += 9; return p != 0; }\n",
      "int main(void) { int a[16]; int *p = a; p += 9; return p != 0; }\n");

  // 14: subtraction of pointers into different objects (3 tests)
  add(S, 14, false, "two_arrays",
      "int main(void) { int a[3]; int b[3]; return (int)(&a[0] - &b[0]);"
      " }\n",
      "int main(void) { int a[3]; return (int)(&a[2] - &a[0]); }\n");
  add(S, 14, false, "two_locals",
      "int main(void) { int x; int y; return (int)(&x - &y); }\n",
      "int main(void) { int a[2]; return (int)(&a[1] - &a[0]); }\n");
  add(S, 14, false, "heap_blocks",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4); char *q = (char*)malloc(4);\n"
      "  if (!p || !q) { return 1; }\n"
      "  long d = p - q;\n  free(p); free(q);\n  return d != 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  long d = (p + 3) - p;\n  free(p);\n  return d != 3;\n}\n");

  // 15: relational comparison of pointers into different objects (3)
  add(S, 15, false, "two_locals",
      // The paper's section 4.3.1 example: &a < &b is undefined...
      "int main(void) {\n"
      "  int a, b;\n"
      "  if (&a < &b) { return 1; }\n"
      "  return 0;\n}\n",
      // ...but members of one struct are ordered.
      "int main(void) {\n"
      "  struct { int a; int b; } s;\n"
      "  if (&s.a < &s.b) { return 1; }\n"
      "  return 0;\n}\n");
  add(S, 15, false, "array_vs_scalar",
      "int main(void) { int a[2]; int x; return &x > &a[0]; }\n",
      "int main(void) { int a[2]; return &a[1] > &a[0]; }\n");
  add(S, 15, false, "null_relational",
      "int main(void) { int x; int *p = &x; int *q = 0; return p >= q; }\n",
      "int main(void) { int x; int *p = &x; int *q = p; return p >= q; }\n");

  // 16: unsequenced side effects (4 tests)
  add(S, 16, false, "two_writes",
      // The paper's section 2.3 example: (x = 1) + (x = 2).
      "int main(void) {\n"
      "  int x = 0;\n"
      "  return (x = 1) + (x = 2);\n}\n",
      "int main(void) {\n"
      "  int x = 0;\n"
      "  x = 1;\n  x = 2;\n  return x + x;\n}\n");
  add(S, 16, false, "write_and_read",
      "int main(void) { int x = 1; int r = x + x++; return r; }\n",
      "int main(void) { int x = 1; int r = x + x; x++; return r; }\n");
  add(S, 16, false, "double_increment",
      "int main(void) { int i = 0; i = i++ + ++i; return i; }\n",
      "int main(void) { int i = 0; i++; ++i; return i; }\n");
  add(S, 16, false, "call_args",
      "static int pair(int a, int b) { return a * 10 + b; }\n"
      "int main(void) { int x = 0; return pair(x = 1, x = 2); }\n",
      "static int pair(int a, int b) { return a * 10 + b; }\n"
      "int main(void) { int x = 1; int y = 2; return pair(x, y); }\n");

  // 17: write to const through a non-const lvalue (4 tests)
  add(S, 17, false, "strchr_launder",
      // The paper's section 4.2.2 strchr example, verbatim in spirit.
      "#include <string.h>\n"
      "int main(void) {\n"
      "  const char p[] = \"hello\";\n"
      "  char *q = strchr(p, p[0]);\n"
      "  *q = 'H';\n"
      "  return 0;\n}\n",
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char p[] = \"hello\";\n"
      "  char *q = strchr(p, p[0]);\n"
      "  *q = 'H';\n"
      "  return p[0] != 'H';\n}\n");
  add(S, 17, false, "cast_away",
      "int main(void) { const int c = 1; int *p = (int*)&c; *p = 2;"
      " return c; }\n",
      "int main(void) { int c = 1; int *p = &c; *p = 2; return c; }\n");
  add(S, 17, false, "const_array_elem",
      "int main(void) { const int a[2] = {1, 2}; int *p = (int*)&a[1];"
      " *p = 5; return a[1]; }\n",
      "int main(void) { int a[2] = {1, 2}; int *p = &a[1]; *p = 5;"
      " return a[1]; }\n");
  add(S, 17, false, "memset_const",
      "#include <string.h>\n"
      "int main(void) { const int c = 7; memset((void*)&c, 0, sizeof c);"
      " return c; }\n",
      "#include <string.h>\n"
      "int main(void) { int c = 7; memset((void*)&c, 0, sizeof c);"
      " return c; }\n");

  // 18: modifying a string literal (4 tests)
  add(S, 18, false, "direct",
      "int main(void) { char *s = \"abc\"; s[0] = 'A'; return 0; }\n",
      "int main(void) { char s[] = \"abc\"; s[0] = 'A'; return s[0]; }\n");
  add(S, 18, false, "via_deref",
      "int main(void) { char *s = \"xyz\"; *s = 'X'; return 0; }\n",
      "int main(void) { char s[4] = \"xyz\"; *s = 'X'; return *s; }\n");
  add(S, 18, false, "strcpy_target",
      "#include <string.h>\n"
      "int main(void) { char *s = \"buffer\"; strcpy(s, \"hi\");"
      " return 0; }\n",
      "#include <string.h>\n"
      "int main(void) { char s[8] = \"buffer\"; strcpy(s, \"hi\");"
      " return s[0]; }\n");
  add(S, 18, false, "increment_char",
      "int main(void) { char *s = \"q\"; s[0]++; return 0; }\n",
      "int main(void) { char s[2] = \"q\"; s[0]++; return s[0]; }\n");

  // 19: use of an indeterminate value (4 tests)
  add(S, 19, false, "plain_int",
      "int main(void) { int x; return x; }\n",
      "int main(void) { int x = 4; return x; }\n");
  add(S, 19, false, "arith_use",
      "int main(void) { int x; int y = x + 1; return y; }\n",
      "int main(void) { int x = 1; int y = x + 1; return y; }\n");
  add(S, 19, false, "branch_use",
      "int main(void) { int flag; if (flag) { return 1; } return 0; }\n",
      "int main(void) { int flag = 0; if (flag) { return 1; }"
      " return 0; }\n");
  add(S, 19, false, "heap_uninit",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  int v = *p;\n  free(p);\n  return v;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  *p = 3;\n  int v = *p;\n  free(p);\n  return v;\n}\n");

  // 22: call through incompatible function pointer (4 tests)
  add(S, 22, false, "wrong_params",
      "static int two(int a, int b) { return a + b; }\n"
      "int main(void) { int (*f)(int) = (int (*)(int))two;"
      " return f(1); }\n",
      "static int two(int a, int b) { return a + b; }\n"
      "int main(void) { int (*f)(int, int) = two; return f(1, 2) - 3; }\n");
  add(S, 22, false, "wrong_return",
      "static double d(int a) { return a + 0.5; }\n"
      "int main(void) { int (*f)(int) = (int (*)(int))d;"
      " return f(1); }\n",
      "static double d(int a) { return a + 0.5; }\n"
      "int main(void) { double (*f)(int) = d; return (int)f(1) - 1; }\n");
  add(S, 22, false, "object_as_function",
      "int main(void) { int x = 5; int (*f)(void) = (int (*)(void))&x;"
      " return f(); }\n",
      "static int five(void) { return 5; }\n"
      "int main(void) { int (*f)(void) = five; return f() - 5; }\n");
  add(S, 22, false, "noproto_wrong_type",
      "static int wants_int(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())wants_int;"
      " return f(1.5); }\n",
      "static int wants_int(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())wants_int;"
      " return f(1) - 1; }\n");

  // 23: wrong number of arguments (3 tests)
  add(S, 23, false, "too_few",
      "static int two(int a, int b) { return a + b; }\n"
      "int main(void) { int (*f)() = (int (*)())two; return f(1); }\n",
      "static int two(int a, int b) { return a + b; }\n"
      "int main(void) { int (*f)() = (int (*)())two;"
      " return f(1, 2) - 3; }\n");
  add(S, 23, false, "too_many",
      "static int one(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())one;"
      " return f(1, 2, 3) - 1; }\n",
      "static int one(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())one; return f(1) - 1; }\n");
  add(S, 23, false, "zero_args",
      "static int one(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())one; return f(); }\n",
      "static int one(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())one; return f(7) - 7; }\n");

  // 24: value of a call used though no value was returned (2 tests)
  add(S, 24, false, "falls_off_end",
      "static int f(int x) { if (x > 10) { return 1; } }\n"
      "int main(void) { return f(1); }\n",
      "static int f(int x) { if (x > 10) { return 1; } return 0; }\n"
      "int main(void) { return f(1); }\n");
  add(S, 24, false, "plain_return",
      "static int g(void) { return; }\n"
      "int main(void) { return g(); }\n",
      "static int g(void) { return 0; }\n"
      "int main(void) { return g(); }\n");

  // 25: access through a disallowed lvalue type / aliasing (4 tests)
  add(S, 25, false, "float_as_int",
      "int main(void) { float f = 1.5f; int *p = (int*)&f; return *p; }\n",
      "int main(void) { float f = 1.5f; float *p = &f;"
      " return *p > 1.0f; }\n");
  add(S, 25, false, "int_as_float",
      "int main(void) { int i = 42; float *p = (float*)&i;"
      " return *p > 0.0f; }\n",
      "int main(void) { int i = 42; int *p = &i; return *p != 42; }\n");
  add(S, 25, false, "char_read_allowed",
      "int main(void) { long v = 70000; short *p = (short*)&v;"
      " return *p != 0; }\n",
      // Character-type access is always allowed (C11 6.5p7).
      "int main(void) { long v = 70000; unsigned char *p ="
      " (unsigned char*)&v; return *p != 112; }\n");
  add(S, 25, false, "union_ok_control",
      "int main(void) { double d = 1.0; long *p = (long*)&d;"
      " return *p != 0; }\n",
      "union pun { double d; long l; };\n"
      "int main(void) { union pun u; u.d = 1.0; long *p = &u.l;"
      " return *p == 0; }\n");

  // 26: float to int conversion overflow (3 tests)
  add(S, 26, false, "too_big",
      "int main(void) { double d = 3000000000.0; int x = (int)d;"
      " return x; }\n",
      "int main(void) { double d = 3000.0; int x = (int)d;"
      " return x != 3000; }\n");
  add(S, 26, false, "negative",
      "int main(void) { double d = -1e12; int x = (int)d; return x; }\n",
      "int main(void) { double d = -12.0; int x = (int)d;"
      " return x != -12; }\n");
  add(S, 26, false, "float_source",
      "int main(void) { float f = 1e10f; int x = (int)f; return x; }\n",
      "int main(void) { float f = 10.0f; int x = (int)f;"
      " return x != 10; }\n");

  // 28: arithmetic on a null pointer (2 tests)
  add(S, 28, false, "add",
      "int main(void) { int *p = 0; int *q = p + 1; return q == 0; }\n",
      "int main(void) { int a[2]; int *p = a; int *q = p + 1;"
      " return q == a; }\n");
  add(S, 28, false, "increment",
      "int main(void) { char *p = 0; p++; return p == 0; }\n",
      "int main(void) { char a[2]; char *p = a; p++; return p == a; }\n");

  // 29: dereference of a one-past-the-end pointer (3 tests)
  add(S, 29, false, "read",
      "int main(void) { int a[3]; a[0] = 1; int *p = a + 3; return *p; }\n",
      "int main(void) { int a[3]; a[2] = 1; int *p = a + 3;"
      " return *(p - 1); }\n");
  add(S, 29, false, "write",
      "int main(void) { int a[2]; int *end = a + 2; *end = 5;"
      " return 0; }\n",
      "int main(void) { int a[2]; int *end = a + 2; *(end - 1) = 5;"
      " return a[1]; }\n");
  add(S, 29, false, "loop_boundary",
      "int main(void) {\n"
      "  int a[3]; int *p; int sum = 0;\n"
      "  for (p = a; p <= a + 3; p++) { *p = 1; sum += *p; }\n"
      "  return sum;\n}\n",
      "int main(void) {\n"
      "  int a[3]; int *p; int sum = 0;\n"
      "  for (p = a; p < a + 3; p++) { *p = 1; sum += *p; }\n"
      "  return sum;\n}\n");

  // 30: use of an uninitialized pointer (3 tests)
  add(S, 30, false, "deref",
      "int main(void) { int *p; return *p; }\n",
      "int main(void) { int x = 2; int *p = &x; return *p; }\n");
  add(S, 30, false, "write",
      "int main(void) { int *p; *p = 1; return 0; }\n",
      "int main(void) { int x; int *p = &x; *p = 1; return x; }\n");
  add(S, 30, false, "struct_member_ptr",
      "struct holder { int *p; };\n"
      "int main(void) { struct holder h; return *h.p; }\n",
      "struct holder { int *p; };\n"
      "int main(void) { int x = 1; struct holder h; h.p = &x;"
      " return *h.p; }\n");

  // 32: negative shift count (2 tests)
  add(S, 32, false, "left",
      "int main(void) { int n = -2; return (4 << n) != 0; }\n",
      "int main(void) { int n = 2; return (4 << n) != 0; }\n");
  add(S, 32, false, "right",
      "int main(void) { int n = -1; return (4 >> n) != 0; }\n",
      "int main(void) { int n = 1; return (4 >> n) != 0; }\n");

  // 36: escaped stack address used after return (4 tests)
  add(S, 36, false, "return_local",
      "static int *leak(void) { int x = 5; return &x; }\n"
      "int main(void) { int *p = leak(); return *p; }\n",
      "static int *pass(int *p) { return p; }\n"
      "int main(void) { int x = 5; int *p = pass(&x); return *p; }\n");
  add(S, 36, false, "return_array",
      "static int *leak(void) { int a[2]; a[0] = 1; return a; }\n"
      "int main(void) { int *p = leak(); return p[0]; }\n",
      "static int fill(int *a) { a[0] = 1; return a[0]; }\n"
      "int main(void) { int a[2]; return fill(a); }\n");
  add(S, 36, false, "write_after_return",
      "static int *leak(void) { int x = 5; return &x; }\n"
      "int main(void) { int *p = leak(); *p = 1; return 0; }\n",
      "int main(void) { int x = 5; int *p = &x; *p = 1; return x - 1; }\n");
  add(S, 36, false, "param_escape",
      "static int *leak(int v) { return &v; }\n"
      "int main(void) { int *p = leak(3); return *p; }\n",
      "int main(void) { int v = 3; int *p = &v; return *p; }\n");

  // 52: object referred to outside of its lifetime (2 tests)
  add(S, 52, false, "if_scope",
      "int main(void) {\n"
      "  int *p = 0; int c = 1;\n"
      "  if (c) { int inner = 4; p = &inner; }\n"
      "  return *p;\n}\n",
      "int main(void) {\n"
      "  int outer = 4; int *p = 0; int c = 1;\n"
      "  if (c) { p = &outer; }\n"
      "  return *p;\n}\n");
  add(S, 52, false, "reentered_block",
      "int main(void) {\n"
      "  int *saved = 0; int i; int r = 0;\n"
      "  for (i = 0; i < 2; i++) {\n"
      "    int fresh = i + 1;\n"
      "    if (i == 1) { r = *saved; }\n"
      "    saved = &fresh;\n"
      "  }\n"
      "  return r;\n}\n",
      "int main(void) {\n"
      "  int stable = 0; int *saved = &stable; int i; int r = 0;\n"
      "  for (i = 0; i < 2; i++) {\n"
      "    stable = i + 1;\n"
      "    if (i == 1) { r = *saved; }\n"
      "  }\n"
      "  return r;\n}\n");

  // 53: value of a dangling pointer used (not dereferenced) (2 tests)
  add(S, 53, false, "arith_after_free",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  char *q = p + 1;\n  return q == p;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  char *q = p + 1;\n  int r = q == p;\n  free(p);\n"
      "  return r;\n}\n");
  add(S, 53, false, "compare_after_scope",
      "int main(void) {\n"
      "  int *p;\n"
      "  { int x = 1; p = &x; }\n"
      "  return p < p + 1;\n}\n",
      "int main(void) {\n"
      "  int x = 1; int *p;\n"
      "  { p = &x; }\n"
      "  return p < p + 1;\n}\n");

  // 54: trap representation read through a non-character lvalue (2)
  add(S, 54, false, "partial_pointer_copy",
      // The paper's section 4.3.2 example: all pointer bytes must be
      // copied before the pointer may be used.
      "int main(void) {\n"
      "  int x = 5, y = 6;\n"
      "  int *p = &x, *q = &y;\n"
      "  unsigned char *a = (unsigned char*)&p;\n"
      "  unsigned char *b = (unsigned char*)&q;\n"
      "  unsigned long i;\n"
      "  for (i = 0; i < sizeof p - 1; i++) { a[i] = b[i]; }\n"
      "  return *p;\n}\n",
      "int main(void) {\n"
      "  int x = 5, y = 6;\n"
      "  int *p = &x, *q = &y;\n"
      "  unsigned char *a = (unsigned char*)&p;\n"
      "  unsigned char *b = (unsigned char*)&q;\n"
      "  unsigned long i;\n"
      "  for (i = 0; i < sizeof p; i++) { a[i] = b[i]; }\n"
      "  return *p - 6;\n}\n");
  add(S, 54, false, "short_from_uninit",
      "int main(void) { short s; short t = s; return t; }\n",
      "int main(void) { short s = 1; short t = s; return t - 1; }\n");

  // 55: trap representation produced by a side effect (1 test)
  add(S, 55, false, "store_indeterminate",
      "int main(void) { int a; int b; b = a; return 0; }\n",
      "int main(void) { int a = 1; int b; b = a; return b - 1; }\n");

  // 57: lvalue of incomplete type used (1 test)
  add(S, 57, false, "incomplete_array",
      "extern int table[];\n"
      "int main(void) { return table[0]; }\n",
      "int table[] = { 0 };\n"
      "int main(void) { return table[0]; }\n");

  // 58: uninitialized register-eligible object used (2 tests)
  add(S, 58, false, "register_int",
      "int main(void) { register int r; return r; }\n",
      "int main(void) { register int r = 0; return r; }\n");
  add(S, 58, false, "never_addressed",
      "int main(void) { int narrow; int wide = narrow * 2; return wide; }\n",
      "int main(void) { int narrow = 3; int wide = narrow * 2;"
      " return wide - 6; }\n");

  // 60: converted function pointer called with incompatible type (2)
  add(S, 60, false, "round_trip_missing",
      "static int real(int a) { return a; }\n"
      "int main(void) {\n"
      "  void (*v)(void) = (void (*)(void))real;\n"
      "  v();\n  return 0;\n}\n",
      "static int real(int a) { return a; }\n"
      "int main(void) {\n"
      "  void (*v)(void) = (void (*)(void))real;\n"
      "  int (*back)(int) = (int (*)(int))v;\n"
      "  return back(2) - 2;\n}\n");
  add(S, 60, false, "void_vs_int_return",
      "static void quiet(void) { }\n"
      "int main(void) { int (*f)(void) = (int (*)(void))quiet;"
      " return f(); }\n",
      "static int loud(void) { return 0; }\n"
      "int main(void) { int (*f)(void) = loud; return f(); }\n");

  // 61: exceptional condition during expression evaluation (2 tests)
  add(S, 61, false, "nested_overflow",
      "int main(void) { int big = 2000000000;"
      " return (big + big) != 0; }\n",
      "int main(void) { long big = 2000000000;"
      " return (big + big) == 0; }\n");
  add(S, 61, false, "min_div_minus_one",
      "int main(void) { int m = -2147483647 - 1; int d = -1;"
      " return m / d; }\n",
      "int main(void) { int m = -2147483647; int d = -1;"
      " return (m / d) != 2147483647; }\n");

  // 62: unary * applied to an invalid value (2 tests)
  add(S, 62, false, "freed",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  *p = 2;\n  free(p);\n  return *p;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  *p = 2;\n  int r = *p;\n  free(p);\n  return r - 2;\n}\n");
  add(S, 62, false, "misaligned_forged",
      "int main(void) { int a[2]; a[0] = 1; a[1] = 2;\n"
      "  long addr = 3;\n"
      "  int *p = (int*)addr;\n"
      "  return *p;\n}\n",
      "int main(void) { int a[2]; a[0] = 1; a[1] = 2;\n"
      "  int *p = &a[1];\n"
      "  return *p - 2;\n}\n");

  // 63: subscripting a pointer that is not into an array (2 tests)
  add(S, 63, false, "scalar_object",
      "int main(void) { int x = 1; int *p = &x; return p[2]; }\n",
      "int main(void) { int a[3]; a[2] = 1; int *p = a; return p[2]; }\n");
  add(S, 63, false, "struct_field_overrun",
      "struct pair { int a; int b; };\n"
      "int main(void) { struct pair s; s.a = 1; s.b = 2;\n"
      "  int *p = &s.a;\n  return p[2];\n}\n",
      "struct pair { int a; int b; };\n"
      "int main(void) { struct pair s; s.a = 1; s.b = 2;\n"
      "  int *p = &s.a;\n  return p[0];\n}\n");

  // 64: array subscript out of range though storage is accessible (2)
  add(S, 64, false, "inner_dimension",
      "int main(void) {\n"
      "  int m[2][3]; int i, j;\n"
      "  for (i = 0; i < 2; i++) { for (j = 0; j < 3; j++) {"
      " m[i][j] = i + j; } }\n"
      "  return m[0][4];\n}\n",
      "int main(void) {\n"
      "  int m[2][3]; int i, j;\n"
      "  for (i = 0; i < 2; i++) { for (j = 0; j < 3; j++) {"
      " m[i][j] = i + j; } }\n"
      "  return m[1][1];\n}\n");
  add(S, 64, false, "struct_array_field",
      "struct wrap { int a[2]; int tail; };\n"
      "int main(void) { struct wrap w; w.a[0] = 1; w.a[1] = 2;"
      " w.tail = 9;\n  return w.a[2];\n}\n",
      "struct wrap { int a[2]; int tail; };\n"
      "int main(void) { struct wrap w; w.a[0] = 1; w.a[1] = 2;"
      " w.tail = 9;\n  return w.tail;\n}\n");

  // 65: assignment between inexactly overlapping objects (1 test)
  add(S, 65, false, "shifted_struct",
      "struct trio { int a; int b; int c; };\n"
      "int main(void) {\n"
      "  struct trio t; t.a = 1; t.b = 2; t.c = 3;\n"
      "  struct trio *p = &t;\n"
      "  struct trio *q = (struct trio*)((char*)&t + 4);\n"
      "  *p = *q;\n"
      "  return t.a;\n}\n",
      "struct trio { int a; int b; int c; };\n"
      "int main(void) {\n"
      "  struct trio t; t.a = 1; t.b = 2; t.c = 3;\n"
      "  struct trio u; u = t;\n"
      "  return u.a - 1;\n}\n");

  // 67: function defined incompatibly with the call (2 tests)
  add(S, 67, false, "float_for_int",
      "static int takes(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())takes;"
      " return f(2.5); }\n",
      "static int takes(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())takes;"
      " return f(2) - 2; }\n");
  add(S, 67, false, "pointer_for_int",
      "static int takes(int a) { return a; }\n"
      "int main(void) { int x; int (*f)() = (int (*)())takes;"
      " return f(&x) != 0; }\n",
      "static int takes(int a) { return a; }\n"
      "int main(void) { int (*f)() = (int (*)())takes;"
      " return f(5) - 5; }\n");

  // 68: padding / unnamed-byte value used (1 test)
  add(S, 68, false, "padding_read",
      "struct padded { char c; int i; };\n"
      "int main(void) {\n"
      "  struct padded s; s.c = 'a'; s.i = 1;\n"
      "  unsigned char *p = (unsigned char*)&s;\n"
      "  int hidden = p[1];\n"
      "  return hidden;\n}\n",
      "struct padded { char c; int i; };\n"
      "int main(void) {\n"
      "  struct padded s; s.c = 'a'; s.i = 1;\n"
      "  unsigned char *p = (unsigned char*)&s;\n"
      "  int visible = p[0];\n"
      "  return visible != 'a';\n}\n");

  //===--- Library dynamic behaviors ------------------------------------===//

  // 11: use after free (2 tests)
  add(S, 11, false, "read",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 'a';\n  free(p);\n  return p[0];\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 'a';\n  int r = p[0];\n  free(p);\n"
      "  return r - 'a';\n}\n");
  add(S, 11, false, "write",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  *p = 3;\n  return 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  *p = 3;\n  free(p);\n  return 0;\n}\n");

  // 20: invalid argument to free (2 tests)
  add(S, 20, false, "stack",
      "#include <stdlib.h>\n"
      "int main(void) { int x; free(&x); return 0; }\n",
      "#include <stdlib.h>\n"
      "int main(void) { int *p = (int*)malloc(sizeof(int));"
      " if (!p) { return 1; } free(p); return 0; }\n");
  add(S, 20, false, "interior",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  free(p + 4);\n  return 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  return 0;\n}\n");

  // 21: double free (2 tests)
  add(S, 21, false, "direct",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  free(p);\n  return 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  p = NULL;\n  free(p);\n  return 0;\n}\n");
  add(S, 21, false, "aliased",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  char *q = p;\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  free(q);\n  return 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  char *q = (char*)malloc(4);\n"
      "  if (!p || !q) { return 1; }\n"
      "  free(p);\n  free(q);\n  return 0;\n}\n");

  // 27: overlapping memcpy (2 tests)
  add(S, 27, false, "forward",
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char buf[8] = \"abcdefg\";\n"
      "  memcpy(buf + 1, buf, 4);\n"
      "  return buf[1];\n}\n",
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char buf[8] = \"abcdefg\";\n"
      "  memmove(buf + 1, buf, 4);\n"
      "  return buf[1] - 'a';\n}\n");
  add(S, 27, false, "same_start",
      "#include <string.h>\n"
      "int main(void) {\n"
      "  int a[4]; a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;\n"
      "  memcpy(a, a + 1, 2 * sizeof(int));\n"
      "  return a[0];\n}\n",
      "#include <string.h>\n"
      "int main(void) {\n"
      "  int a[4]; int b[4]; a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;\n"
      "  memcpy(b, a + 1, 2 * sizeof(int));\n"
      "  return b[0] - 2;\n}\n");

  // 34: printf argument type mismatch (2 tests)
  add(S, 34, false, "int_for_string",
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%s\\n\", 42); return 0; }\n",
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%d\\n\", 42); return 0; }\n");
  add(S, 34, false, "pointer_for_int",
      "#include <stdio.h>\n"
      "int main(void) { int x = 1; printf(\"%d\\n\", &x); return 0; }\n",
      "#include <stdio.h>\n"
      "int main(void) { int x = 1; printf(\"%p\\n\", (void*)&x);"
      " return 0; }\n");

  // 72: printf conversion with no argument (2 tests)
  add(S, 72, false, "missing",
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%d\\n\"); return 0; }\n",
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%d\\n\", 7); return 0; }\n");
  add(S, 72, false, "short_list",
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%d %d\\n\", 1); return 0; }\n",
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%d %d\\n\", 1, 2); return 0; }\n");

  //===--- Statically detectable behaviors ------------------------------===//

  // 40: array of non-positive length (2 tests)
  add(S, 40, true, "zero",
      "int main(void) { int a[0]; return 0; }\n",
      "int main(void) { int a[1]; a[0] = 0; return a[0]; }\n");
  add(S, 40, true, "negative",
      "int main(void) { int a[-1]; return 0; }\n",
      "int main(void) { int a[1]; a[0] = 0; return a[0]; }\n");

  // 41: qualified function type (2 tests)
  add(S, 41, true, "typedef_const",
      "typedef int fn(void);\n"
      "const fn croak;\n"
      "int main(void) { return 0; }\n",
      "typedef int fn(void);\n"
      "fn croak;\n"
      "int main(void) { return 0; }\n");
  add(S, 41, true, "volatile_fn",
      "typedef void handler(int);\n"
      "volatile handler on_signal;\n"
      "int main(void) { return 0; }\n",
      "typedef void handler(int);\n"
      "handler on_signal;\n"
      "int main(void) { return 0; }\n");

  // 42: use of a void expression's value (2 tests)
  add(S, 42, true, "cast_back",
      // The paper's section 5.2.1 example: (int)(void)5, even if
      // unreachable, is statically undefined.
      "int main(void) {\n"
      "  if (0) { (int)(void)5; }\n"
      "  return 0;\n}\n",
      "int main(void) {\n"
      "  if (0) { (void)5; }\n"
      "  return 0;\n}\n");
  add(S, 42, true, "void_call_value",
      "static void quiet(void) { }\n"
      "int main(void) { return (int)quiet(); }\n",
      "static void quiet(void) { }\n"
      "int main(void) { quiet(); return 0; }\n");

  // 43: assignment to a const-qualified lvalue (2 tests)
  add(S, 43, true, "direct",
      "int main(void) { const int c = 1; c = 2; return c; }\n",
      "int main(void) { int c = 1; c = 2; return c - 2; }\n");
  add(S, 43, true, "compound",
      "int main(void) { const int c = 1; c += 1; return c; }\n",
      "int main(void) { int c = 1; c += 1; return c - 2; }\n");

  // 44: incompatible redeclaration (2 tests)
  add(S, 44, true, "params_differ",
      "int f(int a);\n"
      "int f(void);\n"
      "int main(void) { return 0; }\n",
      "int f(int a);\n"
      "int f(int b);\n"
      "int main(void) { return 0; }\n");
  add(S, 44, true, "return_differs",
      "int g(void);\n"
      "double g(void);\n"
      "int main(void) { return 0; }\n",
      "double g(void);\n"
      "double g(void);\n"
      "int main(void) { return 0; }\n");

  // 45: identifiers not distinct in significant characters (2 tests)
  add(S, 45, true, "long_names",
      "int aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
      "aaaaaaa_one = 1;\n"
      "int aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
      "aaaaaaa_two = 2;\n"
      "int main(void) { return 0; }\n",
      "int short_name_one = 1;\n"
      "int short_name_two = 2;\n"
      "int main(void) { return 0; }\n");
  add(S, 45, true, "long_functions",
      "static int bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
      "bbbbbbbbbbbbb_first(void) { return 1; }\n"
      "static int bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
      "bbbbbbbbbbbbb_second(void) { return 2; }\n"
      "int main(void) { return 0; }\n",
      "static int first(void) { return 1; }\n"
      "static int second(void) { return 2; }\n"
      "int main(void) { return first() + second() - 3; }\n");

  // 46: non-conforming signature of main (2 tests)
  add(S, 46, true, "char_main",
      "char main(void) { return 'a'; }\n",
      "int main(void) { return 0; }\n");
  add(S, 46, true, "extra_param",
      "int main(int bonus) { return bonus * 0; }\n",
      "int main(void) { return 0; }\n");

  // 47: constant null dereference, even unreachable (2 tests)
  add(S, 47, true, "unreachable",
      "int main(void) {\n"
      "  if (0) { *(char*)0; }\n"
      "  return 0;\n}\n",
      "int main(void) {\n"
      "  char c = 'x';\n"
      "  if (0) { *(&c); }\n"
      "  return 0;\n}\n");
  add(S, 47, true, "null_macro",
      "#include <stddef.h>\n"
      "int main(void) {\n"
      "  if (0) { *(int*)NULL = 3; }\n"
      "  return 0;\n}\n",
      "#include <stddef.h>\n"
      "int main(void) {\n"
      "  int x = 0;\n"
      "  if (0) { *(&x) = 3; }\n"
      "  return x;\n}\n");

  // 48: constant division by zero (2 tests)
  add(S, 48, true, "unreachable",
      "int main(void) {\n"
      "  if (0) { int x = 5 / 0; (void)x; }\n"
      "  return 0;\n}\n",
      "int main(void) {\n"
      "  if (0) { int x = 5 / 1; (void)x; }\n"
      "  return 0;\n}\n");
  add(S, 48, true, "modulo",
      "int main(void) {\n"
      "  if (0) { int x = 5 % 0; (void)x; }\n"
      "  return 0;\n}\n",
      "int main(void) {\n"
      "  if (0) { int x = 5 % 2; (void)x; }\n"
      "  return 0;\n}\n");

  // 49: write through const-qualified view (2 tests)
  add(S, 49, true, "cast_pointer",
      "int main(void) {\n"
      "  const int guard = 3;\n"
      "  int *p = (int*)&guard;\n"
      "  *p = 4;\n"
      "  return guard;\n}\n",
      "int main(void) {\n"
      "  int guard = 3;\n"
      "  int *p = &guard;\n"
      "  *p = 4;\n"
      "  return guard - 4;\n}\n");
  add(S, 49, true, "const_global",
      "const int limit = 10;\n"
      "int main(void) { int *p = (int*)&limit; *p = 11; return limit; }\n",
      "int limit = 10;\n"
      "int main(void) { int *p = &limit; *p = 11; return limit - 11; }\n");

  // 50: object with incomplete type (2 tests)
  add(S, 50, true, "incomplete_struct",
      "struct opaque;\n"
      "int main(void) { struct opaque *p = 0; (void)p; return 0; }\n"
      "struct opaque box;\n",
      "struct opaque { int v; };\n"
      "int main(void) { struct opaque *p = 0; (void)p; return 0; }\n"
      "struct opaque box;\n");
  add(S, 50, true, "local_incomplete",
      "struct later;\n"
      "int main(void) { struct later x; (void)&x; return 0; }\n",
      "struct later { int v; };\n"
      "int main(void) { struct later x; x.v = 0; return x.v; }\n");

  // 51: return with a value from a void function (2 tests)
  add(S, 51, true, "direct",
      "static void speak(void) { return 5; }\n"
      "int main(void) { speak(); return 0; }\n",
      "static void speak(void) { return; }\n"
      "int main(void) { speak(); return 0; }\n");
  add(S, 51, true, "expression",
      "static int helper(void) { return 1; }\n"
      "static void relay(void) { return helper(); }\n"
      "int main(void) { relay(); return 0; }\n",
      "static int helper(void) { return 1; }\n"
      "static void relay(void) { helper(); }\n"
      "int main(void) { relay(); return 0; }\n");

  // 153: integer constant too large for any type (2 tests)
  add(S, 153, true, "huge_decimal",
      "int main(void) { unsigned long long x ="
      " 99999999999999999999999999; return x != 0; }\n",
      "int main(void) { unsigned long long x ="
      " 18446744073709551615ull; return x == 0; }\n");
  add(S, 153, true, "huge_hex",
      "int main(void) { unsigned long long x ="
      " 0xffffffffffffffffff; return x != 0; }\n",
      "int main(void) { unsigned long long x ="
      " 0xffffffffffffffff; return x == 0; }\n");

  // 165: struct with no named members (1 test)
  add(S, 165, true, "empty_struct",
      "struct nothing { };\n"
      "int main(void) { struct nothing n; (void)&n; return 0; }\n",
      "struct something { int v; };\n"
      "int main(void) { struct something s; s.v = 0; return s.v; }\n");

  // 167: enumerator value out of int range (1 test)
  add(S, 167, true, "too_big",
      "enum big { HUGE_ONE = 2147483648 };\n"
      "int main(void) { return 0; }\n",
      "enum big { BIG_ONE = 2147483647 };\n"
      "int main(void) { return 0; }\n");

  // 173: void parameter not alone (1 test)
  add(S, 173, true, "void_and_int",
      "static int odd(void, int b);\n"
      "int main(void) { return 0; }\n",
      "static int odd(int a, int b);\n"
      "int main(void) { return 0; }\n");

  // 183: return without expression where the value is used (2 tests)
  add(S, 183, true, "empty_return",
      "static int supply(void) { return; }\n"
      "int main(void) { return supply(); }\n",
      "static int supply(void) { return 0; }\n"
      "int main(void) { return supply(); }\n");
  add(S, 183, true, "branch_return",
      "static int pick(int c) { if (c) { return 1; } return; }\n"
      "int main(void) { return pick(0); }\n",
      "static int pick(int c) { if (c) { return 1; } return 0; }\n"
      "int main(void) { return pick(0); }\n");

  // 184: too few arguments for a prototype (2 tests)
  add(S, 184, true, "one_missing",
      "static int need2(int a, int b) { return a + b; }\n"
      "int main(void) { return need2(1); }\n",
      "static int need2(int a, int b) { return a + b; }\n"
      "int main(void) { return need2(1, 2) - 3; }\n");
  add(S, 184, true, "all_missing",
      "static int need1(int a) { return a; }\n"
      "int main(void) { return need1(); }\n",
      "static int need1(int a) { return a; }\n"
      "int main(void) { return need1(4) - 4; }\n");

  // 185: too many arguments for a non-variadic prototype (2 tests)
  add(S, 185, true, "one_extra",
      "static int need1(int a) { return a; }\n"
      "int main(void) { return need1(1, 2); }\n",
      "static int need1(int a) { return a; }\n"
      "int main(void) { return need1(1) - 1; }\n");
  add(S, 185, true, "several_extra",
      "static int need0(void) { return 9; }\n"
      "int main(void) { return need0(1, 2, 3); }\n",
      "static int need0(void) { return 9; }\n"
      "int main(void) { return need0() - 9; }\n");

  // 188: incompatible pointer assignment without a cast (1 test)
  add(S, 188, true, "long_from_int",
      "int main(void) { int x = 1; long *p = &x; return p != 0; }\n",
      "int main(void) { long x = 1; long *p = &x; return p == 0; }\n");

  // 193: reserved identifier declared (1 test)
  add(S, 193, true, "underscore_capital",
      "int _Reserved_name = 1;\n"
      "int main(void) { return 0; }\n",
      "int ordinary_name = 1;\n"
      "int main(void) { return 0; }\n");

  // 209: #define of __STDC__ (1 test)
  add(S, 209, true, "redefine_stdc",
      "#define __STDC__ 2\n"
      "int main(void) { return 0; }\n",
      "#define MY_STDC 2\n"
      "int main(void) { return 0; }\n");

  //===--- Additional depth variants (178 tests total) --------------------===//

  add(S, 1, false, "switch_denominator",
      "int main(void) {\n"
      "  int d; int sel = 2;\n"
      "  switch (sel) { case 1: d = 1; break; default: d = 0; break; }\n"
      "  return 8 / d;\n}\n",
      "int main(void) {\n"
      "  int d; int sel = 1;\n"
      "  switch (sel) { case 1: d = 1; break; default: d = 0; break; }\n"
      "  return 8 / d;\n}\n");
  add(S, 3, false, "accumulate",
      "int main(void) {\n"
      "  int acc = 1; int i;\n"
      "  for (i = 0; i < 40; i++) { acc = acc * 2; }\n"
      "  return acc != 0;\n}\n",
      "int main(void) {\n"
      "  long acc = 1; int i;\n"
      "  for (i = 0; i < 40; i++) { acc = acc * 2; }\n"
      "  return acc == 0;\n}\n");
  add(S, 6, false, "param",
      "static int peek(int *p) { return *p; }\n"
      "int main(void) { return peek(0); }\n",
      "static int peek(int *p) { return *p; }\n"
      "int main(void) { int x = 2; return peek(&x) - 2; }\n");
  add(S, 9, false, "after_loop",
      "int main(void) {\n"
      "  int a[3]; int i; int sum = 0;\n"
      "  for (i = 0; i < 3; i++) { a[i] = i; }\n"
      "  sum = a[i];\n"
      "  return sum;\n}\n",
      "int main(void) {\n"
      "  int a[3]; int i; int sum = 0;\n"
      "  for (i = 0; i < 3; i++) { a[i] = i; }\n"
      "  sum = a[i - 1];\n"
      "  return sum - 2;\n}\n");
  add(S, 10, false, "memset_len",
      "#include <string.h>\n"
      "int main(void) { char b[4]; memset(b, 0, 8); return b[0]; }\n",
      "#include <string.h>\n"
      "int main(void) { char b[8]; memset(b, 0, 8); return b[0]; }\n");
  add(S, 11, false, "realloc_old",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  char *q = (char*)realloc(p, 16);\n"
      "  if (!q) { return 1; }\n"
      "  p[0] = 'x';\n  free(q);\n  return 0;\n}\n",
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(4);\n"
      "  if (!p) { return 1; }\n"
      "  char *q = (char*)realloc(p, 16);\n"
      "  if (!q) { return 1; }\n"
      "  q[0] = 'x';\n  free(q);\n  return 0;\n}\n");
  add(S, 16, false, "nested_assign",
      "int main(void) { int x = 3; x = x++; return x; }\n",
      "int main(void) { int x = 3; x = x + 1; return x - 4; }\n");
  add(S, 19, false, "struct_field",
      "struct pair { int a; int b; };\n"
      "int main(void) { struct pair p; p.a = 1; return p.b; }\n",
      "struct pair { int a; int b; };\n"
      "int main(void) { struct pair p; p.a = 1; p.b = 2; return p.b - 2;"
      " }\n");
  add(S, 25, false, "short_pair_from_int",
      "int main(void) { int v = 7; short *p = (short*)&v;"
      " return p[0]; }\n",
      "int main(void) { short v[2]; v[0] = 7; v[1] = 0;"
      " short *p = v; return p[0] - 7; }\n");
  add(S, 29, false, "struct_end",
      "struct cell { int v; };\n"
      "int main(void) {\n"
      "  struct cell c; c.v = 1;\n"
      "  struct cell *end = &c + 1;\n"
      "  return end->v;\n}\n",
      "struct cell { int v; };\n"
      "int main(void) {\n"
      "  struct cell c; c.v = 1;\n"
      "  struct cell *end = &c + 1;\n"
      "  return (end - 1)->v - 1;\n}\n");
  add(S, 30, false, "passed_uninit",
      "static int follow(int *p) { return *p; }\n"
      "int main(void) { int *wild; return follow(wild); }\n",
      "static int follow(int *p) { return *p; }\n"
      "int main(void) { int x = 3; int *ok = &x;"
      " return follow(ok) - 3; }\n");
  add(S, 36, false, "nested_call",
      "static int *inner(void) { int v = 2; return &v; }\n"
      "static int *outer(void) { return inner(); }\n"
      "int main(void) { return *outer(); }\n",
      "static int shared = 2;\n"
      "static int *inner(void) { return &shared; }\n"
      "static int *outer(void) { return inner(); }\n"
      "int main(void) { return *outer() - 2; }\n");

  return S;
}

} // namespace

const std::vector<TestCase> &cundef::undefSuite() {
  static const std::vector<TestCase> Suite = buildSuite();
  return Suite;
}

UndefSuiteStats cundef::undefSuiteStats() {
  UndefSuiteStats Stats;
  std::set<uint16_t> Behaviors, StaticB, DynamicB, CorePortable;
  for (const TestCase &Test : undefSuite()) {
    ++Stats.Tests;
    Behaviors.insert(Test.CatalogId);
    if (Test.StaticBehavior) {
      StaticB.insert(Test.CatalogId);
    } else {
      DynamicB.insert(Test.CatalogId);
      const CatalogEntry *Entry = catalogEntry(Test.CatalogId);
      if (Entry && Entry->isDynamic() && !Entry->isLibrary() &&
          !Entry->isImplSpecific())
        CorePortable.insert(Test.CatalogId);
    }
  }
  Stats.Behaviors = static_cast<unsigned>(Behaviors.size());
  Stats.StaticBehaviors = static_cast<unsigned>(StaticB.size());
  Stats.DynamicBehaviors = static_cast<unsigned>(DynamicB.size());
  Stats.DynamicCorePortableCovered =
      static_cast<unsigned>(CorePortable.size());
  return Stats;
}
