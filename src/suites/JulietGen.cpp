//===- suites/JulietGen.cpp - Juliet-like benchmark generator ------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "suites/JulietGen.h"

#include "support/Strings.h"

using namespace cundef;

unsigned JulietGenerator::paperCount(JulietClass Class) {
  switch (Class) {
  case JulietClass::InvalidPointer:      return 3193;
  case JulietClass::DivideByZero:        return 77;
  case JulietClass::BadFree:             return 334;
  case JulietClass::UninitializedMemory: return 422;
  case JulietClass::BadFunctionCall:     return 46;
  case JulietClass::IntegerOverflow:     return 41;
  }
  return 0;
}

namespace {

/// Juliet-style support code included in every test; gives tests the
/// realistic bulk of the original corpus' io helpers.
const char *Prelude = R"(#include <stdio.h>
#include <stdlib.h>
#include <string.h>

static void printLine(const char *line)
{
    if (line != NULL)
    {
        printf("%s\n", line);
    }
}

static void printIntLine(int value)
{
    printf("%d\n", value);
}

static int globalTrue = 1;
static int globalFalse = 0;

static int identity(int value)
{
    return value;
}
)";

/// Number of control-/data-flow variants (mirrors Juliet's flow
/// variants: baseline, constant guard, helper function, loop, switch,
/// struct field, pointer indirection, computed index).
constexpr unsigned NumVariants = 8;

/// Wraps a flaw body into a full program according to the variant.
/// \p Decls go at the top of the acting function; \p Flaw is the
/// statement sequence that contains (for bad tests) the single flaw.
std::string wrapVariant(unsigned Variant, const std::string &Decls,
                        const std::string &Flaw) {
  std::string Out = Prelude;
  switch (Variant % NumVariants) {
  case 0: // straight line in main
    Out += strFormat("int main(void)\n{\n%s%s"
                     "    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  case 1: // behind an always-true global guard
    Out += strFormat("int main(void)\n{\n%s"
                     "    if (globalTrue)\n    {\n%s    }\n"
                     "    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  case 2: // flaw inside a helper function
    Out += strFormat("static void action(void)\n{\n%s%s}\n\n"
                     "int main(void)\n{\n    action();\n"
                     "    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  case 3: // flaw on the final loop iteration
    Out += strFormat("int main(void)\n{\n%s    int step;\n"
                     "    for (step = 0; step < 3; step++)\n    {\n"
                     "        if (step == 2)\n        {\n%s        }\n"
                     "    }\n    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  case 4: // selected by a switch
    Out += strFormat("int main(void)\n{\n%s"
                     "    switch (identity(6))\n    {\n    case 6:\n"
                     "    {\n%s        break;\n    }\n    default:\n"
                     "        printLine(\"unreachable\");\n        break;\n"
                     "    }\n    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  case 5: // data flows through a struct field
    Out += strFormat("struct container { int staging; };\n\n"
                     "int main(void)\n{\n    struct container box;\n"
                     "    box.staging = 0;\n%s"
                     "    if (box.staging == 0)\n    {\n%s    }\n"
                     "    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  case 6: // guard read through a pointer
    Out += strFormat("int main(void)\n{\n    int on = 1;\n"
                     "    int *flag = &on;\n%s"
                     "    if (*flag)\n    {\n%s    }\n"
                     "    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  default: // 7: values routed through identity() calls
    Out += strFormat("int main(void)\n{\n%s"
                     "    if (identity(globalTrue))\n    {\n%s    }\n"
                     "    printLine(\"done\");\n    return 0;\n}\n",
                     Decls.c_str(), Flaw.c_str());
    return Out;
  }
}

TestCase makePair(const char *Stem, JulietClass Class, unsigned Index,
                  unsigned Variant, const std::string &Decls,
                  const std::string &BadFlaw, const std::string &GoodFlaw) {
  TestCase Test;
  Test.Name = strFormat("%s_%05u_v%u", Stem, Index, Variant);
  Test.Class = Class;
  Test.FromJuliet = true;
  Test.Bad = wrapVariant(Variant, Decls, BadFlaw);
  Test.Good = wrapVariant(Variant, Decls, GoodFlaw);
  return Test;
}

//===----------------------------------------------------------------------===//
// Use of invalid pointer (CWE-121/122/124/476/562-style)
//===----------------------------------------------------------------------===//

TestCase makeInvalidPointer(unsigned I) {
  constexpr unsigned NumSubkinds = 10;
  unsigned Subkind = I % NumSubkinds;
  unsigned Variant = (I / NumSubkinds) % NumVariants;
  unsigned P = I / (NumSubkinds * NumVariants);
  unsigned Size = 2 + P % 14;              // array/allocation size
  unsigned Beyond = Size + P % 5;          // an index past the end
  unsigned Inside = P % Size;              // a safe index

  std::string Decls, Bad, Good;
  switch (Subkind) {
  case 0: // stack buffer overflow (write)
    Decls = strFormat("    int data[%u];\n    int i;\n"
                      "    for (i = 0; i < %u; i++) { data[i] = i; }\n",
                      Size, Size);
    Bad = strFormat("        data[%u] = 7;\n        printIntLine(data[0]);\n",
                    Beyond);
    Good = strFormat("        data[%u] = 7;\n        printIntLine(data[0]);\n",
                     Inside);
    break;
  case 1: // stack buffer over-read
    Decls = strFormat("    int data[%u];\n    int i;\n"
                      "    for (i = 0; i < %u; i++) { data[i] = i; }\n",
                      Size, Size);
    Bad = strFormat("        printIntLine(data[%u]);\n", Beyond);
    Good = strFormat("        printIntLine(data[%u]);\n", Inside);
    break;
  case 2: // heap buffer overflow (write)
    Decls = strFormat(
        "    int *data = (int*)malloc(%u * sizeof(int));\n    int i;\n"
        "    if (data == NULL) { exit(1); }\n"
        "    for (i = 0; i < %u; i++) { data[i] = i; }\n",
        Size, Size);
    Bad = strFormat("        data[%u] = 7;\n        printIntLine(data[0]);\n"
                    "        free(data);\n",
                    Beyond);
    Good = strFormat("        data[%u] = 7;\n        printIntLine(data[0]);\n"
                     "        free(data);\n",
                     Inside);
    break;
  case 3: // heap buffer over-read
    Decls = strFormat(
        "    int *data = (int*)malloc(%u * sizeof(int));\n    int i;\n"
        "    if (data == NULL) { exit(1); }\n"
        "    for (i = 0; i < %u; i++) { data[i] = i; }\n",
        Size, Size);
    Bad = strFormat("        printIntLine(data[%u]);\n        free(data);\n",
                    Beyond);
    Good = strFormat("        printIntLine(data[%u]);\n        free(data);\n",
                     Inside);
    break;
  case 4: // null pointer dereference
    Decls = strFormat("    int *data = NULL;\n    int fallback = %u;\n", P);
    Bad = "        printIntLine(*data);\n";
    Good = "        data = &fallback;\n        printIntLine(*data);\n";
    break;
  case 5: // use after free (read)
    Decls = strFormat(
        "    int *data = (int*)malloc(%u * sizeof(int));\n"
        "    if (data == NULL) { exit(1); }\n    data[0] = %u;\n",
        Size, P);
    Bad = "        free(data);\n        printIntLine(data[0]);\n";
    Good = "        printIntLine(data[0]);\n        free(data);\n";
    break;
  case 6: // use after free (write)
    Decls = strFormat(
        "    int *data = (int*)malloc(%u * sizeof(int));\n"
        "    if (data == NULL) { exit(1); }\n    data[0] = %u;\n",
        Size, P);
    Bad = "        free(data);\n        data[0] = 3;\n";
    Good = "        data[0] = 3;\n        printIntLine(data[0]);\n"
           "        free(data);\n";
    break;
  case 7: // negative index
    Decls = strFormat("    int data[%u];\n    int i;\n"
                      "    for (i = 0; i < %u; i++) { data[i] = i; }\n",
                      Size, Size);
    Bad = strFormat("        printIntLine(data[-%u]);\n", 1 + P % 3);
    Good = strFormat("        printIntLine(data[%u]);\n", Inside);
    break;
  case 8: // string overflow: strcpy into a short buffer
    Decls = strFormat("    char dest[%u];\n"
                      "    const char *src = \"%s\";\n",
                      Size,
                      std::string(Size + 1 + P % 4, 'A').c_str());
    Bad = "        strcpy(dest, src);\n        printLine(dest);\n";
    Good = strFormat("        strncpy(dest, src, %u);\n"
                     "        dest[%u] = '\\0';\n        printLine(dest);\n",
                     Size - 1, Size - 1);
    break;
  default: // 9: one-past-the-end dereference
    Decls = strFormat("    int data[%u];\n    int *end;\n    int i;\n"
                      "    for (i = 0; i < %u; i++) { data[i] = i; }\n"
                      "    end = data + %u;\n",
                      Size, Size, Size);
    Bad = "        printIntLine(*end);\n";
    Good = "        printIntLine(*(end - 1));\n";
    break;
  }
  return makePair("INVPTR", JulietClass::InvalidPointer, I, Variant, Decls,
                  Bad, Good);
}

//===----------------------------------------------------------------------===//
// Division by zero (CWE-369-style)
//===----------------------------------------------------------------------===//

TestCase makeDivZero(unsigned I) {
  constexpr unsigned NumSubkinds = 5;
  unsigned Subkind = I % NumSubkinds;
  unsigned Variant = (I / NumSubkinds) % NumVariants;
  unsigned P = I / (NumSubkinds * NumVariants);
  unsigned Numerator = 10 + P * 7;

  std::string Decls, Bad, Good;
  switch (Subkind) {
  case 0: // direct zero denominator
    Decls = strFormat("    int numerator = %u;\n    int denominator;\n",
                      Numerator);
    Bad = "        denominator = 0;\n"
          "        printIntLine(numerator / denominator);\n";
    Good = "        denominator = 2;\n"
           "        printIntLine(numerator / denominator);\n";
    break;
  case 1: // remainder by zero
    Decls = strFormat("    int numerator = %u;\n    int denominator;\n",
                      Numerator);
    Bad = "        denominator = 0;\n"
          "        printIntLine(numerator % denominator);\n";
    Good = "        denominator = 3;\n"
           "        printIntLine(numerator % denominator);\n";
    break;
  case 2: // zero computed as a difference
    Decls = strFormat("    int base = %u;\n    int denominator;\n", P + 1);
    Bad = "        denominator = base - base;\n"
          "        printIntLine(100 / denominator);\n";
    Good = "        denominator = base + 1;\n"
           "        printIntLine(100 / denominator);\n";
    break;
  case 3: // denominator returned by a helper
    Decls = "    int denominator;\n";
    Bad = "        denominator = identity(0);\n"
          "        printIntLine(49 / denominator);\n";
    Good = "        denominator = identity(7);\n"
           "        printIntLine(49 / denominator);\n";
    break;
  default: // 4: compound assignment
    Decls = strFormat("    int value = %u;\n    int denominator;\n",
                      Numerator);
    Bad = "        denominator = 0;\n        value /= denominator;\n"
          "        printIntLine(value);\n";
    Good = "        denominator = 5;\n        value /= denominator;\n"
           "        printIntLine(value);\n";
    break;
  }
  return makePair("DIVZERO", JulietClass::DivideByZero, I, Variant, Decls,
                  Bad, Good);
}

//===----------------------------------------------------------------------===//
// Bad argument to free() (CWE-590/415-style)
//===----------------------------------------------------------------------===//

TestCase makeBadFree(unsigned I) {
  constexpr unsigned NumSubkinds = 5;
  unsigned Subkind = I % NumSubkinds;
  unsigned Variant = (I / NumSubkinds) % NumVariants;
  unsigned P = I / (NumSubkinds * NumVariants);
  unsigned Size = 4 + P % 12;

  std::string Decls, Bad, Good;
  switch (Subkind) {
  case 0: // free of a stack address
    Decls = strFormat("    int stackBuffer[%u];\n    int *data;\n"
                      "    stackBuffer[0] = %u;\n",
                      Size, P);
    Bad = "        data = stackBuffer;\n        free(data);\n";
    Good = strFormat("        data = (int*)malloc(%u * sizeof(int));\n"
                     "        if (data == NULL) { exit(1); }\n"
                     "        free(data);\n",
                     Size);
    break;
  case 1: // free of a pointer into the middle of a block
    Decls = strFormat("    char *data = (char*)malloc(%u);\n"
                      "    if (data == NULL) { exit(1); }\n",
                      Size);
    Bad = strFormat("        free(data + %u);\n", 1 + P % (Size - 1));
    Good = "        free(data);\n";
    break;
  case 2: // double free
    Decls = strFormat("    char *data = (char*)malloc(%u);\n"
                      "    if (data == NULL) { exit(1); }\n",
                      Size);
    Bad = "        free(data);\n        free(data);\n";
    Good = "        free(data);\n        data = NULL;\n        free(data);\n";
    break;
  case 3: // free of a global's address
    Decls = "    int *data;\n";
    Bad = "        data = &globalFalse;\n        free(data);\n";
    Good = "        data = (int*)malloc(sizeof(int));\n"
           "        if (data == NULL) { exit(1); }\n        free(data);\n";
    break;
  default: // 4: free of a string literal
    Decls = "    char *data;\n";
    Bad = "        data = (char*)\"immutable\";\n        free(data);\n";
    Good = strFormat("        data = (char*)malloc(%u);\n"
                     "        if (data == NULL) { exit(1); }\n"
                     "        strcpy(data, \"ok\");\n        free(data);\n",
                     Size);
    break;
  }
  return makePair("BADFREE", JulietClass::BadFree, I, Variant, Decls, Bad,
                  Good);
}

//===----------------------------------------------------------------------===//
// Uninitialized memory (CWE-457-style)
//===----------------------------------------------------------------------===//

TestCase makeUninit(unsigned I) {
  constexpr unsigned NumSubkinds = 7;
  unsigned Subkind = I % NumSubkinds;
  unsigned Variant = (I / NumSubkinds) % NumVariants;
  unsigned P = I / (NumSubkinds * NumVariants);
  unsigned Size = 3 + P % 10;

  std::string Decls, Bad, Good;
  switch (Subkind) {
  case 6: // uninitialized pointer inside a struct
    Decls = "    struct node { int *link; int payload; };\n"
            "    struct node n;\n    int anchor = 7;\n";
    Bad = "        printIntLine(*n.link);\n";
    Good = "        n.link = &anchor;\n"
           "        printIntLine(*n.link);\n";
    break;
  case 0: // uninitialized int
    Decls = "    int data;\n";
    Bad = "        printIntLine(data);\n";
    Good = strFormat("        data = %u;\n        printIntLine(data);\n", P);
    break;
  case 1: // uninitialized array element
    Decls = strFormat("    int data[%u];\n    data[0] = 1;\n", Size);
    Bad = strFormat("        printIntLine(data[%u]);\n", 1 + P % (Size - 1));
    Good = "        printIntLine(data[0]);\n";
    break;
  case 2: // uninitialized pointer dereference
    Decls = "    int *data;\n    int fallback = 5;\n";
    Bad = "        printIntLine(*data);\n";
    Good = "        data = &fallback;\n        printIntLine(*data);\n";
    break;
  case 3: // uninitialized struct field
    Decls = "    struct pair { int a; int b; };\n    struct pair data;\n"
            "    data.a = 1;\n";
    Bad = "        printIntLine(data.b);\n";
    Good = "        printIntLine(data.a);\n";
    break;
  case 4: // uninitialized heap storage
    Decls = strFormat("    int *data = (int*)malloc(%u * sizeof(int));\n"
                      "    if (data == NULL) { exit(1); }\n",
                      Size);
    Bad = "        printIntLine(data[0]);\n        free(data);\n";
    Good = "        data[0] = 11;\n        printIntLine(data[0]);\n"
           "        free(data);\n";
    break;
  default: // 5: initialized on only one branch
    Decls = "    int data;\n";
    Bad = "        if (globalFalse) { data = 9; }\n"
          "        printIntLine(data);\n";
    Good = "        if (globalFalse) { data = 9; } else { data = 4; }\n"
           "        printIntLine(data);\n";
    break;
  }
  return makePair("UNINIT", JulietClass::UninitializedMemory, I, Variant,
                  Decls, Bad, Good);
}

//===----------------------------------------------------------------------===//
// Bad function call (CWE-686-style)
//===----------------------------------------------------------------------===//

TestCase makeBadCall(unsigned I) {
  constexpr unsigned NumSubkinds = 3;
  unsigned Subkind = I % NumSubkinds;
  unsigned Variant = (I / NumSubkinds) % NumVariants;
  unsigned P = I / (NumSubkinds * NumVariants);

  // These need their own helper functions; build the whole source here
  // and only reuse the variant machinery for naming.
  TestCase Test;
  Test.Name = strFormat("BADCALL_%05u_v%u", I, Variant);
  Test.Class = JulietClass::BadFunctionCall;
  Test.FromJuliet = true;

  switch (Subkind) {
  case 0: { // call through a pointer of the wrong signature
    std::string Common = std::string(Prelude) +
                         strFormat("static int takesTwo(int a, int b)\n"
                                   "{\n    return a + b + %u;\n}\n\n",
                                   P);
    Test.Bad = Common +
               "int main(void)\n{\n"
               "    int (*fp)(int) = (int (*)(int))takesTwo;\n"
               "    printIntLine(fp(1));\n"
               "    return 0;\n}\n";
    Test.Good = Common +
                "int main(void)\n{\n"
                "    int (*fp)(int, int) = takesTwo;\n"
                "    printIntLine(fp(1, 2));\n"
                "    return 0;\n}\n";
    return Test;
  }
  case 1: { // unprototyped call with the wrong argument count
    std::string Common = std::string(Prelude) +
                         strFormat("static int adder(int a, int b)\n"
                                   "{\n    return a + b + %u;\n}\n\n",
                                   P);
    Test.Bad = Common + "int main(void)\n{\n"
                        "    int (*fp)() = (int (*)())adder;\n"
                        "    printIntLine(fp(1));\n    return 0;\n}\n";
    Test.Good = Common + "int main(void)\n{\n"
                         "    int (*fp)() = (int (*)())adder;\n"
                         "    printIntLine(fp(1, 2));\n    return 0;\n}\n";
    return Test;
  }
  default: { // 2: wrong return type through a cast pointer
    std::string Common = std::string(Prelude) +
                         strFormat("static double makesDouble(int a)\n"
                                   "{\n    return a * %u.5;\n}\n\n",
                                   P + 1);
    Test.Bad = Common +
               "int main(void)\n{\n"
               "    int (*fp)(int) = (int (*)(int))makesDouble;\n"
               "    printIntLine(fp(3));\n"
               "    return 0;\n}\n";
    Test.Good = Common +
                "int main(void)\n{\n"
                "    double (*fp)(int) = makesDouble;\n"
                "    printIntLine((int)fp(3));\n"
                "    return 0;\n}\n";
    return Test;
  }
  }
}

//===----------------------------------------------------------------------===//
// Integer overflow (CWE-190-style)
//===----------------------------------------------------------------------===//

TestCase makeOverflow(unsigned I) {
  constexpr unsigned NumSubkinds = 4;
  unsigned Subkind = I % NumSubkinds;
  unsigned Variant = (I / NumSubkinds) % NumVariants;
  unsigned P = I / (NumSubkinds * NumVariants);

  std::string Decls, Bad, Good;
  switch (Subkind) {
  case 0: // addition overflow at INT_MAX
    Decls = "    int data = 2147483647;\n";
    Bad = strFormat("        data = data + %u;\n        printIntLine(data);\n",
                    1 + P % 3);
    Good = "        data = data - 1;\n        printIntLine(data);\n";
    break;
  case 1: // multiplication overflow
    Decls = strFormat("    int data = %u;\n", 70000 + P * 13);
    Bad = "        data = data * data;\n        printIntLine(data);\n";
    Good = "        data = data / 2;\n        printIntLine(data);\n";
    break;
  case 2: // increment past INT_MAX
    Decls = "    int data = 2147483647;\n";
    Bad = "        data++;\n        printIntLine(data);\n";
    Good = "        data--;\n        printIntLine(data);\n";
    break;
  default: // 3: subtraction below INT_MIN
    Decls = "    int data = -2147483647 - 1;\n";
    Bad = strFormat("        data = data - %u;\n        printIntLine(data);\n",
                    1 + P % 3);
    Good = "        data = data + 1;\n        printIntLine(data);\n";
    break;
  }
  return makePair("OVERFLOW", JulietClass::IntegerOverflow, I, Variant,
                  Decls, Bad, Good);
}

} // namespace

std::vector<TestCase>
JulietGenerator::generateClass(JulietClass Class) const {
  std::vector<TestCase> Tests;
  unsigned N = scaledCount(Class);
  Tests.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    switch (Class) {
    case JulietClass::InvalidPointer:
      Tests.push_back(makeInvalidPointer(I));
      break;
    case JulietClass::DivideByZero:
      Tests.push_back(makeDivZero(I));
      break;
    case JulietClass::BadFree:
      Tests.push_back(makeBadFree(I));
      break;
    case JulietClass::UninitializedMemory:
      Tests.push_back(makeUninit(I));
      break;
    case JulietClass::BadFunctionCall:
      Tests.push_back(makeBadCall(I));
      break;
    case JulietClass::IntegerOverflow:
      Tests.push_back(makeOverflow(I));
      break;
    }
  }
  return Tests;
}

std::vector<TestCase> JulietGenerator::generate() const {
  std::vector<TestCase> All;
  for (JulietClass Class :
       {JulietClass::InvalidPointer, JulietClass::DivideByZero,
        JulietClass::BadFree, JulietClass::UninitializedMemory,
        JulietClass::BadFunctionCall, JulietClass::IntegerOverflow}) {
    std::vector<TestCase> Tests = generateClass(Class);
    All.insert(All.end(), Tests.begin(), Tests.end());
  }
  return All;
}
