//===- suites/CatalogCoverage.h - The UB-catalog coverage harness -*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the 221-entry catalog (ub/Catalog.h) from documentation into a
/// tested contract. For every catalog row the generator carries one
/// *minimal triggering program* where the behavior is expressible
/// within the modelled language/library subset; the harness runs all of
/// them batched through one persistent AnalysisEngine and grades each
/// row:
///
///  * **covered**       -- the evaluator flagged the triggering program
///                         with a matching catalog code,
///  * **wrong-code**    -- flagged, but under a code the row does not
///                         answer to,
///  * **missed**        -- not flagged at all (including programs our
///                         frontend rejects without a UB report),
///  * **inexpressible** -- no triggering program exists inside the
///                         modelled subset (the case records why).
///
/// Matching: rows 1-51 mirror a UbKind enumerator and match exactly
/// that code. Rows without an enumerator of their own list the codes
/// the evaluator legitimately names the behavior under (e.g. row 64,
/// "array subscript out of range", is reported as code 9/10 — the
/// catalog deliberately splits one clause into several rows). The
/// alias sets are part of the generator table, chosen from the C11
/// clause, never from whatever the evaluator happened to report.
///
/// The verdicts surface three ways: `kcc --catalog-coverage` (human
/// table), the `coverage` block of the cundef-kcc-v1 JSON schema, and
/// the Coverage column of docs/UB_CATALOG.md — all three render the
/// same CoverageReport, and the catalog_coverage ctest gates the
/// covered count against tests/suites/coverage_baseline.txt so
/// detector work can only move it up.
///
/// Convention: a new UbKind must ship a triggering program here (and
/// the unit tests fail the build of a kind whose row is not covered),
/// so the catalog and the detectors can never drift apart again.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_CATALOGCOVERAGE_H
#define CUNDEF_SUITES_CATALOGCOVERAGE_H

#include "driver/Request.h"
#include "ub/Catalog.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cundef {

class AnalysisEngine;

/// One catalog row's triggering program (or the reason none exists).
struct CoverageCase {
  uint16_t Id = 0;
  /// The minimal triggering program; empty when the row is
  /// inexpressible in the modelled subset.
  std::string Program;
  /// Catalog codes the evaluator may report this row's behavior under.
  /// {Id} for rows mirroring a UbKind; explicit alias sets otherwise.
  std::vector<uint16_t> ExpectedCodes;
  /// Why the row is inexpressible, or the alias rationale.
  const char *Note = "";

  bool expressible() const { return !Program.empty(); }
};

/// The generator: exactly one case per catalog row, ordered by id
/// (index = id - 1). Rows present in the custom undefinedness suite
/// reuse that suite's first undefined program, so the coverage
/// contract and the scored suite can never test different programs.
const std::vector<CoverageCase> &catalogCoverageCases();

enum class CoverageVerdict : uint8_t {
  Covered,
  WrongCode,
  Missed,
  Inexpressible,
};

const char *coverageVerdictName(CoverageVerdict V);

/// Which analysis layer produced a covered row's matching finding:
/// the static pass alone, the dynamic search alone, or both
/// independently. None for rows that are not covered.
enum class CoverageSource : uint8_t { None, Static, Dynamic, Both };

const char *coverageSourceName(CoverageSource S);

/// One row's graded outcome.
struct EntryCoverage {
  uint16_t Id = 0;
  CoverageVerdict Verdict = CoverageVerdict::Inexpressible;
  /// The first *matching* code the evaluator reported on the
  /// triggering program; falls back to the first reported code on
  /// wrong-code rows (0 when it reported nothing).
  uint16_t ReportedCode = 0;
  /// Layer attribution for covered rows (None otherwise).
  CoverageSource Source = CoverageSource::None;
};

/// The whole catalog, graded. Entries are ordered by id and always
/// number exactly catalogStats().Total; the four counts partition them.
/// CoveredStatic/CoveredDynamic/CoveredBoth partition Covered by which
/// layer produced the matching finding.
struct CoverageReport {
  std::vector<EntryCoverage> Entries;
  unsigned Covered = 0;
  unsigned CoveredStatic = 0;
  unsigned CoveredDynamic = 0;
  unsigned CoveredBoth = 0;
  unsigned WrongCode = 0;
  unsigned Missed = 0;
  unsigned Inexpressible = 0;
  double WallMs = 0.0;

  unsigned total() const {
    return Covered + WrongCode + Missed + Inexpressible;
  }
  const EntryCoverage *entry(uint16_t Id) const {
    return Id >= 1 && Id <= Entries.size() ? &Entries[Id - 1] : nullptr;
  }
};

/// Runs every expressible case batched through \p Eng under \p Req and
/// grades the catalog. Verdicts are deterministic: they never depend on
/// worker count, scheduler kind, or what else the engine is running
/// (the committed-output determinism contract of core/Scheduler.h).
CoverageReport runCatalogCoverage(AnalysisEngine &Eng,
                                  const AnalysisRequest &Req);

/// Convenience: one dedicated engine for the whole sweep.
CoverageReport runCatalogCoverage(const AnalysisRequest &Req);

/// The harness request the CLI and the docs renderer share: \p Quick
/// caps the per-program search budget at 4 runs (the ctest gate's
/// budget); full mode searches 64 orders per program. Verdicts agree
/// in practice — the triggering programs misbehave on their default
/// order — but full mode is the reference.
AnalysisRequest coverageRequest(bool Quick);

/// Renders the human table `kcc --catalog-coverage` prints: one line
/// per non-covered row plus the summary counts. The final line is the
/// stable machine-greppable summary
/// `coverage: covered=N wrong-code=N missed=N inexpressible=N total=N
/// static=A dynamic=B both=C` that cmake/CheckCoverageBaseline.cmake
/// parses (the trailing attribution triple partitions covered).
std::string renderCoverageReport(const CoverageReport &R);

/// The docs annotation: one cell per row ("covered (static)",
/// "covered (both)", "wrong-code (reports 00019)", ...) for
/// renderCatalogMarkdown's Coverage column.
CatalogCoverageColumn coverageColumn(const CoverageReport &R);

/// The `coverage` document of the cundef-kcc-v1 schema
/// (docs/JSON_OUTPUT.md): summary counts plus one entry per row with
/// id, verdict, reported/expected codes, and the inexpressibility or
/// alias note. \p Mode is echoed verbatim ("quick", "full", or the
/// explicit budget).
std::string renderCoverageJson(const CoverageReport &R, const char *Mode,
                               double WallMs);

} // namespace cundef

#endif // CUNDEF_SUITES_CATALOGCOVERAGE_H
