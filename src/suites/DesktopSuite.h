//===- suites/DesktopSuite.h - The desktop-C scored suite --------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scored suite of slice-sized *desktop-idiom* programs: argv and
/// environment handling, file-I/O parsing loops, pointer-heavy string
/// munging — the shapes real command-line C is made of, as opposed to
/// the synthetic one-behavior-per-file programs of the custom suite.
/// Each case is a (bad, good) pair on disk under tests/suites/desktop/
/// with an expected verdict in manifest.txt:
///
///   <name> flag <code>   -- the bad half must be flagged (first code
///                           documented for the report),
///   <name> miss 0        -- a known miss: the behavior is undefined per
///                           C11 but outside what the model detects; the
///                           case documents the gap and gates against
///                           silent "fixes" that flag the good half.
///
/// Good halves must always come back clean — a flagged control is a
/// false positive regardless of the expectation on the bad half.
///
/// The suite lives on disk (not in generated C++) so cases read like
/// the programs they imitate and diff like test data. The loader
/// defaults to the source-tree directory baked in at compile time
/// (CUNDEF_DESKTOP_SUITE_DIR); SuiteRunner::scoreDesktopBatched scores
/// the whole suite through one engine worker pool next to the Juliet
/// and custom scorers.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_DESKTOPSUITE_H
#define CUNDEF_SUITES_DESKTOPSUITE_H

#include "suites/TestCase.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cundef {

/// One desktop pair with its manifest expectation.
struct DesktopCase {
  TestCase Test; ///< Name, Bad, Good (CatalogId/Class unused)
  /// Whether the bad half is expected to be flagged ("flag") or is a
  /// documented model gap ("miss").
  bool ExpectFlagged = true;
  /// The catalog code the bad half is expected to be reported under
  /// (0 for known misses). Part of the scored contract: a detector
  /// change that reroutes a case to a different code fails the suite
  /// until the manifest is updated deliberately.
  uint16_t ExpectedCode = 0;
};

/// The loaded suite, or the reason loading failed.
struct DesktopSuite {
  std::vector<DesktopCase> Cases;
  std::string Error; ///< empty on success

  bool ok() const { return Error.empty(); }
};

/// The compiled-in default suite directory (the source tree's
/// tests/suites/desktop).
const char *desktopSuiteDir();

/// Loads manifest.txt and every referenced pair from \p Dir (defaults
/// to desktopSuiteDir()). Cases come back in manifest order. A missing
/// manifest, an unreadable half, or a malformed line fails the whole
/// load with a diagnostic in Error — a partially loaded suite would
/// silently shrink the scored contract.
DesktopSuite loadDesktopSuite(const std::string &Dir = desktopSuiteDir());

} // namespace cundef

#endif // CUNDEF_SUITES_DESKTOPSUITE_H
