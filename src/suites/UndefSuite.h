//===- suites/UndefSuite.h - The custom undefinedness suite ------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The custom undefinedness test suite of paper section 5.2: 178 tests
/// covering 70 distinct catalog behaviors -- every one of the 42
/// dynamically undefined, non-library, non-implementation-specific
/// behaviors has at least one test (many have several), plus library
/// behaviors and 22 statically detectable behaviors. Each test is a
/// separate program (one behavior per program) paired with a defined
/// control, exactly as the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_UNDEFSUITE_H
#define CUNDEF_SUITES_UNDEFSUITE_H

#include "suites/TestCase.h"

namespace cundef {

/// The full suite (stable order, grouped by catalog id).
const std::vector<TestCase> &undefSuite();

/// Summary statistics the paper reports (and tests assert).
struct UndefSuiteStats {
  unsigned Tests = 0;
  unsigned Behaviors = 0;
  unsigned StaticBehaviors = 0;
  unsigned DynamicBehaviors = 0;
  /// Dynamic, core-language, portable behaviors covered (paper: 42).
  unsigned DynamicCorePortableCovered = 0;
};

UndefSuiteStats undefSuiteStats();

} // namespace cundef

#endif // CUNDEF_SUITES_UNDEFSUITE_H
