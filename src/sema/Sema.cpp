//===- sema/Sema.cpp - Semantic analysis: declarations and statements ------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "sema/ConstEval.h"
#include "support/Strings.h"

using namespace cundef;

std::string Sema::currentFunctionName() const {
  return CurFn ? Ctx.Interner.str(CurFn->Name) : "<file scope>";
}

bool Sema::run() {
  for (VarDecl *Global : Ctx.TU.Globals) {
    CurFn = nullptr;
    checkVarDecl(Global);
  }
  for (FunctionDecl *F : Ctx.TU.Functions) {
    // A qualified function type (possible only through a typedef) is
    // undefined, C11 6.7.3p9.
    if (F->DeclQuals != QualNone)
      Ub.report(UbKind::FunctionTypeQualified, Ctx.Interner.str(F->Name),
                F->Loc, /*StaticFinding=*/true);
    if (F->Body)
      checkFunction(F);
  }
  return !Diags.hasErrors();
}

void Sema::checkDeclaredType(QualType Ty, SourceLoc Loc) {
  const Type *T = Ty.Ty;
  if (!T)
    return;
  switch (T->Kind) {
  case TypeKind::Array: {
    // Arrays must have length at least 1 (C11 6.7.6.2p1&5); the paper
    // (section 3.2) describes catching exactly this in kcc. A negative
    // written size appears here as a huge uint64.
    if (T->ArraySizeKnown &&
        (T->ArraySize == 0 || T->ArraySize > (1ull << 48)))
      Ub.report(UbKind::ArraySizeNotPositive, currentFunctionName(), Loc,
                /*StaticFinding=*/true);
    checkDeclaredType(T->Pointee, Loc);
    return;
  }
  case TypeKind::Pointer:
    checkDeclaredType(T->Pointee, Loc);
    return;
  case TypeKind::Function: {
    checkDeclaredType(T->ReturnType, Loc);
    for (const QualType &Param : T->ParamTypes)
      checkDeclaredType(Param, Loc);
    return;
  }
  default:
    return;
  }
}

void Sema::checkVarDecl(VarDecl *V) {
  // An array of unknown size is completed by its initializer
  // (C11 6.7.9p22): int a[] = {1, 2}; char s[] = "hi";
  if (V->Ty.Ty && V->Ty.Ty->isArray() && !V->Ty.Ty->ArraySizeKnown &&
      V->Init) {
    uint64_t Extent = 0;
    if (const auto *List = dynCast<InitListExpr>(V->Init))
      Extent = List->Inits.size();
    else if (const auto *Str = dynCast<StringLitExpr>(V->Init))
      Extent = Str->Bytes.size() + 1;
    if (Extent)
      V->Ty = QualType(
          Ctx.Types.getArray(V->Ty.Ty->Pointee, Extent, /*SizeKnown=*/true),
          V->Ty.Quals);
  }
  checkDeclaredType(V->Ty, V->Loc);
  // A function type with qualifiers is undefined (C11 6.7.3p9); it can
  // only arise through a typedef in our grammar.
  if (V->Ty.Ty->isFunction() && V->Ty.Quals != QualNone)
    Ub.report(UbKind::FunctionTypeQualified, currentFunctionName(), V->Loc,
              /*StaticFinding=*/true);
  if (!V->Ty.Ty->isCompleteObjectType() && !V->Ty.Ty->isFunction()) {
    if (V->Storage != StorageClass::Extern) {
      Ub.report(UbKind::IncompleteTypeObject, currentFunctionName(), V->Loc,
                /*StaticFinding=*/true);
      Diags.error(V->Loc,
                  strFormat("variable '%s' has incomplete type",
                            Ctx.Interner.str(V->Name).c_str()));
      return;
    }
  }
  if (V->Init) {
    bool StaticStorage = V->IsGlobal || V->Storage == StorageClass::Static;
    checkInit(V->Ty, V->Init, StaticStorage, V->Loc);
  }
}

void Sema::checkInit(QualType Ty, Expr *&Init, bool StaticStorage,
                     SourceLoc Loc) {
  const Type *T = Ty.Ty;
  if (auto *List = const_cast<InitListExpr *>(dynCast<InitListExpr>(Init))) {
    List->Ty = Ty.unqualified();
    if (T->isArray()) {
      uint64_t Extent = T->ArraySizeKnown ? T->ArraySize : List->Inits.size();
      if (List->Inits.size() > Extent)
        Diags.error(Loc, "too many initializers for array");
      for (Expr *&Sub : List->Inits)
        checkInit(T->Pointee, Sub, StaticStorage, Loc);
      return;
    }
    if (T->isRecord()) {
      const RecordInfo *Record = T->Record;
      size_t Limit = Record->IsUnion ? 1 : Record->Fields.size();
      if (List->Inits.size() > Limit)
        Diags.error(Loc, "too many initializers for aggregate");
      for (size_t I = 0; I < List->Inits.size() && I < Limit; ++I)
        checkInit(Record->Fields[I].Ty, List->Inits[I], StaticStorage, Loc);
      return;
    }
    // Scalar initialized with braces: allowed with exactly one element.
    if (List->Inits.size() != 1) {
      Diags.error(Loc, "invalid brace-enclosed initializer for scalar");
      return;
    }
    checkInit(Ty, List->Inits[0], StaticStorage, Loc);
    return;
  }
  // Character arrays may be initialized from a string literal.
  if (T->isArray() && isa<StringLitExpr>(Init)) {
    auto *Str = const_cast<StringLitExpr *>(cast<StringLitExpr>(Init));
    typeExpr(Init);
    if (T->ArraySizeKnown && Str->Bytes.size() + 1 > T->ArraySize &&
        Str->Bytes.size() > T->ArraySize)
      Diags.error(Loc, "string literal too long for array");
    return;
  }
  if (T->isArray() || T->isRecord()) {
    if (T->isRecord()) {
      // struct s x = y; -- plain copy initialization.
      typeExpr(Init);
      rvalue(Init);
      if (!Ctx.Types.compatible(Init->Ty.unqualified(), Ty.unqualified()))
        Diags.error(Loc, "incompatible types in aggregate initialization");
      return;
    }
    Diags.error(Loc, "array initializer must be a brace list or string");
    return;
  }
  typeExpr(Init);
  convertTo(Init, Ty.unqualified(), "initialization");
  if (StaticStorage) {
    // Static-duration objects need constant initializers (C11 6.7.9p4).
    // Address constants (string literals, &global, arrays decaying)
    // are permitted; reject only obviously non-constant arithmetic.
    if (T->isArithmetic() && !constEvalInt(Init, Ctx.Types) &&
        !isa<FloatLitExpr>(Init)) {
      bool FloatConst = false;
      if (const auto *Imp = dynCast<ImplicitCastExpr>(Init))
        FloatConst = isa<FloatLitExpr>(Imp->Sub) || isa<IntLitExpr>(Imp->Sub);
      if (!FloatConst)
        Diags.error(Loc, "initializer element is not a constant expression");
    }
  }
}

void Sema::checkFunction(FunctionDecl *F) {
  CurFn = F;
  Labels.clear();
  PendingGotos.clear();
  SwitchStack.clear();
  LoopDepth = 0;
  BreakableDepth = 0;

  checkDeclaredType(QualType(F->FnTy), F->Loc);

  // main's accepted signatures (C11 5.1.2.2.1p1).
  if (Ctx.Interner.str(F->Name) == "main") {
    const Type *FnTy = F->FnTy;
    bool ReturnsInt = FnTy->ReturnType.Ty == Ctx.Types.intTy();
    bool ZeroParams = FnTy->ParamTypes.empty();
    bool TwoParams =
        FnTy->ParamTypes.size() == 2 &&
        FnTy->ParamTypes[0].Ty == Ctx.Types.intTy() &&
        FnTy->ParamTypes[1].Ty->isPointer();
    if (!ReturnsInt || !(ZeroParams || TwoParams))
      Ub.report(UbKind::MainWrongSignature, "main", F->Loc,
                /*StaticFinding=*/true);
  }

  for (VarDecl *Param : F->Params)
    checkDeclaredType(Param->Ty, Param->Loc);

  checkStmt(F->Body);

  for (GotoStmt *Goto : PendingGotos) {
    auto It = Labels.find(Goto->Label);
    if (It == Labels.end()) {
      Diags.error(Goto->Loc,
                  strFormat("use of undeclared label '%s'",
                            Ctx.Interner.str(Goto->Label).c_str()));
      continue;
    }
    Goto->Target = It->second;
  }
  CurFn = nullptr;
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Compound:
    for (Stmt *Sub : static_cast<CompoundStmt *>(S)->Body)
      checkStmt(Sub);
    return;
  case StmtKind::Decl:
    for (VarDecl *V : static_cast<DeclStmt *>(S)->Decls)
      checkVarDecl(V);
    return;
  case StmtKind::Expr: {
    auto *E = static_cast<ExprStmt *>(S);
    if (E->E)
      typeExpr(E->E);
    // The value of an expression statement is discarded; no lvalue
    // conversion is performed (so `x;` does not read x).
    return;
  }
  case StmtKind::If: {
    auto *I = static_cast<IfStmt *>(S);
    typeExpr(I->Cond);
    rvalue(I->Cond);
    if (!I->Cond->Ty.isNull() && !I->Cond->Ty.Ty->isScalar())
      Diags.error(I->Cond->Loc, "if condition must have scalar type");
    checkStmt(I->Then);
    checkStmt(I->Else);
    return;
  }
  case StmtKind::While: {
    auto *W = static_cast<WhileStmt *>(S);
    typeExpr(W->Cond);
    rvalue(W->Cond);
    ++LoopDepth;
    ++BreakableDepth;
    checkStmt(W->Body);
    --LoopDepth;
    --BreakableDepth;
    return;
  }
  case StmtKind::Do: {
    auto *D = static_cast<DoStmt *>(S);
    ++LoopDepth;
    ++BreakableDepth;
    checkStmt(D->Body);
    --LoopDepth;
    --BreakableDepth;
    typeExpr(D->Cond);
    rvalue(D->Cond);
    return;
  }
  case StmtKind::For: {
    auto *F = static_cast<ForStmt *>(S);
    checkStmt(F->Init);
    if (F->Cond) {
      typeExpr(F->Cond);
      rvalue(F->Cond);
    }
    if (F->Inc)
      typeExpr(F->Inc);
    ++LoopDepth;
    ++BreakableDepth;
    checkStmt(F->Body);
    --LoopDepth;
    --BreakableDepth;
    return;
  }
  case StmtKind::Switch: {
    auto *W = static_cast<SwitchStmt *>(S);
    typeExpr(W->Cond);
    rvalue(W->Cond);
    if (!W->Cond->Ty.isNull() && !W->Cond->Ty.Ty->isIntegral())
      Diags.error(W->Cond->Loc, "switch condition must have integer type");
    SwitchStack.push_back(W);
    ++BreakableDepth;
    checkStmt(W->Body);
    --BreakableDepth;
    SwitchStack.pop_back();
    // Duplicate case values are a constraint violation (C11 6.8.4.2p3).
    for (size_t I = 0; I < W->Cases.size(); ++I)
      for (size_t J = I + 1; J < W->Cases.size(); ++J)
        if (W->Cases[I]->Value == W->Cases[J]->Value)
          Diags.error(W->Cases[J]->Loc, "duplicate case value");
    return;
  }
  case StmtKind::Case: {
    auto *C = static_cast<CaseStmt *>(S);
    typeExpr(C->ValueExpr);
    auto Value = constEvalInt(C->ValueExpr, Ctx.Types);
    if (!Value)
      Diags.error(C->Loc, "case label is not an integer constant");
    else
      C->Value = *Value;
    if (SwitchStack.empty())
      Diags.error(C->Loc, "case label outside of switch");
    else
      SwitchStack.back()->Cases.push_back(C);
    checkStmt(C->Sub);
    return;
  }
  case StmtKind::Default: {
    auto *D = static_cast<DefaultStmt *>(S);
    if (SwitchStack.empty())
      Diags.error(D->Loc, "default label outside of switch");
    else if (SwitchStack.back()->Default)
      Diags.error(D->Loc, "multiple default labels in one switch");
    else
      SwitchStack.back()->Default = D;
    checkStmt(D->Sub);
    return;
  }
  case StmtKind::Break:
    if (BreakableDepth == 0)
      Diags.error(S->Loc, "break statement outside of loop or switch");
    return;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->Loc, "continue statement outside of loop");
    return;
  case StmtKind::Goto:
    PendingGotos.push_back(static_cast<GotoStmt *>(S));
    return;
  case StmtKind::Label: {
    auto *L = static_cast<LabelStmt *>(S);
    if (Labels.count(L->Name))
      Diags.error(L->Loc,
                  strFormat("redefinition of label '%s'",
                            Ctx.Interner.str(L->Name).c_str()));
    Labels[L->Name] = L;
    checkStmt(L->Sub);
    return;
  }
  case StmtKind::Return: {
    auto *R = static_cast<ReturnStmt *>(S);
    QualType RetTy = CurFn ? CurFn->FnTy->ReturnType : QualType();
    if (R->Value) {
      typeExpr(R->Value);
      if (!RetTy.isNull() && RetTy.Ty->isVoid()) {
        // return with a value in a void function (C11 6.8.6.4p1).
        Ub.report(UbKind::ReturnVoidValue, currentFunctionName(), R->Loc,
                  /*StaticFinding=*/true);
        Diags.warning(R->Loc, "return with a value in a void function");
        rvalue(R->Value);
        return;
      }
      if (!RetTy.isNull())
        convertTo(R->Value, RetTy.unqualified(), "return");
      return;
    }
    // Plain `return;` in a non-void function is only undefined if the
    // caller uses the value -- checked dynamically (UbKind 24).
    return;
  }
  }
}
