//===- sema/ConstEval.cpp - Integer constant expressions -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "sema/ConstEval.h"

using namespace cundef;

int64_t cundef::truncateToType(int64_t Value, const Type *Ty,
                               const TypeContext &Types) {
  unsigned Bits = Types.bitWidthOf(Ty);
  if (Bits >= 64)
    return Value;
  uint64_t Mask = (1ull << Bits) - 1;
  uint64_t Raw = static_cast<uint64_t>(Value) & Mask;
  if (Ty->isUnsignedInteger(Types.config()))
    return static_cast<int64_t>(Raw);
  // Sign-extend.
  uint64_t SignBit = 1ull << (Bits - 1);
  if (Raw & SignBit)
    Raw |= ~Mask;
  return static_cast<int64_t>(Raw);
}

std::optional<int64_t> cundef::constEvalInt(const Expr *E,
                                            const TypeContext &Types) {
  if (!E)
    return std::nullopt;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return static_cast<int64_t>(cast<IntLitExpr>(E)->Value);
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    auto Sub = constEvalInt(U->Sub, Types);
    if (!Sub)
      return std::nullopt;
    switch (U->Op) {
    case UnaryOp::Plus:   return *Sub;
    case UnaryOp::Minus:  return -*Sub;
    case UnaryOp::BitNot: return ~*Sub;
    case UnaryOp::LogNot: return *Sub == 0 ? 1 : 0;
    default:              return std::nullopt;
    }
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = constEvalInt(B->Lhs, Types);
    if (!L)
      return std::nullopt;
    // Short-circuit forms may have a non-constant unevaluated side in
    // some dialects; C requires both to be constant, so we evaluate
    // both and fail if either is not.
    auto R = constEvalInt(B->Rhs, Types);
    if (!R)
      return std::nullopt;
    switch (B->Op) {
    case BinaryOp::Mul:    return *L * *R;
    case BinaryOp::Div:
      if (*R == 0)
        return std::nullopt;
      if (*L == INT64_MIN && *R == -1)
        return std::nullopt;
      return *L / *R;
    case BinaryOp::Rem:
      if (*R == 0)
        return std::nullopt;
      if (*L == INT64_MIN && *R == -1)
        return std::nullopt;
      return *L % *R;
    case BinaryOp::Add:    return *L + *R;
    case BinaryOp::Sub:    return *L - *R;
    case BinaryOp::Shl:
      return (*R >= 0 && *R < 63) ? (*L << *R) : 0;
    case BinaryOp::Shr:
      return (*R >= 0 && *R < 63) ? (*L >> *R) : 0;
    case BinaryOp::Lt:     return *L < *R;
    case BinaryOp::Gt:     return *L > *R;
    case BinaryOp::Le:     return *L <= *R;
    case BinaryOp::Ge:     return *L >= *R;
    case BinaryOp::Eq:     return *L == *R;
    case BinaryOp::Ne:     return *L != *R;
    case BinaryOp::BitAnd: return *L & *R;
    case BinaryOp::BitXor: return *L ^ *R;
    case BinaryOp::BitOr:  return *L | *R;
    case BinaryOp::LogAnd: return (*L && *R) ? 1 : 0;
    case BinaryOp::LogOr:  return (*L || *R) ? 1 : 0;
    case BinaryOp::Comma:  return std::nullopt;
    }
    return std::nullopt;
  }
  case ExprKind::Cond: {
    const auto *C = cast<CondExpr>(E);
    auto Cond = constEvalInt(C->Cond, Types);
    if (!Cond)
      return std::nullopt;
    return constEvalInt(*Cond ? C->Then : C->Else, Types);
  }
  case ExprKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    if (!C->TargetTy.Ty || !C->TargetTy.Ty->isIntegral())
      return std::nullopt;
    auto Sub = constEvalInt(C->Sub, Types);
    if (!Sub)
      return std::nullopt;
    return truncateToType(*Sub, C->TargetTy.Ty, Types);
  }
  case ExprKind::ImplicitCast: {
    const auto *C = cast<ImplicitCastExpr>(E);
    auto Sub = constEvalInt(C->Sub, Types);
    if (!Sub)
      return std::nullopt;
    if (C->Ty.Ty && C->Ty.Ty->isIntegral())
      return truncateToType(*Sub, C->Ty.Ty, Types);
    return std::nullopt;
  }
  case ExprKind::Sizeof: {
    const auto *S = cast<SizeofExpr>(E);
    if (!S->ArgTy.isNull() && S->ArgTy.Ty->isCompleteObjectType())
      return static_cast<int64_t>(Types.sizeOf(S->ArgTy));
    // sizeof(expr) is constant only after Sema typed the operand.
    if (S->ArgExpr && !S->ArgExpr->Ty.isNull() &&
        S->ArgExpr->Ty.Ty->isCompleteObjectType())
      return static_cast<int64_t>(Types.sizeOf(S->ArgExpr->Ty));
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}
