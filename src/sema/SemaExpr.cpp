//===- sema/SemaExpr.cpp - Semantic analysis: expressions ------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "ast/AstPrinter.h"
#include "sema/ConstEval.h"
#include "support/Strings.h"

using namespace cundef;

bool Sema::isNullPointerConstant(const Expr *E) const {
  // An integer constant expression with value 0, or such an expression
  // cast to void* (C11 6.3.2.3p3).
  if (const auto *Cast = dynCast<CastExpr>(E)) {
    if (Cast->TargetTy.Ty && Cast->TargetTy.Ty->isVoidPointer())
      return isNullPointerConstant(Cast->Sub);
  }
  if (const auto *Imp = dynCast<ImplicitCastExpr>(E))
    return isNullPointerConstant(Imp->Sub);
  if (!E->Ty.isNull() && !E->Ty.Ty->isIntegral())
    return false;
  auto Value = constEvalInt(E, Ctx.Types);
  return Value && *Value == 0;
}

CastKind Sema::castKindFor(QualType From, QualType To) const {
  const Type *F = From.Ty;
  const Type *T = To.Ty;
  if (T->isBool())
    return CastKind::ToBool;
  if (F->isIntegral() && T->isIntegral())
    return CastKind::IntegralCast;
  if (F->isIntegral() && T->isFloating())
    return CastKind::IntToFloat;
  if (F->isFloating() && T->isIntegral())
    return CastKind::FloatToInt;
  if (F->isFloating() && T->isFloating())
    return CastKind::FloatCast;
  if (F->isPointer() && T->isPointer())
    return CastKind::PointerCast;
  if (F->isIntegral() && T->isPointer())
    return CastKind::IntToPointer;
  if (F->isPointer() && T->isIntegral())
    return CastKind::PointerToInt;
  return CastKind::IntegralCast;
}

void Sema::rvalue(Expr *&E) {
  if (E->Ty.isNull())
    return;
  const Type *T = E->Ty.Ty;
  if (T->isArray()) {
    QualType PtrTy(Ctx.Types.getPointer(T->Pointee));
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::ArrayDecay, PtrTy, E);
    return;
  }
  if (T->isFunction()) {
    QualType PtrTy(Ctx.Types.getPointer(E->Ty));
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::FunctionDecay, PtrTy,
                                     E);
    return;
  }
  if (E->Cat == ValueCat::LValue) {
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::LValueToRValue,
                                     E->Ty.unqualified(), E);
  }
}

/// Reports use of a void expression's (nonexistent) value -- statically
/// undefined per C11 6.3.2.2p1 and the paper's section 5.2.1 example.
static void reportVoidUse(Sema &S, UbSink &Ub, DiagnosticEngine &Diags,
                          const std::string &Fn, SourceLoc Loc) {
  (void)S;
  Ub.report(UbKind::UseOfVoidExpressionValue, Fn, Loc,
            /*StaticFinding=*/true);
  Diags.error(Loc, "value of void expression used");
}

void Sema::convertTo(Expr *&E, QualType To, const char *What) {
  rvalue(E);
  if (E->Ty.isNull() || To.isNull())
    return;
  QualType From = E->Ty;
  if (From.Ty == To.Ty)
    return;
  if (From.Ty->isVoid()) {
    reportVoidUse(*this, Ub, Diags, currentFunctionName(), E->Loc);
    return;
  }
  if (To.Ty->isVoid()) {
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::ToVoid, To, E);
    return;
  }
  if (To.Ty->isRecord() || From.Ty->isRecord()) {
    if (!Ctx.Types.compatible(From.unqualified(), To.unqualified()))
      Diags.error(E->Loc, strFormat("incompatible types in %s", What));
    return;
  }
  if (To.Ty->isPointer() && isNullPointerConstant(E)) {
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::NullToPointer, To, E);
    return;
  }
  if (To.Ty->isPointer() && From.Ty->isPointer()) {
    const QualType &FromPointee = From.Ty->Pointee;
    const QualType &ToPointee = To.Ty->Pointee;
    bool EitherVoid = FromPointee.Ty->isVoid() || ToPointee.Ty->isVoid();
    if (!EitherVoid &&
        !Ctx.Types.compatible(FromPointee.unqualified(),
                              ToPointee.unqualified()))
      Diags.warning(E->Loc,
                    strFormat("incompatible pointer types in %s", What));
    // Discarding qualifiers is a constraint violation (C11 6.5.16.1p1);
    // the paper discusses the strchr() loophole around it.
    if ((FromPointee.Quals & ~ToPointee.Quals) != 0)
      Diags.warning(E->Loc,
                    strFormat("%s discards qualifiers from pointer target",
                              What));
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::PointerCast, To, E);
    return;
  }
  if (To.Ty->isPointer() && From.Ty->isIntegral()) {
    Diags.warning(E->Loc,
                  strFormat("implicit integer-to-pointer conversion in %s",
                            What));
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::IntToPointer, To, E);
    return;
  }
  if (To.Ty->isIntegral() && From.Ty->isPointer()) {
    Diags.warning(E->Loc,
                  strFormat("implicit pointer-to-integer conversion in %s",
                            What));
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::PointerToInt, To, E);
    return;
  }
  if (From.Ty->isArithmetic() && To.Ty->isArithmetic()) {
    E = Ctx.create<ImplicitCastExpr>(E->Loc, castKindFor(From, To), To, E);
    return;
  }
  Diags.error(E->Loc, strFormat("invalid conversion in %s", What));
}

QualType Sema::usualArith(Expr *&L, Expr *&R) {
  rvalue(L);
  rvalue(R);
  if (L->Ty.isNull() || R->Ty.isNull())
    return QualType(Ctx.Types.intTy());
  if (!L->Ty.Ty->isArithmetic() || !R->Ty.Ty->isArithmetic()) {
    if (L->Ty.Ty->isVoid() || R->Ty.Ty->isVoid())
      reportVoidUse(*this, Ub, Diags, currentFunctionName(), L->Loc);
    else
      Diags.error(L->Loc, "operands must have arithmetic type");
    return QualType(Ctx.Types.intTy());
  }
  QualType Common = Ctx.Types.usualArithmetic(L->Ty, R->Ty);
  if (L->Ty.Ty != Common.Ty)
    L = Ctx.create<ImplicitCastExpr>(L->Loc, castKindFor(L->Ty, Common),
                                     Common, L);
  if (R->Ty.Ty != Common.Ty)
    R = Ctx.create<ImplicitCastExpr>(R->Loc, castKindFor(R->Ty, Common),
                                     Common, R);
  return Common;
}

void Sema::defaultPromote(Expr *&E) {
  rvalue(E);
  if (E->Ty.isNull())
    return;
  const Type *T = E->Ty.Ty;
  if (T->Kind == TypeKind::Float) {
    E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::FloatCast,
                                     QualType(Ctx.Types.doubleTy()), E);
    return;
  }
  if (T->isIntegral()) {
    QualType Promoted = Ctx.Types.promote(E->Ty);
    if (Promoted.Ty != T)
      E = Ctx.create<ImplicitCastExpr>(E->Loc, CastKind::IntegralCast,
                                       Promoted, E);
  }
}

void Sema::requireModifiable(const Expr *Lhs, SourceLoc Loc) {
  if (Lhs->Ty.isNull())
    return;
  if (Lhs->Cat != ValueCat::LValue) {
    Diags.error(Loc, "expression is not assignable (not an lvalue)");
    return;
  }
  if (Lhs->Ty.isConst()) {
    // Assignment to a const-qualified lvalue: constraint violation,
    // classified statically undefined (catalog id 43). Reported as a
    // finding (the kcc way) rather than a hard error so the program
    // still executes and the dynamic notWritable check fires too.
    Ub.report(UbKind::AssignToConstLvalue, currentFunctionName(), Loc,
              /*StaticFinding=*/true);
    Diags.warning(Loc, "assignment to const-qualified lvalue");
    return;
  }
  if (Lhs->Ty.Ty->isArray())
    Diags.error(Loc, "array is not assignable");
}

void Sema::typeExpr(Expr *&E) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::StringLit:
    return; // typed by the parser
  case ExprKind::DeclRef: {
    auto *Ref = static_cast<DeclRefExpr *>(E);
    if (Ref->Var) {
      Ref->Ty = Ref->Var->Ty;
      Ref->Cat = ValueCat::LValue;
    } else if (Ref->Fn) {
      Ref->Ty = QualType(Ref->Fn->FnTy);
      Ref->Cat = ValueCat::RValue; // function designator
    } else {
      Ref->Ty = QualType(Ctx.Types.intTy()); // recovery
    }
    return;
  }
  case ExprKind::Unary:
    typeUnary(static_cast<UnaryExpr *>(E), E);
    return;
  case ExprKind::Binary:
    typeBinary(static_cast<BinaryExpr *>(E), E);
    return;
  case ExprKind::Assign:
    typeAssign(static_cast<AssignExpr *>(E));
    return;
  case ExprKind::Cond: {
    auto *C = static_cast<CondExpr *>(E);
    typeExpr(C->Cond);
    rvalue(C->Cond);
    if (!C->Cond->Ty.isNull() && !C->Cond->Ty.Ty->isScalar())
      Diags.error(C->Cond->Loc, "condition must have scalar type");
    typeExpr(C->Then);
    typeExpr(C->Else);
    rvalue(C->Then);
    rvalue(C->Else);
    QualType LT = C->Then->Ty;
    QualType RT = C->Else->Ty;
    if (LT.isNull() || RT.isNull()) {
      C->Ty = QualType(Ctx.Types.intTy());
      return;
    }
    if (LT.Ty->isArithmetic() && RT.Ty->isArithmetic()) {
      C->Ty = usualArith(C->Then, C->Else);
      return;
    }
    if (LT.Ty->isVoid() && RT.Ty->isVoid()) {
      C->Ty = QualType(Ctx.Types.voidTy());
      return;
    }
    if (LT.Ty->isPointer() && isNullPointerConstant(C->Else)) {
      convertTo(C->Else, LT.unqualified(), "conditional expression");
      C->Ty = LT.unqualified();
      return;
    }
    if (RT.Ty->isPointer() && isNullPointerConstant(C->Then)) {
      convertTo(C->Then, RT.unqualified(), "conditional expression");
      C->Ty = RT.unqualified();
      return;
    }
    if (LT.Ty->isPointer() && RT.Ty->isPointer()) {
      if (LT.Ty->Pointee.Ty->isVoid()) {
        convertTo(C->Then, LT.unqualified(), "conditional expression");
        convertTo(C->Else, LT.unqualified(), "conditional expression");
        C->Ty = LT.unqualified();
        return;
      }
      if (RT.Ty->Pointee.Ty->isVoid() ||
          !Ctx.Types.compatible(LT.unqualified(), RT.unqualified())) {
        convertTo(C->Then, RT.unqualified(), "conditional expression");
        convertTo(C->Else, RT.unqualified(), "conditional expression");
        C->Ty = RT.unqualified();
        return;
      }
      C->Ty = LT.unqualified();
      return;
    }
    if (LT.Ty->isRecord() &&
        Ctx.Types.compatible(LT.unqualified(), RT.unqualified())) {
      C->Ty = LT.unqualified();
      return;
    }
    Diags.error(C->Loc, "incompatible operands of conditional expression");
    C->Ty = QualType(Ctx.Types.intTy());
    return;
  }
  case ExprKind::Cast: {
    auto *C = static_cast<CastExpr *>(E);
    typeExpr(C->Sub);
    QualType To = C->TargetTy;
    if (To.Ty->isVoid()) {
      C->CK = CastKind::ToVoid;
      C->Ty = To.unqualified();
      return;
    }
    rvalue(C->Sub);
    QualType From = C->Sub->Ty;
    if (From.isNull()) {
      C->Ty = To.unqualified();
      return;
    }
    if (From.Ty->isVoid()) {
      // (int)(void)5 -- statically undefined use of a void value.
      reportVoidUse(*this, Ub, Diags, currentFunctionName(), C->Loc);
      C->Ty = To.unqualified();
      return;
    }
    if (!To.Ty->isScalar() || !From.Ty->isScalar()) {
      Diags.error(C->Loc, "cast requires scalar types");
      C->Ty = To.unqualified();
      return;
    }
    C->CK = castKindFor(From, To);
    C->Ty = To.unqualified();
    return;
  }
  case ExprKind::Call:
    typeCall(static_cast<CallExpr *>(E));
    return;
  case ExprKind::Member:
    typeMember(static_cast<MemberExpr *>(E));
    return;
  case ExprKind::Index: {
    auto *I = static_cast<IndexExpr *>(E);
    typeExpr(I->Base);
    typeExpr(I->Index);
    rvalue(I->Base);
    rvalue(I->Index);
    // C allows i[p] as well as p[i]; normalize so Base is the pointer.
    if (!I->Base->Ty.isNull() && I->Base->Ty.Ty->isIntegral() &&
        !I->Index->Ty.isNull() && I->Index->Ty.Ty->isPointer())
      std::swap(I->Base, I->Index);
    if (I->Base->Ty.isNull() || !I->Base->Ty.Ty->isPointer()) {
      Diags.error(I->Loc, "subscripted value is not a pointer or array");
      I->Ty = QualType(Ctx.Types.intTy());
      return;
    }
    if (!I->Index->Ty.isNull() && !I->Index->Ty.Ty->isIntegral())
      Diags.error(I->Index->Loc, "array subscript is not an integer");
    I->Ty = I->Base->Ty.Ty->Pointee;
    I->Cat = ValueCat::LValue;
    return;
  }
  case ExprKind::Sizeof: {
    auto *S = static_cast<SizeofExpr *>(E);
    if (S->ArgExpr) {
      typeExpr(S->ArgExpr); // not evaluated; no decay, no lvalue conv
      if (!S->ArgExpr->Ty.isNull() &&
          (S->ArgExpr->Ty.Ty->isFunction() ||
           !S->ArgExpr->Ty.Ty->isCompleteObjectType()))
        Diags.error(S->Loc,
                    "sizeof requires a complete object type operand");
    } else if (!S->ArgTy.isNull() && (S->ArgTy.Ty->isFunction() ||
                                      !S->ArgTy.Ty->isCompleteObjectType())) {
      Diags.error(S->Loc, "sizeof requires a complete object type");
    }
    S->Ty = QualType(Ctx.Types.sizeTy());
    return;
  }
  case ExprKind::ImplicitCast:
    return; // already built by Sema
  case ExprKind::InitList:
    Diags.error(E->Loc, "initializer list used outside initialization");
    E->Ty = QualType(Ctx.Types.intTy());
    return;
  }
}

void Sema::typeUnary(UnaryExpr *U, Expr *&Slot) {
  typeExpr(U->Sub);
  switch (U->Op) {
  case UnaryOp::AddrOf: {
    if (U->Sub->Ty.isNull()) {
      U->Ty = QualType(Ctx.Types.getPointer(QualType(Ctx.Types.intTy())));
      return;
    }
    if (U->Sub->Ty.Ty->isFunction()) {
      U->Ty = QualType(Ctx.Types.getPointer(U->Sub->Ty));
      return;
    }
    if (U->Sub->Cat != ValueCat::LValue) {
      Diags.error(U->Loc, "cannot take the address of an rvalue");
      U->Ty = QualType(Ctx.Types.getPointer(QualType(Ctx.Types.intTy())));
      return;
    }
    U->Ty = QualType(Ctx.Types.getPointer(U->Sub->Ty));
    return;
  }
  case UnaryOp::Deref: {
    rvalue(U->Sub);
    if (U->Sub->Ty.isNull() || !U->Sub->Ty.Ty->isPointer()) {
      Diags.error(U->Loc, "indirection requires a pointer operand");
      U->Ty = QualType(Ctx.Types.intTy());
      return;
    }
    QualType Pointee = U->Sub->Ty.Ty->Pointee;
    U->Ty = Pointee;
    // *p where p : void* yields a "void lvalue" one cannot use; we keep
    // it an rvalue of void type (the machine flags the dereference).
    U->Cat = Pointee.Ty->isVoid() || Pointee.Ty->isFunction()
                 ? ValueCat::RValue
                 : ValueCat::LValue;
    return;
  }
  case UnaryOp::Plus:
  case UnaryOp::Minus: {
    rvalue(U->Sub);
    if (U->Sub->Ty.isNull() || !U->Sub->Ty.Ty->isArithmetic()) {
      Diags.error(U->Loc, "unary +/- requires an arithmetic operand");
      U->Ty = QualType(Ctx.Types.intTy());
      return;
    }
    if (U->Sub->Ty.Ty->isIntegral()) {
      QualType Promoted = Ctx.Types.promote(U->Sub->Ty);
      if (Promoted.Ty != U->Sub->Ty.Ty)
        U->Sub = Ctx.create<ImplicitCastExpr>(
            U->Sub->Loc, CastKind::IntegralCast, Promoted, U->Sub);
    }
    U->Ty = U->Sub->Ty.unqualified();
    return;
  }
  case UnaryOp::BitNot: {
    rvalue(U->Sub);
    if (U->Sub->Ty.isNull() || !U->Sub->Ty.Ty->isIntegral()) {
      Diags.error(U->Loc, "~ requires an integer operand");
      U->Ty = QualType(Ctx.Types.intTy());
      return;
    }
    QualType Promoted = Ctx.Types.promote(U->Sub->Ty);
    if (Promoted.Ty != U->Sub->Ty.Ty)
      U->Sub = Ctx.create<ImplicitCastExpr>(
          U->Sub->Loc, CastKind::IntegralCast, Promoted, U->Sub);
    U->Ty = Promoted;
    return;
  }
  case UnaryOp::LogNot: {
    rvalue(U->Sub);
    if (!U->Sub->Ty.isNull() && !U->Sub->Ty.Ty->isScalar())
      Diags.error(U->Loc, "! requires a scalar operand");
    U->Ty = QualType(Ctx.Types.intTy());
    return;
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    requireModifiable(U->Sub, U->Loc);
    if (!U->Sub->Ty.isNull() && !U->Sub->Ty.Ty->isScalar())
      Diags.error(U->Loc, "++/-- requires a scalar operand");
    U->Ty = U->Sub->Ty.unqualified();
    return;
  }
  }
  (void)Slot;
}

void Sema::typeBinary(BinaryExpr *B, Expr *&Slot) {
  (void)Slot;
  typeExpr(B->Lhs);
  typeExpr(B->Rhs);
  const TypeContext &Types = Ctx.Types;
  switch (B->Op) {
  case BinaryOp::Comma:
    // Left value discarded (no lvalue conversion); right converted.
    rvalue(B->Rhs);
    B->Ty = B->Rhs->Ty.unqualified();
    return;
  case BinaryOp::LogAnd:
  case BinaryOp::LogOr: {
    rvalue(B->Lhs);
    rvalue(B->Rhs);
    for (Expr *Side : {B->Lhs, B->Rhs})
      if (!Side->Ty.isNull() && !Side->Ty.Ty->isScalar())
        Diags.error(Side->Loc, "logical operator requires scalar operands");
    B->Ty = QualType(Types.intTy());
    return;
  }
  case BinaryOp::Mul:
  case BinaryOp::Div:
    B->Ty = usualArith(B->Lhs, B->Rhs);
    return;
  case BinaryOp::Rem:
  case BinaryOp::BitAnd:
  case BinaryOp::BitXor:
  case BinaryOp::BitOr: {
    rvalue(B->Lhs);
    rvalue(B->Rhs);
    for (Expr *Side : {B->Lhs, B->Rhs})
      if (!Side->Ty.isNull() && !Side->Ty.Ty->isIntegral())
        Diags.error(Side->Loc, "operator requires integer operands");
    B->Ty = usualArith(B->Lhs, B->Rhs);
    return;
  }
  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    rvalue(B->Lhs);
    rvalue(B->Rhs);
    for (Expr **Side : {&B->Lhs, &B->Rhs}) {
      if ((*Side)->Ty.isNull() || !(*Side)->Ty.Ty->isIntegral()) {
        Diags.error((*Side)->Loc, "shift requires integer operands");
        continue;
      }
      QualType Promoted = Types.promote((*Side)->Ty);
      if (Promoted.Ty != (*Side)->Ty.Ty)
        *Side = Ctx.create<ImplicitCastExpr>(
            (*Side)->Loc, CastKind::IntegralCast, Promoted, *Side);
    }
    B->Ty = B->Lhs->Ty.unqualified();
    return;
  }
  case BinaryOp::Add: {
    rvalue(B->Lhs);
    rvalue(B->Rhs);
    QualType LT = B->Lhs->Ty;
    QualType RT = B->Rhs->Ty;
    if (LT.isNull() || RT.isNull()) {
      B->Ty = QualType(Types.intTy());
      return;
    }
    if (LT.Ty->isArithmetic() && RT.Ty->isArithmetic()) {
      B->Ty = usualArith(B->Lhs, B->Rhs);
      return;
    }
    if (LT.Ty->isPointer() && RT.Ty->isIntegral()) {
      B->Ty = LT.unqualified();
      return;
    }
    if (LT.Ty->isIntegral() && RT.Ty->isPointer()) {
      B->Ty = RT.unqualified();
      return;
    }
    Diags.error(B->Loc, "invalid operands to +");
    B->Ty = QualType(Types.intTy());
    return;
  }
  case BinaryOp::Sub: {
    rvalue(B->Lhs);
    rvalue(B->Rhs);
    QualType LT = B->Lhs->Ty;
    QualType RT = B->Rhs->Ty;
    if (LT.isNull() || RT.isNull()) {
      B->Ty = QualType(Types.intTy());
      return;
    }
    if (LT.Ty->isArithmetic() && RT.Ty->isArithmetic()) {
      B->Ty = usualArith(B->Lhs, B->Rhs);
      return;
    }
    if (LT.Ty->isPointer() && RT.Ty->isIntegral()) {
      B->Ty = LT.unqualified();
      return;
    }
    if (LT.Ty->isPointer() && RT.Ty->isPointer()) {
      if (!Types.compatible(LT.Ty->Pointee.unqualified(),
                            RT.Ty->Pointee.unqualified()))
        Diags.error(B->Loc, "subtraction of incompatible pointer types");
      B->Ty = QualType(Types.ptrdiffTy());
      return;
    }
    Diags.error(B->Loc, "invalid operands to -");
    B->Ty = QualType(Types.intTy());
    return;
  }
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    rvalue(B->Lhs);
    rvalue(B->Rhs);
    QualType LT = B->Lhs->Ty;
    QualType RT = B->Rhs->Ty;
    B->Ty = QualType(Types.intTy());
    if (LT.isNull() || RT.isNull())
      return;
    if (LT.Ty->isArithmetic() && RT.Ty->isArithmetic()) {
      usualArith(B->Lhs, B->Rhs);
      return;
    }
    bool IsEquality = B->Op == BinaryOp::Eq || B->Op == BinaryOp::Ne;
    if (LT.Ty->isPointer() && IsEquality && isNullPointerConstant(B->Rhs)) {
      convertTo(B->Rhs, LT.unqualified(), "comparison");
      return;
    }
    if (RT.Ty->isPointer() && IsEquality && isNullPointerConstant(B->Lhs)) {
      convertTo(B->Lhs, RT.unqualified(), "comparison");
      return;
    }
    if (LT.Ty->isPointer() && RT.Ty->isPointer())
      return; // same-object requirement checked dynamically
    if (LT.Ty->isPointer() || RT.Ty->isPointer()) {
      Diags.warning(B->Loc, "comparison between pointer and integer");
      if (LT.Ty->isPointer())
        convertTo(B->Rhs, LT.unqualified(), "comparison");
      else
        convertTo(B->Lhs, RT.unqualified(), "comparison");
      return;
    }
    Diags.error(B->Loc, "invalid operands to comparison");
    return;
  }
  default:
    Diags.error(B->Loc, "unhandled binary operator");
    B->Ty = QualType(Types.intTy());
    return;
  }
}

void Sema::typeAssign(AssignExpr *A) {
  typeExpr(A->Lhs);
  typeExpr(A->Rhs);
  requireModifiable(A->Lhs, A->Loc);
  QualType LhsTy = A->Lhs->Ty;
  if (LhsTy.isNull()) {
    A->Ty = QualType(Ctx.Types.intTy());
    return;
  }
  A->Ty = LhsTy.unqualified();
  if (A->Op == AssignOp::Assign) {
    convertTo(A->Rhs, LhsTy.unqualified(), "assignment");
    return;
  }
  // Compound assignment: determine the computation type.
  BinaryOp Op = compoundOpOf(A->Op);
  if (Op == BinaryOp::Shl || Op == BinaryOp::Shr) {
    rvalue(A->Rhs);
    A->ComputeTy = Ctx.Types.promote(LhsTy.unqualified());
    if (!A->Rhs->Ty.isNull() && !A->Rhs->Ty.Ty->isIntegral())
      Diags.error(A->Rhs->Loc, "shift requires integer operands");
    return;
  }
  if (LhsTy.Ty->isPointer() &&
      (Op == BinaryOp::Add || Op == BinaryOp::Sub)) {
    rvalue(A->Rhs);
    if (!A->Rhs->Ty.isNull() && !A->Rhs->Ty.Ty->isIntegral())
      Diags.error(A->Rhs->Loc, "pointer compound assignment needs integer");
    A->ComputeTy = LhsTy.unqualified();
    return;
  }
  rvalue(A->Rhs);
  if (LhsTy.Ty->isArithmetic() && !A->Rhs->Ty.isNull() &&
      A->Rhs->Ty.Ty->isArithmetic()) {
    A->ComputeTy = Ctx.Types.usualArithmetic(LhsTy.unqualified(), A->Rhs->Ty);
    convertTo(A->Rhs, A->ComputeTy, "compound assignment");
    if ((Op == BinaryOp::Rem || Op == BinaryOp::BitAnd ||
         Op == BinaryOp::BitXor || Op == BinaryOp::BitOr) &&
        !A->ComputeTy.Ty->isIntegral())
      Diags.error(A->Loc, "operator requires integer operands");
    return;
  }
  Diags.error(A->Loc, "invalid operands to compound assignment");
  A->ComputeTy = QualType(Ctx.Types.intTy());
}

void Sema::typeCall(CallExpr *C) {
  typeExpr(C->Callee);
  rvalue(C->Callee); // function designators decay to pointers
  const Type *FnTy = nullptr;
  if (!C->Callee->Ty.isNull() && C->Callee->Ty.Ty->isFunctionPointer())
    FnTy = C->Callee->Ty.Ty->Pointee.Ty;
  if (!FnTy) {
    Diags.error(C->Loc, "called object is not a function");
    for (Expr *&Arg : C->Args)
      typeExpr(Arg);
    C->Ty = QualType(Ctx.Types.intTy());
    return;
  }
  C->Ty = FnTy->ReturnType.unqualified();

  for (Expr *&Arg : C->Args)
    typeExpr(Arg);

  if (FnTy->NoProto) {
    // Unchecked call: default argument promotions; the machine checks
    // the definition's expectations at run time (UbKind 22/23).
    for (Expr *&Arg : C->Args)
      defaultPromote(Arg);
    return;
  }
  size_t NumParams = FnTy->ParamTypes.size();
  if (C->Args.size() < NumParams ||
      (C->Args.size() > NumParams && !FnTy->Variadic)) {
    // Constraint violation (C11 6.5.2.2p2): statically undefined call.
    Ub.report(UbKind::CallArityMismatch, currentFunctionName(), C->Loc,
              /*StaticFinding=*/true);
    Diags.error(C->Loc,
                strFormat("call supplies %zu argument(s), prototype has %zu",
                          C->Args.size(), NumParams));
  }
  for (size_t I = 0; I < C->Args.size(); ++I) {
    if (I < NumParams)
      convertTo(C->Args[I], FnTy->ParamTypes[I].unqualified(),
                "argument passing");
    else
      defaultPromote(C->Args[I]); // variadic tail
  }
}

void Sema::typeMember(MemberExpr *M) {
  typeExpr(M->Base);
  const Type *RecordTy = nullptr;
  uint8_t ExtraQuals = QualNone;
  if (M->IsArrow) {
    rvalue(M->Base);
    if (!M->Base->Ty.isNull() && M->Base->Ty.Ty->isPointer() &&
        M->Base->Ty.Ty->Pointee.Ty->isRecord()) {
      RecordTy = M->Base->Ty.Ty->Pointee.Ty;
      ExtraQuals = M->Base->Ty.Ty->Pointee.Quals;
    }
  } else if (!M->Base->Ty.isNull() && M->Base->Ty.Ty->isRecord()) {
    RecordTy = M->Base->Ty.Ty;
    ExtraQuals = M->Base->Ty.Quals;
  }
  if (!RecordTy || !RecordTy->Record->Complete) {
    Diags.error(M->Loc, "member access into a non-struct/union type");
    M->Ty = QualType(Ctx.Types.intTy());
    return;
  }
  int Idx = RecordTy->Record->fieldIndex(M->Member);
  if (Idx < 0) {
    Diags.error(M->Loc,
                strFormat("no member named '%s'",
                          Ctx.Interner.str(M->Member).c_str()));
    M->Ty = QualType(Ctx.Types.intTy());
    return;
  }
  M->FieldIdx = Idx;
  const FieldInfo &Field = RecordTy->Record->Fields[Idx];
  M->Ty = Field.Ty.withQuals(ExtraQuals);
  M->Cat = M->IsArrow ? ValueCat::LValue : M->Base->Cat;
}
