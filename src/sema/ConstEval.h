//===- sema/ConstEval.h - Integer constant expressions ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time evaluation of integer constant expressions (C11 6.6).
/// Works on both un-analyzed and Sema-annotated ASTs: only forms that
/// can appear in constant expressions are handled, everything else
/// yields nullopt. Division by zero in a constant expression also
/// yields nullopt (the caller diagnoses it).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SEMA_CONSTEVAL_H
#define CUNDEF_SEMA_CONSTEVAL_H

#include "ast/Ast.h"

#include <optional>

namespace cundef {

/// Evaluates \p E as an integer constant expression.
std::optional<int64_t> constEvalInt(const Expr *E, const TypeContext &Types);

/// Wraps \p Value into the representation of integral type \p Ty
/// (two's complement truncation; the implementation-defined choice for
/// out-of-range signed conversions, C11 6.3.1.3p3).
int64_t truncateToType(int64_t Value, const Type *Ty,
                       const TypeContext &Types);

} // namespace cundef

#endif // CUNDEF_SEMA_CONSTEVAL_H
