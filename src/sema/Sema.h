//===- sema/Sema.h - Semantic analysis -------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis: types every expression, inserts implicit
/// conversions (lvalue conversion, array/function decay, arithmetic
/// conversions), resolves gotos and switch cases, and checks
/// declarations. Type errors go to the DiagnosticEngine; findings that
/// the paper classifies as *statically undefined* (e.g. using the value
/// of a void expression, assigning to a const lvalue) are additionally
/// recorded in the UbSink so the driver can report them the way kcc
/// does at "compile time".
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SEMA_SEMA_H
#define CUNDEF_SEMA_SEMA_H

#include "ast/Ast.h"
#include "support/Diagnostics.h"
#include "ub/Report.h"

#include <map>
#include <vector>

namespace cundef {

class Sema {
public:
  Sema(AstContext &Ctx, DiagnosticEngine &Diags, UbSink &Ub)
      : Ctx(Ctx), Diags(Diags), Ub(Ub) {}

  /// Analyzes the whole translation unit. Returns false when type
  /// errors were reported (static-UB findings alone do not fail it).
  bool run();

  //===--- Expression typing (SemaExpr.cpp); public for tests ----------===//

  /// Types \p E (recursively), possibly replacing it with a wrapper.
  void typeExpr(Expr *&E);
  /// Applies lvalue conversion and array/function decay.
  void rvalue(Expr *&E);
  /// Converts \p E to \p To as if by assignment; inserts casts.
  void convertTo(Expr *&E, QualType To, const char *What);
  /// True for integer constant expressions of value 0 (optionally cast
  /// to void*), C11 6.3.2.3p3.
  bool isNullPointerConstant(const Expr *E) const;

private:
  void checkFunction(FunctionDecl *F);
  void checkStmt(Stmt *S);
  void checkVarDecl(VarDecl *V);
  /// Checks and types an initializer against \p Ty.
  void checkInit(QualType Ty, Expr *&Init, bool StaticStorage,
                 SourceLoc Loc);
  /// Flags statically undefined array/function-qualifier shapes in a
  /// declared type (paper section 3.2's array-length example).
  void checkDeclaredType(QualType Ty, SourceLoc Loc);

  // Expression helpers (SemaExpr.cpp).
  void typeUnary(UnaryExpr *U, Expr *&Slot);
  void typeBinary(BinaryExpr *B, Expr *&Slot);
  void typeAssign(AssignExpr *A);
  void typeCall(CallExpr *C);
  void typeMember(MemberExpr *M);
  CastKind castKindFor(QualType From, QualType To) const;
  /// Applies usual arithmetic conversions to both operands.
  QualType usualArith(Expr *&L, Expr *&R);
  /// Default argument promotions (C11 6.5.2.2p6).
  void defaultPromote(Expr *&E);
  void requireModifiable(const Expr *Lhs, SourceLoc Loc);
  std::string currentFunctionName() const;

  AstContext &Ctx;
  DiagnosticEngine &Diags;
  UbSink &Ub;
  FunctionDecl *CurFn = nullptr;
  std::vector<SwitchStmt *> SwitchStack;
  int LoopDepth = 0;
  int BreakableDepth = 0;
  std::map<Symbol, const LabelStmt *> Labels;
  std::vector<GotoStmt *> PendingGotos;
};

} // namespace cundef

#endif // CUNDEF_SEMA_SEMA_H
