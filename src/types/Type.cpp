//===- types/Type.cpp - C type system -------------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

#include "support/Strings.h"

using namespace cundef;

bool Type::isUnsignedInteger(const TargetConfig &Config) const {
  switch (Kind) {
  case TypeKind::Bool:
  case TypeKind::UChar:
  case TypeKind::UShort:
  case TypeKind::UInt:
  case TypeKind::ULong:
  case TypeKind::ULongLong:
    return true;
  case TypeKind::Char:
    return !Config.CharIsSigned;
  default:
    return false;
  }
}

unsigned Type::integerRank() const {
  switch (Kind) {
  case TypeKind::Bool:
    return 1;
  case TypeKind::Char:
  case TypeKind::SChar:
  case TypeKind::UChar:
    return 2;
  case TypeKind::Short:
  case TypeKind::UShort:
    return 3;
  case TypeKind::Int:
  case TypeKind::UInt:
  case TypeKind::Enum:
    return 4;
  case TypeKind::Long:
  case TypeKind::ULong:
    return 5;
  case TypeKind::LongLong:
  case TypeKind::ULongLong:
    return 6;
  default:
    return 0;
  }
}

TypeContext::TypeContext(const TargetConfig &Config) : Config(Config) {
  for (int K = 0; K <= (int)TypeKind::Double; ++K)
    Builtins[K] = makeBuiltin(static_cast<TypeKind>(K));
}

const Type *TypeContext::makeBuiltin(TypeKind Kind) {
  OwnedTypes.push_back(std::make_unique<Type>(Kind));
  return OwnedTypes.back().get();
}

const Type *TypeContext::getPointer(QualType Pointee) {
  auto Key = std::make_pair(Pointee.Ty, Pointee.Quals);
  auto It = PointerTypes.find(Key);
  if (It != PointerTypes.end())
    return It->second;
  OwnedTypes.push_back(std::make_unique<Type>(TypeKind::Pointer));
  Type *Ty = OwnedTypes.back().get();
  Ty->Pointee = Pointee;
  PointerTypes[Key] = Ty;
  return Ty;
}

const Type *TypeContext::getArray(QualType Element, uint64_t Size,
                                  bool SizeKnown) {
  auto Key = std::make_tuple(Element.Ty, Element.Quals, Size, SizeKnown);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  OwnedTypes.push_back(std::make_unique<Type>(TypeKind::Array));
  Type *Ty = OwnedTypes.back().get();
  Ty->Pointee = Element;
  Ty->ArraySize = Size;
  Ty->ArraySizeKnown = SizeKnown;
  ArrayTypes[Key] = Ty;
  return Ty;
}

const Type *TypeContext::getFunction(QualType Return,
                                     std::vector<QualType> Params,
                                     bool Variadic, bool NoProto) {
  // Function types are not uniqued (compared structurally when needed);
  // the number of distinct signatures per program is small.
  OwnedTypes.push_back(std::make_unique<Type>(TypeKind::Function));
  Type *Ty = OwnedTypes.back().get();
  Ty->ReturnType = Return;
  Ty->ParamTypes = std::move(Params);
  Ty->Variadic = Variadic;
  Ty->NoProto = NoProto;
  return Ty;
}

Type *TypeContext::createRecord(bool IsUnion, Symbol Tag) {
  OwnedTypes.push_back(std::make_unique<Type>(
      IsUnion ? TypeKind::Union : TypeKind::Struct));
  Type *Ty = OwnedTypes.back().get();
  OwnedRecords.push_back(std::make_unique<RecordInfo>());
  Ty->Record = OwnedRecords.back().get();
  Ty->Record->IsUnion = IsUnion;
  Ty->Record->Tag = Tag;
  return Ty;
}

Type *TypeContext::createEnum(Symbol Tag) {
  OwnedTypes.push_back(std::make_unique<Type>(TypeKind::Enum));
  Type *Ty = OwnedTypes.back().get();
  OwnedEnums.push_back(std::make_unique<EnumInfo>());
  Ty->Enum = OwnedEnums.back().get();
  Ty->Enum->Tag = Tag;
  return Ty;
}

void TypeContext::completeRecord(Type *RecordTy,
                                 std::vector<FieldInfo> Fields) {
  assert(RecordTy->isRecord() && "not a record type");
  RecordInfo *Info = RecordTy->Record;
  assert(!Info->Complete && "record completed twice");
  uint64_t Offset = 0;
  uint64_t Align = 1;
  for (FieldInfo &Field : Fields) {
    uint64_t FieldAlign = alignOf(Field.Ty);
    uint64_t FieldSize = sizeOf(Field.Ty);
    Align = std::max(Align, FieldAlign);
    if (Info->IsUnion) {
      Field.Offset = 0;
      Offset = std::max(Offset, FieldSize);
    } else {
      Offset = (Offset + FieldAlign - 1) / FieldAlign * FieldAlign;
      Field.Offset = Offset;
      Offset += FieldSize;
    }
  }
  // Tail padding to a multiple of the record alignment.
  uint64_t Size = (Offset + Align - 1) / Align * Align;
  if (Size == 0)
    Size = 1; // empty structs are a GNU extension; give them size 1
  Info->Fields = std::move(Fields);
  Info->Size = Size;
  Info->Align = Align;
  Info->Complete = true;
}

uint64_t TypeContext::sizeOf(QualType Ty) const {
  const Type *T = Ty.Ty;
  assert(T && "sizeOf of null type");
  switch (T->Kind) {
  case TypeKind::Void:
    return 1; // GNU-compatible sizeof(void); sema rejects where needed
  case TypeKind::Bool:
    return Config.BoolSize;
  case TypeKind::Char:
  case TypeKind::SChar:
  case TypeKind::UChar:
    return 1;
  case TypeKind::Short:
  case TypeKind::UShort:
    return Config.ShortSize;
  case TypeKind::Int:
  case TypeKind::UInt:
  case TypeKind::Enum:
    return Config.IntSize;
  case TypeKind::Long:
  case TypeKind::ULong:
    return Config.LongSize;
  case TypeKind::LongLong:
  case TypeKind::ULongLong:
    return Config.LongLongSize;
  case TypeKind::Float:
    return Config.FloatSize;
  case TypeKind::Double:
    return Config.DoubleSize;
  case TypeKind::Pointer:
    return Config.PointerSize;
  case TypeKind::Array:
    return sizeOf(T->Pointee) * T->ArraySize;
  case TypeKind::Struct:
  case TypeKind::Union:
    assert(T->Record->Complete && "sizeof incomplete record");
    return T->Record->Size;
  case TypeKind::Function:
    return 1; // GNU extension; never used for real layout
  }
  return 1;
}

uint64_t TypeContext::alignOf(QualType Ty) const {
  const Type *T = Ty.Ty;
  switch (T->Kind) {
  case TypeKind::Array:
    return alignOf(T->Pointee);
  case TypeKind::Struct:
  case TypeKind::Union:
    return T->Record->Align;
  default:
    return std::min<uint64_t>(sizeOf(Ty), Config.MaxAlign);
  }
}

unsigned TypeContext::bitWidthOf(const Type *Ty) const {
  if (Ty->Kind == TypeKind::Bool)
    return 1;
  return static_cast<unsigned>(sizeOf(QualType(Ty)) * 8);
}

uint64_t TypeContext::maxValueOf(const Type *Ty) const {
  unsigned Bits = bitWidthOf(Ty);
  if (Ty->isUnsignedInteger(Config))
    return Bits >= 64 ? ~0ull : ((1ull << Bits) - 1);
  return (1ull << (Bits - 1)) - 1;
}

int64_t TypeContext::minValueOf(const Type *Ty) const {
  if (Ty->isUnsignedInteger(Config))
    return 0;
  unsigned Bits = bitWidthOf(Ty);
  return -static_cast<int64_t>(1ull << (Bits - 1));
}

QualType TypeContext::promote(QualType Ty) const {
  const Type *T = Ty.Ty;
  if (T->isEnum())
    return QualType(intTy());
  if (!T->isInteger())
    return Ty.unqualified();
  if (T->integerRank() >= intTy()->integerRank())
    return Ty.unqualified();
  // Small types: int can represent all values of every type with lower
  // rank under every configuration we support, except unsigned short
  // when short and int are the same size.
  if (T->isUnsignedInteger(Config) &&
      sizeOf(QualType(T)) >= Config.IntSize)
    return QualType(uintTy());
  return QualType(intTy());
}

QualType TypeContext::usualArithmetic(QualType Lhs, QualType Rhs) const {
  const Type *L = Lhs.Ty;
  const Type *R = Rhs.Ty;
  assert(L->isArithmetic() && R->isArithmetic() &&
         "usual arithmetic conversions require arithmetic types");
  if (L->Kind == TypeKind::Double || R->Kind == TypeKind::Double)
    return QualType(doubleTy());
  if (L->Kind == TypeKind::Float || R->Kind == TypeKind::Float)
    return QualType(floatTy());
  QualType PL = promote(Lhs);
  QualType PR = promote(Rhs);
  const Type *TL = PL.Ty;
  const Type *TR = PR.Ty;
  if (TL == TR)
    return PL;
  bool LUnsigned = TL->isUnsignedInteger(Config);
  bool RUnsigned = TR->isUnsignedInteger(Config);
  unsigned LRank = TL->integerRank();
  unsigned RRank = TR->integerRank();
  if (LUnsigned == RUnsigned)
    return LRank >= RRank ? PL : PR;
  // Mixed signedness (C11 6.3.1.8p1).
  const Type *U = LUnsigned ? TL : TR;
  const Type *S = LUnsigned ? TR : TL;
  if (U->integerRank() >= S->integerRank())
    return QualType(U);
  if (sizeOf(QualType(S)) > sizeOf(QualType(U)))
    return QualType(S); // signed type can represent all unsigned values
  // Otherwise the unsigned counterpart of the signed type.
  switch (S->Kind) {
  case TypeKind::Int:      return QualType(uintTy());
  case TypeKind::Long:     return QualType(ulongTy());
  case TypeKind::LongLong: return QualType(ulongLongTy());
  default:                 return QualType(U);
  }
}

bool TypeContext::compatible(QualType A, QualType B) const {
  const Type *TA = A.Ty;
  const Type *TB = B.Ty;
  if (TA == TB)
    return true;
  if (!TA || !TB || TA->Kind != TB->Kind)
    return false;
  switch (TA->Kind) {
  case TypeKind::Pointer:
    return TA->Pointee.Quals == TB->Pointee.Quals &&
           compatible(TA->Pointee.unqualified(), TB->Pointee.unqualified());
  case TypeKind::Array:
    return (!TA->ArraySizeKnown || !TB->ArraySizeKnown ||
            TA->ArraySize == TB->ArraySize) &&
           compatible(TA->Pointee, TB->Pointee);
  case TypeKind::Function: {
    if (TA->NoProto || TB->NoProto)
      return compatible(TA->ReturnType, TB->ReturnType);
    if (TA->Variadic != TB->Variadic ||
        TA->ParamTypes.size() != TB->ParamTypes.size())
      return false;
    if (!compatible(TA->ReturnType, TB->ReturnType))
      return false;
    for (size_t I = 0; I < TA->ParamTypes.size(); ++I)
      if (!compatible(TA->ParamTypes[I].unqualified(),
                      TB->ParamTypes[I].unqualified()))
        return false;
    return true;
  }
  default:
    // Distinct record/enum types with the same kind are incompatible
    // (nominal typing); builtins with the same kind are identical.
    return false;
  }
}

std::string TypeContext::typeName(QualType Ty,
                                  const StringInterner &Interner) const {
  std::string Quals;
  if (Ty.isConst())
    Quals += "const ";
  if (Ty.isVolatile())
    Quals += "volatile ";
  const Type *T = Ty.Ty;
  if (!T)
    return "<null type>";
  switch (T->Kind) {
  case TypeKind::Void:      return Quals + "void";
  case TypeKind::Bool:      return Quals + "_Bool";
  case TypeKind::Char:      return Quals + "char";
  case TypeKind::SChar:     return Quals + "signed char";
  case TypeKind::UChar:     return Quals + "unsigned char";
  case TypeKind::Short:     return Quals + "short";
  case TypeKind::UShort:    return Quals + "unsigned short";
  case TypeKind::Int:       return Quals + "int";
  case TypeKind::UInt:      return Quals + "unsigned int";
  case TypeKind::Long:      return Quals + "long";
  case TypeKind::ULong:     return Quals + "unsigned long";
  case TypeKind::LongLong:  return Quals + "long long";
  case TypeKind::ULongLong: return Quals + "unsigned long long";
  case TypeKind::Float:     return Quals + "float";
  case TypeKind::Double:    return Quals + "double";
  case TypeKind::Enum:
    return Quals + "enum " +
           (T->Enum->Tag ? Interner.str(T->Enum->Tag) : "<anonymous>");
  case TypeKind::Pointer:
    return typeName(T->Pointee, Interner) + " *" +
           (Quals.empty() ? "" : " " + Quals);
  case TypeKind::Array:
    if (T->ArraySizeKnown)
      return typeName(T->Pointee, Interner) +
             strFormat(" [%llu]", (unsigned long long)T->ArraySize);
    return typeName(T->Pointee, Interner) + " []";
  case TypeKind::Struct:
    return Quals + "struct " +
           (T->Record->Tag ? Interner.str(T->Record->Tag) : "<anonymous>");
  case TypeKind::Union:
    return Quals + "union " +
           (T->Record->Tag ? Interner.str(T->Record->Tag) : "<anonymous>");
  case TypeKind::Function: {
    std::string Out = typeName(T->ReturnType, Interner) + " (";
    for (size_t I = 0; I < T->ParamTypes.size(); ++I) {
      if (I)
        Out += ", ";
      Out += typeName(T->ParamTypes[I], Interner);
    }
    if (T->Variadic)
      Out += T->ParamTypes.empty() ? "..." : ", ...";
    return Out + ")";
  }
  }
  return "<unknown type>";
}
