//===- types/TargetConfig.h - Implementation-defined parameters -*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C standard leaves many parameters implementation-defined (paper
/// section 2.5.1: whether a program is undefined can depend on them, the
/// paper's example being malloc(4) with 8-byte ints). All such choices
/// are collected here so the semantics can be instantiated for different
/// implementations, and so tests can demonstrate definedness flipping
/// with the configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TYPES_TARGETCONFIG_H
#define CUNDEF_TYPES_TARGETCONFIG_H

#include <cstdint>

namespace cundef {

/// Implementation-defined type sizes and behaviors. Sizes are in bytes;
/// scalar alignment equals size (capped at MaxAlign).
struct TargetConfig {
  unsigned ShortSize = 2;
  unsigned IntSize = 4;
  unsigned LongSize = 8;
  unsigned LongLongSize = 8;
  unsigned PointerSize = 8;
  unsigned FloatSize = 4;
  unsigned DoubleSize = 8;
  unsigned BoolSize = 1;
  unsigned MaxAlign = 8;
  /// Whether plain char behaves as signed char (C11 6.2.5p15).
  bool CharIsSigned = true;
  /// Whether signed right-shift of a negative value is an arithmetic
  /// shift (implementation-defined, C11 6.5.7p5).
  bool ArithmeticRightShift = true;

  /// The common LP64 configuration (x86_64 Linux; the paper's platform).
  static TargetConfig lp64() { return TargetConfig(); }

  /// ILP32 (32-bit): long and pointers are 4 bytes.
  static TargetConfig ilp32() {
    TargetConfig Config;
    Config.LongSize = 4;
    Config.PointerSize = 4;
    Config.MaxAlign = 4;
    return Config;
  }

  /// An exotic configuration with 8-byte int, used to reproduce the
  /// paper's section 2.5.1 example where `int *p = malloc(4); *p = ...`
  /// is defined with 4-byte int but undefined with 8-byte int.
  static TargetConfig wideInt() {
    TargetConfig Config;
    Config.IntSize = 8;
    return Config;
  }
};

} // namespace cundef

#endif // CUNDEF_TYPES_TARGETCONFIG_H
