//===- types/TargetConfig.cpp - Implementation-defined parameters --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "types/TargetConfig.h"

// TargetConfig is a plain aggregate; this file anchors the module in the
// build.
