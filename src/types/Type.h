//===- types/Type.h - C type system ---------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C type system: canonical types uniqued by a TypeContext, qualified
/// types as (Type*, qualifier bits) pairs, record/enum layout, integer
/// promotion and the usual arithmetic conversions. Types are immutable
/// once built except that record and enum types are completed in place
/// when their definition is seen (C's incomplete-type mechanism).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TYPES_TYPE_H
#define CUNDEF_TYPES_TYPE_H

#include "support/StringInterner.h"
#include "types/TargetConfig.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cundef {

class Type;
class TypeContext;

/// Qualifier bits (C11 6.7.3).
enum Qualifier : uint8_t {
  QualNone = 0,
  QualConst = 1,
  QualVolatile = 2,
  QualRestrict = 4,
};

/// A possibly-qualified reference to a canonical type.
struct QualType {
  const Type *Ty = nullptr;
  uint8_t Quals = QualNone;

  QualType() = default;
  explicit QualType(const Type *Ty, uint8_t Quals = QualNone)
      : Ty(Ty), Quals(Quals) {}

  bool isNull() const { return Ty == nullptr; }
  bool isConst() const { return Quals & QualConst; }
  bool isVolatile() const { return Quals & QualVolatile; }

  QualType withConst() const { return QualType(Ty, Quals | QualConst); }
  QualType withQuals(uint8_t Q) const { return QualType(Ty, Quals | Q); }
  QualType unqualified() const { return QualType(Ty); }

  const Type *operator->() const { return Ty; }

  /// Identity including qualifiers.
  bool operator==(const QualType &Other) const {
    return Ty == Other.Ty && Quals == Other.Quals;
  }
  bool operator!=(const QualType &Other) const { return !(*this == Other); }
};

enum class TypeKind : uint8_t {
  Void,
  Bool,
  Char,   // plain char: distinct type; signedness from TargetConfig
  SChar,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  LongLong,
  ULongLong,
  Float,
  Double,
  Enum,
  Pointer,
  Array,
  Struct,
  Union,
  Function,
};

/// A member of a struct or union, with its computed layout offset.
struct FieldInfo {
  Symbol Name = NoSymbol;
  QualType Ty;
  uint64_t Offset = 0; ///< bytes from the start of the record
};

/// Definition payload of a struct/union type. Mutated exactly once, when
/// the record is completed.
struct RecordInfo {
  bool IsUnion = false;
  Symbol Tag = NoSymbol;
  bool Complete = false;
  std::vector<FieldInfo> Fields;
  uint64_t Size = 0;
  uint64_t Align = 1;

  /// Index of field \p Name or -1.
  int fieldIndex(Symbol Name) const {
    for (size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I].Name == Name)
        return static_cast<int>(I);
    return -1;
  }
};

/// Definition payload of an enum type.
struct EnumInfo {
  Symbol Tag = NoSymbol;
  bool Complete = false;
};

/// A canonical (unqualified) C type. Instances are owned and uniqued by
/// TypeContext; compare by pointer identity.
class Type {
public:
  TypeKind Kind;

  // Pointer pointee or array element.
  QualType Pointee;
  // Array extent.
  uint64_t ArraySize = 0;
  bool ArraySizeKnown = false;
  // Function signature.
  QualType ReturnType;
  std::vector<QualType> ParamTypes;
  bool Variadic = false;
  bool NoProto = false; ///< declared with () — unchecked call (pre-C23)
  // Record / enum payloads (owned by TypeContext).
  RecordInfo *Record = nullptr;
  EnumInfo *Enum = nullptr;

  explicit Type(TypeKind Kind) : Kind(Kind) {}

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isInteger() const {
    return Kind >= TypeKind::Bool && Kind <= TypeKind::ULongLong;
  }
  bool isEnum() const { return Kind == TypeKind::Enum; }
  /// Integer or enum (both behave as integers in expressions).
  bool isIntegral() const { return isInteger() || isEnum(); }
  bool isFloating() const {
    return Kind == TypeKind::Float || Kind == TypeKind::Double;
  }
  bool isArithmetic() const { return isIntegral() || isFloating(); }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isFunction() const { return Kind == TypeKind::Function; }
  bool isRecord() const {
    return Kind == TypeKind::Struct || Kind == TypeKind::Union;
  }
  bool isScalar() const { return isArithmetic() || isPointer(); }
  /// Unsigned integer type (enum counts as its underlying signed int).
  bool isUnsignedInteger(const TargetConfig &Config) const;
  /// Signed integer type.
  bool isSignedInteger(const TargetConfig &Config) const {
    return isIntegral() && !isUnsignedInteger(Config) &&
           Kind != TypeKind::Bool;
  }
  /// Character types (char, signed char, unsigned char), C11 6.2.5p15.
  bool isCharacter() const {
    return Kind == TypeKind::Char || Kind == TypeKind::SChar ||
           Kind == TypeKind::UChar;
  }
  bool isVoidPointer() const {
    return isPointer() && Pointee.Ty && Pointee.Ty->isVoid();
  }
  bool isFunctionPointer() const {
    return isPointer() && Pointee.Ty && Pointee.Ty->isFunction();
  }
  /// Object types are complete non-function types (C11 6.2.5p1).
  bool isCompleteObjectType() const {
    if (isVoid() || isFunction())
      return false;
    if (isRecord())
      return Record->Complete;
    if (isEnum())
      return Enum->Complete;
    if (isArray())
      return ArraySizeKnown;
    return true;
  }

  /// Conversion rank for integer promotions (C11 6.3.1.1p1).
  unsigned integerRank() const;
};

/// Owns and uniques all types for one translation unit.
class TypeContext {
public:
  explicit TypeContext(const TargetConfig &Config);

  const TargetConfig &config() const { return Config; }

  // Builtin types.
  const Type *voidTy() const { return Builtins[(int)TypeKind::Void]; }
  const Type *boolTy() const { return Builtins[(int)TypeKind::Bool]; }
  const Type *charTy() const { return Builtins[(int)TypeKind::Char]; }
  const Type *scharTy() const { return Builtins[(int)TypeKind::SChar]; }
  const Type *ucharTy() const { return Builtins[(int)TypeKind::UChar]; }
  const Type *shortTy() const { return Builtins[(int)TypeKind::Short]; }
  const Type *ushortTy() const { return Builtins[(int)TypeKind::UShort]; }
  const Type *intTy() const { return Builtins[(int)TypeKind::Int]; }
  const Type *uintTy() const { return Builtins[(int)TypeKind::UInt]; }
  const Type *longTy() const { return Builtins[(int)TypeKind::Long]; }
  const Type *ulongTy() const { return Builtins[(int)TypeKind::ULong]; }
  const Type *longLongTy() const { return Builtins[(int)TypeKind::LongLong]; }
  const Type *ulongLongTy() const {
    return Builtins[(int)TypeKind::ULongLong];
  }
  const Type *floatTy() const { return Builtins[(int)TypeKind::Float]; }
  const Type *doubleTy() const { return Builtins[(int)TypeKind::Double]; }
  /// size_t for this target (unsigned long on LP64).
  const Type *sizeTy() const {
    return Config.PointerSize == 8 ? ulongTy() : uintTy();
  }
  /// ptrdiff_t for this target.
  const Type *ptrdiffTy() const {
    return Config.PointerSize == 8 ? longTy() : intTy();
  }

  /// Builtin by kind (only for non-derived kinds).
  const Type *builtin(TypeKind Kind) const {
    assert(Kind <= TypeKind::Double && "not a builtin kind");
    return Builtins[(int)Kind];
  }

  const Type *getPointer(QualType Pointee);
  const Type *getArray(QualType Element, uint64_t Size, bool SizeKnown);
  const Type *getFunction(QualType Return, std::vector<QualType> Params,
                          bool Variadic, bool NoProto);
  /// Creates a fresh (incomplete) struct/union type; identity-based.
  Type *createRecord(bool IsUnion, Symbol Tag);
  /// Creates a fresh (incomplete) enum type.
  Type *createEnum(Symbol Tag);
  /// Computes layout (field offsets, size, align) and marks complete.
  void completeRecord(Type *RecordTy, std::vector<FieldInfo> Fields);

  /// Size in bytes of a complete object type.
  uint64_t sizeOf(QualType Ty) const;
  uint64_t sizeOf(const Type *Ty) const { return sizeOf(QualType(Ty)); }
  /// Alignment requirement in bytes.
  uint64_t alignOf(QualType Ty) const;

  /// Integer promotions (C11 6.3.1.1p2): small integer types promote to
  /// int (or unsigned int).
  QualType promote(QualType Ty) const;
  /// Usual arithmetic conversions (C11 6.3.1.8); both must be arithmetic.
  QualType usualArithmetic(QualType Lhs, QualType Rhs) const;

  /// Numeric limits for an integral type under this target.
  uint64_t maxValueOf(const Type *Ty) const;
  int64_t minValueOf(const Type *Ty) const;
  unsigned bitWidthOf(const Type *Ty) const;

  /// Whether two types are compatible for our purposes (same canonical
  /// structure; qualifiers on the outermost level ignored).
  bool compatible(QualType A, QualType B) const;

  /// Renders a type for diagnostics ("const int *", "int [4]", ...).
  std::string typeName(QualType Ty, const StringInterner &Interner) const;

private:
  const Type *makeBuiltin(TypeKind Kind);

  TargetConfig Config;
  std::vector<std::unique_ptr<Type>> OwnedTypes;
  std::vector<std::unique_ptr<RecordInfo>> OwnedRecords;
  std::vector<std::unique_ptr<EnumInfo>> OwnedEnums;
  const Type *Builtins[(int)TypeKind::Double + 1] = {};
  std::map<std::pair<const Type *, uint8_t>, const Type *> PointerTypes;
  std::map<std::tuple<const Type *, uint8_t, uint64_t, bool>, const Type *>
      ArrayTypes;
};

} // namespace cundef

#endif // CUNDEF_TYPES_TYPE_H
