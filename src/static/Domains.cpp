//===- static/Domains.cpp - Flow-sensitive abstract domains ---------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "static/Domains.h"

#include "sema/ConstEval.h"
#include "support/StringInterner.h"
#include "types/Type.h"

#include <algorithm>
#include <cstring>

using namespace cundef;

//===----------------------------------------------------------------------===//
// Shared pattern helpers
//===----------------------------------------------------------------------===//

namespace {

/// The variable a bare DeclRef designates, or null.
const VarDecl *varOf(const Expr *E) {
  const auto *DR = dynCast<DeclRefExpr>(E);
  return DR ? DR->Var : nullptr;
}

/// True when \p E is a constant null pointer expression — the purely
/// syntactic checker already owns those sites (codes 47/48), so the
/// flow domains stay silent on them.
bool isConstNull(const Expr *E, const TypeContext &Types) {
  while (true) {
    if (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
      if (IC->CK == CastKind::LValueToRValue)
        return false;
      E = IC->Sub;
      continue;
    }
    if (const auto *C = dynCast<CastExpr>(E)) {
      E = C->Sub;
      continue;
    }
    break;
  }
  auto V = constEvalInt(E, Types);
  return V && *V == 0;
}

/// The object variable at the bottom of an lvalue designator, without
/// crossing a dereference (-> or *): the base of `v`, `v.f`, `v[i]`,
/// `v.f[i].g`, ... Null when the designator roots in a dereference.
const VarDecl *designatorBase(const Expr *E) {
  while (true) {
    if (const auto *DR = dynCast<DeclRefExpr>(E))
      return DR->Var;
    if (const auto *M = dynCast<MemberExpr>(E)) {
      if (M->IsArrow)
        return nullptr;
      E = M->Base;
      continue;
    }
    if (const auto *IX = dynCast<IndexExpr>(E)) {
      E = IX->Base;
      continue;
    }
    if (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
      E = IC->Sub;
      continue;
    }
    if (const auto *C = dynCast<CastExpr>(E)) {
      E = C->Sub;
      continue;
    }
    return nullptr;
  }
}

/// Is \p V an object on the current frame (auto local or parameter)?
bool isFrameLocal(const VarDecl *V) {
  return V && !V->IsGlobal && V->Storage == StorageClass::None;
}

/// Collects every variable whose address escapes: explicit `&v` (through
/// any member/index designator), or an array decaying to a pointer
/// *value* (passed, assigned, arithmetic) rather than being indexed.
class AddrTakenCollector {
public:
  explicit AddrTakenCollector(std::set<uint32_t> &Out) : Out(Out) {}

  void walkStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        walkStmt(Sub);
      return;
    case StmtKind::Decl:
      for (const VarDecl *V : cast<DeclStmt>(S)->Decls)
        walkExpr(V->Init, false);
      return;
    case StmtKind::Expr:
      walkExpr(cast<ExprStmt>(S)->E, false);
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      walkExpr(I->Cond, false);
      walkStmt(I->Then);
      walkStmt(I->Else);
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      walkExpr(W->Cond, false);
      walkStmt(W->Body);
      return;
    }
    case StmtKind::Do: {
      const auto *D = cast<DoStmt>(S);
      walkStmt(D->Body);
      walkExpr(D->Cond, false);
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      walkStmt(F->Init);
      walkExpr(F->Cond, false);
      walkExpr(F->Inc, false);
      walkStmt(F->Body);
      return;
    }
    case StmtKind::Switch: {
      const auto *SW = cast<SwitchStmt>(S);
      walkExpr(SW->Cond, false);
      walkStmt(SW->Body);
      return;
    }
    case StmtKind::Case:
      walkStmt(cast<CaseStmt>(S)->Sub);
      return;
    case StmtKind::Default:
      walkStmt(cast<DefaultStmt>(S)->Sub);
      return;
    case StmtKind::Label:
      walkStmt(cast<LabelStmt>(S)->Sub);
      return;
    case StmtKind::Return:
      walkExpr(cast<ReturnStmt>(S)->Value, false);
      return;
    default:
      return;
    }
  }

private:
  std::set<uint32_t> &Out;

  void mark(const Expr *Designator) {
    if (const VarDecl *V = designatorBase(Designator))
      Out.insert(V->DeclId);
  }

  /// \p IndexBase: this expression is the base operand of a subscript,
  /// where array-to-pointer decay is just an access, not an escape.
  void walkExpr(const Expr *E, bool IndexBase) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->Op == UnaryOp::AddrOf)
        mark(U->Sub);
      walkExpr(U->Sub, false);
      return;
    }
    case ExprKind::ImplicitCast: {
      const auto *IC = cast<ImplicitCastExpr>(E);
      if (IC->CK == CastKind::ArrayDecay && !IndexBase)
        mark(IC->Sub);
      walkExpr(IC->Sub, false);
      return;
    }
    case ExprKind::Cast:
      walkExpr(cast<CastExpr>(E)->Sub, false);
      return;
    case ExprKind::Index: {
      const auto *IX = cast<IndexExpr>(E);
      walkExpr(IX->Base, true);
      walkExpr(IX->Index, false);
      return;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      walkExpr(B->Lhs, false);
      walkExpr(B->Rhs, false);
      return;
    }
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      walkExpr(A->Lhs, false);
      walkExpr(A->Rhs, false);
      return;
    }
    case ExprKind::Cond: {
      const auto *C = cast<CondExpr>(E);
      walkExpr(C->Cond, false);
      walkExpr(C->Then, false);
      walkExpr(C->Else, false);
      return;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      walkExpr(C->Callee, false);
      for (const Expr *Arg : C->Args)
        walkExpr(Arg, false);
      return;
    }
    case ExprKind::Member:
      walkExpr(cast<MemberExpr>(E)->Base, false);
      return;
    case ExprKind::InitList:
      for (const Expr *I : cast<InitListExpr>(E)->Inits)
        walkExpr(I, false);
      return;
    default:
      return; // literals, declrefs, sizeof (unevaluated)
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// FlowContext
//===----------------------------------------------------------------------===//

FlowContext::FlowContext(AstContext &Ctx, const FunctionDecl *Fn)
    : Ctx(Ctx), Fn(Fn), FnName(Ctx.Interner.str(Fn->Name)) {
  AddrTakenCollector Collector(AddrTaken);
  Collector.walkStmt(Fn->Body);
}

void FlowContext::must(UbKind Kind, SourceLoc Loc, const char *Domain) {
  // Inside a conditionally evaluated subexpression (`c && e`, `c ? a
  // : b` in value position) nothing is certain: demote to a hint.
  if (CondDepth > 0) {
    may(Kind, Loc, Domain);
    return;
  }
  emit(Kind, Loc, Domain, FindingVerdict::Must);
}

void FlowContext::may(UbKind Kind, SourceLoc Loc, const char *Domain) {
  emit(Kind, Loc, Domain, FindingVerdict::May);
}

void FlowContext::emit(UbKind Kind, SourceLoc Loc, const char *Domain,
                       FindingVerdict Verdict) {
  if (!Reporting)
    return;
  auto Key = std::make_tuple(Loc.Line, Loc.Col, static_cast<uint16_t>(Kind),
                             static_cast<uint8_t>(Verdict));
  if (!Seen.insert(Key).second)
    return;
  UbReport R(Kind, ubShortDescription(Kind), FnName, Loc,
             /*StaticFinding=*/true);
  R.Verdict = Verdict;
  R.Domain = Domain;
  (Verdict == FindingVerdict::Must ? MustFindings : MayFindings)
      .push_back(std::move(R));
}

static void sortFindings(std::vector<UbReport> &Findings) {
  std::sort(Findings.begin(), Findings.end(),
            [](const UbReport &A, const UbReport &B) {
              if (A.Loc.Line != B.Loc.Line)
                return A.Loc.Line < B.Loc.Line;
              if (A.Loc.Col != B.Loc.Col)
                return A.Loc.Col < B.Loc.Col;
              if (A.Kind != B.Kind)
                return A.Kind < B.Kind;
              return std::strcmp(A.Domain, B.Domain) < 0;
            });
}

std::vector<UbReport> FlowContext::takeMust() {
  sortFindings(MustFindings);
  return std::move(MustFindings);
}

std::vector<UbReport> FlowContext::takeHints() {
  sortFindings(MayFindings);
  return std::move(MayFindings);
}

//===----------------------------------------------------------------------===//
// NullnessDomain
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *NullnessName = "nullness";

PtrVal lookupPtr(const NullnessDomain::State &St, const VarDecl *V) {
  auto It = St.find(V->DeclId);
  return It == St.end() ? PtrVal{} : It->second;
}

void setPtr(NullnessDomain::State &St, const VarDecl *V, PtrVal Val) {
  if (Val == PtrVal{})
    St.erase(V->DeclId);
  else
    St[V->DeclId] = Val;
}

PtrVal joinPtrVal(PtrVal A, PtrVal B) {
  PtrVal R;
  if (A.Kind == B.Kind)
    R.Kind = A.Kind;
  else if (A.Kind == PtrVal::Null || B.Kind == PtrVal::Null ||
           A.Kind == PtrVal::MaybeNull || B.Kind == PtrVal::MaybeNull)
    R.Kind = PtrVal::MaybeNull;
  else
    R.Kind = PtrVal::Unknown; // NonNull vs Unknown
  R.Local = A.Local && B.Local;
  R.ConstTarget = A.ConstTarget && B.ConstTarget;
  return R;
}

/// Functions modeled as returning possibly-null pointers; an unchecked
/// dereference of their result becomes a may-hint.
bool returnsMaybeNull(const std::string &Name) {
  static const char *const Names[] = {"malloc", "calloc",  "realloc",
                                      "getenv", "fopen",   "strchr",
                                      "strrchr", "strstr", "memchr"};
  for (const char *N : Names)
    if (Name == N)
      return true;
  return false;
}

} // namespace

bool NullnessDomain::tracked(const VarDecl *V) const {
  return V && V->Ty.Ty && V->Ty.Ty->isPointer() && isFrameLocal(V) &&
         !FC.addrTaken(V);
}

bool NullnessDomain::join(State &Into, const State &In) {
  // Absent means Unknown, which is *not* top (Unknown joined with Null
  // is MaybeNull), so iterate the union of keys.
  std::vector<uint32_t> Keys;
  Keys.reserve(Into.size() + In.size());
  for (const auto &KV : Into)
    Keys.push_back(KV.first);
  for (const auto &KV : In)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end());
  Keys.erase(std::unique(Keys.begin(), Keys.end()), Keys.end());

  bool Changed = false;
  for (uint32_t K : Keys) {
    auto AIt = Into.find(K);
    PtrVal A = AIt == Into.end() ? PtrVal{} : AIt->second;
    auto BIt = In.find(K);
    PtrVal B = BIt == In.end() ? PtrVal{} : BIt->second;
    PtrVal J = joinPtrVal(A, B);
    if (J != A) {
      Changed = true;
      if (J == PtrVal{})
        Into.erase(K);
      else
        Into[K] = J;
    }
  }
  return Changed;
}

void NullnessDomain::transferStmt(const Stmt *S, State &St) {
  switch (S->Kind) {
  case StmtKind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->Decls) {
      if (!V->Init)
        continue;
      PtrVal Init = evalPtr(V->Init, St);
      if (tracked(V))
        setPtr(St, V, Init);
    }
    return;
  case StmtKind::Expr:
    evalPtr(cast<ExprStmt>(S)->E, St);
    return;
  case StmtKind::Return: {
    const Expr *Val = cast<ReturnStmt>(S)->Value;
    if (!Val)
      return;
    PtrVal V = evalPtr(Val, St);
    if (Val->Ty.Ty && Val->Ty.Ty->isPointer() && V.Kind == PtrVal::NonNull &&
        V.Local)
      FC.must(UbKind::StackAddressEscape, Val->Loc, NullnessName);
    return;
  }
  case StmtKind::For: // stands for the increment expression (Cfg.cpp)
    evalPtr(cast<ForStmt>(S)->Inc, St);
    return;
  default:
    return;
  }
}

void NullnessDomain::transferCondEval(const Expr *Cond, State &St) {
  evalPtr(Cond, St);
}

void NullnessDomain::walk(const Expr *E, State &St) { (void)evalPtr(E, St); }

void NullnessDomain::checkDeref(const Expr *PtrOperand, State &St,
                                bool IsWrite) {
  PtrVal V = evalPtr(PtrOperand, St);
  if (!FC.reporting())
    return;
  SourceLoc Loc = PtrOperand->Loc;
  if (V.Kind == PtrVal::Null) {
    if (!isConstNull(PtrOperand, FC.Ctx.Types))
      FC.must(UbKind::DerefNullPointer, Loc, NullnessName);
  } else if (V.Kind == PtrVal::MaybeNull) {
    FC.may(UbKind::DerefNullPointer, Loc, NullnessName);
  }
  if (IsWrite && V.ConstTarget &&
      (V.Kind == PtrVal::NonNull || V.Kind == PtrVal::MaybeNull))
    FC.must(UbKind::ConstWriteStatic, Loc, NullnessName);
}

/// Write-side checks for a store destination that is not a tracked
/// variable: dereferencing stores check the pointer they go through.
void NullnessDomain::storeTo(const Expr *Lhs, State &St) {
  switch (Lhs->Kind) {
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(Lhs);
    if (U->Op == UnaryOp::Deref) {
      checkDeref(U->Sub, St, /*IsWrite=*/true);
      return;
    }
    walk(U->Sub, St);
    return;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(Lhs);
    if (M->IsArrow)
      checkDeref(M->Base, St, /*IsWrite=*/true);
    else
      storeTo(M->Base, St);
    return;
  }
  case ExprKind::Index: {
    const auto *IX = cast<IndexExpr>(Lhs);
    walk(IX->Index, St);
    if (const auto *IC = dynCast<ImplicitCastExpr>(IX->Base);
        IC && IC->CK == CastKind::ArrayDecay)
      storeTo(IC->Sub, St); // array element store — no pointer deref
    else
      checkDeref(IX->Base, St, /*IsWrite=*/true);
    return;
  }
  case ExprKind::ImplicitCast:
    storeTo(cast<ImplicitCastExpr>(Lhs)->Sub, St);
    return;
  case ExprKind::Cast:
    storeTo(cast<CastExpr>(Lhs)->Sub, St);
    return;
  case ExprKind::DeclRef:
    return; // plain variable store, no dereference involved
  default:
    walk(Lhs, St);
    return;
  }
}

PtrVal NullnessDomain::evalPtr(const Expr *E, State &St) {
  if (!E)
    return {};
  switch (E->Kind) {
  case ExprKind::IntLit:
    return cast<IntLitExpr>(E)->Value == 0 ? PtrVal{PtrVal::Null} : PtrVal{};
  case ExprKind::StringLit:
    return PtrVal{PtrVal::NonNull};
  case ExprKind::DeclRef: {
    // A function designator (decays to a non-null function pointer);
    // bare object designators carry no pointer *value* themselves.
    const auto *DR = cast<DeclRefExpr>(E);
    return DR->Fn ? PtrVal{PtrVal::NonNull} : PtrVal{};
  }
  case ExprKind::ImplicitCast:
  case ExprKind::Cast: {
    CastKind CK;
    const Expr *Sub;
    if (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
      CK = IC->CK;
      Sub = IC->Sub;
    } else {
      CK = cast<CastExpr>(E)->CK;
      Sub = cast<CastExpr>(E)->Sub;
    }
    switch (CK) {
    case CastKind::NullToPointer:
      return PtrVal{PtrVal::Null};
    case CastKind::FunctionDecay:
      return PtrVal{PtrVal::NonNull};
    case CastKind::ArrayDecay: {
      PtrVal R{PtrVal::NonNull};
      if (const VarDecl *V = designatorBase(Sub)) {
        R.Local = isFrameLocal(V);
        // Walk subscript expressions inside the designator for their
        // side effects / checks.
        walk(Sub, St);
      } else {
        walk(Sub, St);
      }
      const Type *ArrTy = Sub->Ty.Ty;
      R.ConstTarget = Sub->Ty.isConst() ||
                      (ArrTy && ArrTy->isArray() && ArrTy->Pointee.isConst());
      if (isa<StringLitExpr>(Sub))
        R.Local = false;
      return R;
    }
    case CastKind::LValueToRValue: {
      if (const VarDecl *V = varOf(Sub)) {
        if (tracked(V))
          return lookupPtr(St, V);
        return {};
      }
      walk(Sub, St); // loads through derefs check the pointer below
      return {};
    }
    case CastKind::PointerCast:
      return evalPtr(Sub, St); // value (and flags) survive the cast
    case CastKind::IntToPointer: {
      auto V = constEvalInt(Sub, FC.Ctx.Types);
      if (V && *V == 0)
        return PtrVal{PtrVal::Null};
      walk(Sub, St);
      return {};
    }
    default:
      walk(Sub, St);
      return {};
    }
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->Op) {
    case UnaryOp::AddrOf: {
      // &*p is just p (C11 6.5.3.2p3, no access happens).
      if (const auto *Inner = dynCast<UnaryExpr>(U->Sub);
          Inner && Inner->Op == UnaryOp::Deref)
        return evalPtr(Inner->Sub, St);
      walk(U->Sub, St);
      PtrVal R{PtrVal::NonNull};
      if (const VarDecl *V = designatorBase(U->Sub))
        R.Local = isFrameLocal(V);
      R.ConstTarget = U->Sub->Ty.isConst();
      return R;
    }
    case UnaryOp::Deref:
      checkDeref(U->Sub, St, /*IsWrite=*/false);
      return {};
    case UnaryOp::PreInc:
    case UnaryOp::PostInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostDec: {
      const VarDecl *V = varOf(U->Sub);
      if (V && tracked(V)) {
        PtrVal Cur = lookupPtr(St, V);
        PtrVal Next = Cur.Kind == PtrVal::NonNull ? Cur : PtrVal{};
        setPtr(St, V, Next);
        bool IsPre = U->Op == UnaryOp::PreInc || U->Op == UnaryOp::PreDec;
        return IsPre ? Next : Cur;
      }
      walk(U->Sub, St);
      return {};
    }
    default:
      walk(U->Sub, St);
      return {};
    }
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->Op == BinaryOp::Comma) {
      walk(B->Lhs, St);
      return evalPtr(B->Rhs, St);
    }
    if (B->Op == BinaryOp::LogAnd || B->Op == BinaryOp::LogOr) {
      walk(B->Lhs, St);
      FC.pushCond(); // the right operand may never evaluate
      walk(B->Rhs, St);
      FC.popCond();
      return {};
    }
    if (B->Op == BinaryOp::Add || B->Op == BinaryOp::Sub) {
      bool LhsPtr = B->Lhs->Ty.Ty && B->Lhs->Ty.Ty->isPointer();
      bool RhsPtr = B->Rhs->Ty.Ty && B->Rhs->Ty.Ty->isPointer();
      PtrVal P;
      if (LhsPtr) {
        P = evalPtr(B->Lhs, St);
        walk(B->Rhs, St);
      } else if (RhsPtr) {
        walk(B->Lhs, St);
        P = evalPtr(B->Rhs, St);
      } else {
        walk(B->Lhs, St);
        walk(B->Rhs, St);
        return {};
      }
      // Arithmetic within an object keeps it non-null; anything else
      // (null + k is itself UB, but dynamically detected) goes to top.
      return P.Kind == PtrVal::NonNull ? P : PtrVal{};
    }
    walk(B->Lhs, St);
    walk(B->Rhs, St);
    return {};
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    bool LhsPtr = A->Lhs->Ty.Ty && A->Lhs->Ty.Ty->isPointer();
    PtrVal RV;
    if (LhsPtr)
      RV = evalPtr(A->Rhs, St);
    else
      walk(A->Rhs, St);
    const VarDecl *V = varOf(A->Lhs);
    if (V && tracked(V)) {
      if (A->Op == AssignOp::Assign) {
        setPtr(St, V, RV);
        return RV;
      }
      // p += i keeps a non-null pointer non-null.
      PtrVal Cur = lookupPtr(St, V);
      PtrVal Next = Cur.Kind == PtrVal::NonNull ? Cur : PtrVal{};
      setPtr(St, V, Next);
      return Next;
    }
    storeTo(A->Lhs, St);
    return LhsPtr && A->Op == AssignOp::Assign ? RV : PtrVal{};
  }
  case ExprKind::Cond: {
    const auto *C = cast<CondExpr>(E);
    walk(C->Cond, St);
    FC.pushCond();
    PtrVal T = evalPtr(C->Then, St);
    PtrVal F = evalPtr(C->Else, St);
    FC.popCond();
    return joinPtrVal(T, F);
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    walk(C->Callee, St);
    for (const Expr *Arg : C->Args)
      walk(Arg, St);
    const Expr *Callee = C->Callee;
    while (const auto *IC = dynCast<ImplicitCastExpr>(Callee))
      Callee = IC->Sub;
    if (const auto *DR = dynCast<DeclRefExpr>(Callee);
        DR && DR->Fn && returnsMaybeNull(FC.Ctx.Interner.str(DR->Fn->Name)))
      return PtrVal{PtrVal::MaybeNull};
    return {};
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    if (M->IsArrow)
      checkDeref(M->Base, St, /*IsWrite=*/false);
    else
      walk(M->Base, St);
    return {};
  }
  case ExprKind::Index: {
    const auto *IX = cast<IndexExpr>(E);
    walk(IX->Index, St);
    if (const auto *IC = dynCast<ImplicitCastExpr>(IX->Base);
        IC && IC->CK == CastKind::ArrayDecay)
      walk(IC->Sub, St); // direct array access, no pointer involved
    else
      checkDeref(IX->Base, St, /*IsWrite=*/false);
    return {};
  }
  case ExprKind::InitList:
    for (const Expr *I : cast<InitListExpr>(E)->Inits)
      walk(I, St);
    return {};
  default:
    return {}; // literals, sizeof (unevaluated)
  }
}

namespace {

/// Matches `(ToBool)? (LValueToRValue) declref-of-tracked-pointer`.
const VarDecl *loadedPtrVarImpl(const Expr *E) {
  while (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
    if (IC->CK != CastKind::ToBool && IC->CK != CastKind::PointerCast)
      break;
    E = IC->Sub;
  }
  const auto *Load = dynCast<ImplicitCastExpr>(E);
  if (!Load || Load->CK != CastKind::LValueToRValue)
    return nullptr;
  const VarDecl *V = varOf(Load->Sub);
  return V && V->Ty.Ty && V->Ty.Ty->isPointer() ? V : nullptr;
}

} // namespace

bool NullnessDomain::refine(const VarDecl *V, bool ToNonNull, State &St) {
  PtrVal Cur = lookupPtr(St, V);
  if (ToNonNull) {
    if (Cur.Kind == PtrVal::Null)
      return false; // infeasible edge
    if (Cur.Kind != PtrVal::NonNull) {
      Cur.Kind = PtrVal::NonNull;
      setPtr(St, V, Cur);
    }
  } else {
    if (Cur.Kind == PtrVal::NonNull)
      return false;
    setPtr(St, V, PtrVal{PtrVal::Null});
  }
  return true;
}

bool NullnessDomain::transferCond(const Expr *Cond, bool Taken, State &St) {
  const Expr *E = Cond;
  while (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
    if (IC->CK != CastKind::ToBool)
      break;
    E = IC->Sub;
  }
  // if (p) / while (p): p is non-null on the true edge, null otherwise.
  if (const VarDecl *V = loadedPtrVarImpl(E)) {
    if (tracked(V))
      return refine(V, Taken, St);
    return true;
  }
  // if ((p = e)): refine the assigned variable (the side effect already
  // ran in transferCondEval).
  if (const auto *A = dynCast<AssignExpr>(E);
      A && A->Op == AssignOp::Assign) {
    const VarDecl *V = varOf(A->Lhs);
    if (V && tracked(V) && V->Ty.Ty->isPointer())
      return refine(V, Taken, St);
    return true;
  }
  // p == 0 / p != 0 (either operand order).
  if (const auto *B = dynCast<BinaryExpr>(E);
      B && (B->Op == BinaryOp::Eq || B->Op == BinaryOp::Ne)) {
    const VarDecl *V = nullptr;
    if (isConstNull(B->Rhs, FC.Ctx.Types))
      V = loadedPtrVarImpl(B->Lhs);
    else if (isConstNull(B->Lhs, FC.Ctx.Types))
      V = loadedPtrVarImpl(B->Rhs);
    if (V && tracked(V)) {
      bool WantNull = (B->Op == BinaryOp::Eq) == Taken;
      return refine(V, !WantNull, St);
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// InitDomain
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *InitName = "init";
constexpr uint8_t IvUninit = 0;
constexpr uint8_t IvMaybe = 1;

uint64_t initKey(const VarDecl *V, int FieldIdx) {
  return (static_cast<uint64_t>(V->DeclId) << 16) +
         static_cast<uint64_t>(FieldIdx + 1);
}

} // namespace

InitDomain::Track InitDomain::trackKind(const VarDecl *V) const {
  if (!V || V->IsGlobal || V->IsParam || V->Storage != StorageClass::None ||
      FC.addrTaken(V) || !V->Ty.Ty)
    return Track::No;
  const Type *Ty = V->Ty.Ty;
  if (Ty->isScalar() || Ty->isArray())
    return Track::Whole;
  if (Ty->isRecord() && Ty->Record && Ty->Record->Complete &&
      Ty->Record->Fields.size() < 0xFFFE)
    return Track::PerField;
  return Track::No;
}

bool InitDomain::join(State &Into, const State &In) {
  // Absent = Init, and join(Init, Uninit) = Maybe, so absent keys on
  // either side still contribute.
  std::vector<uint64_t> Keys;
  Keys.reserve(Into.size() + In.size());
  for (const auto &KV : Into)
    Keys.push_back(KV.first);
  for (const auto &KV : In)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end());
  Keys.erase(std::unique(Keys.begin(), Keys.end()), Keys.end());

  constexpr uint8_t IvInit = 2; // virtual value of an absent key
  bool Changed = false;
  for (uint64_t K : Keys) {
    auto AIt = Into.find(K);
    uint8_t A = AIt == Into.end() ? IvInit : AIt->second;
    auto BIt = In.find(K);
    uint8_t B = BIt == In.end() ? IvInit : BIt->second;
    uint8_t J = A == B ? A : IvMaybe;
    if (J != A) {
      Changed = true;
      if (J == IvInit)
        Into.erase(K);
      else
        Into[K] = J;
    }
  }
  return Changed;
}

void InitDomain::declare(const VarDecl *V, State &St) {
  Track T = trackKind(V);
  if (T == Track::Whole)
    St[initKey(V, -1)] = IvUninit;
  else if (T == Track::PerField)
    for (size_t I = 0; I < V->Ty.Ty->Record->Fields.size(); ++I)
      St[initKey(V, static_cast<int>(I))] = IvUninit;
}

void InitDomain::setAllInit(const VarDecl *V, State &St) {
  Track T = trackKind(V);
  if (T == Track::Whole)
    St.erase(initKey(V, -1));
  else if (T == Track::PerField)
    for (size_t I = 0; I < V->Ty.Ty->Record->Fields.size(); ++I)
      St.erase(initKey(V, static_cast<int>(I)));
}

void InitDomain::transferStmt(const Stmt *S, State &St) {
  switch (S->Kind) {
  case StmtKind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->Decls) {
      if (V->Init) {
        walk(V->Init, St);
        // Any initializer fully initializes the object: remaining
        // aggregate members are implicitly zeroed (C11 6.7.9p19).
        setAllInit(V, St);
      } else {
        declare(V, St);
      }
    }
    return;
  case StmtKind::Expr:
    walk(cast<ExprStmt>(S)->E, St);
    return;
  case StmtKind::Return:
    walk(cast<ReturnStmt>(S)->Value, St);
    return;
  case StmtKind::For:
    walk(cast<ForStmt>(S)->Inc, St);
    return;
  default:
    return;
  }
}

void InitDomain::checkRead(uint64_t Key, bool IsPointer, SourceLoc Loc,
                           State &St) {
  auto It = St.find(Key);
  if (It == St.end())
    return;
  UbKind Kind = IsPointer ? UbKind::UninitializedPointerUse
                          : UbKind::ReadIndeterminateValue;
  if (It->second == IvUninit)
    FC.must(Kind, Loc, InitName);
  else
    FC.may(Kind, Loc, InitName);
}

void InitDomain::storeTo(const Expr *Lhs, bool Compound, State &St) {
  switch (Lhs->Kind) {
  case ExprKind::DeclRef: {
    const VarDecl *V = varOf(Lhs);
    Track T = trackKind(V);
    if (T == Track::No)
      return;
    if (Compound && T == Track::Whole)
      checkRead(initKey(V, -1), V->Ty.Ty->isPointer(), Lhs->Loc, St);
    setAllInit(V, St);
    return;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(Lhs);
    if (!M->IsArrow && M->FieldIdx >= 0) {
      if (const VarDecl *V = varOf(M->Base);
          V && trackKind(V) == Track::PerField) {
        uint64_t Key = initKey(V, M->FieldIdx);
        if (Compound) {
          const Type *FTy =
              V->Ty.Ty->Record->Fields[M->FieldIdx].Ty.Ty;
          checkRead(Key, FTy && FTy->isPointer(), M->Loc, St);
        }
        St.erase(Key);
        return;
      }
    }
    walk(M->Base, St); // p->f: reads the pointer
    return;
  }
  case ExprKind::Index: {
    const auto *IX = cast<IndexExpr>(Lhs);
    walk(IX->Index, St);
    if (const auto *IC = dynCast<ImplicitCastExpr>(IX->Base);
        IC && IC->CK == CastKind::ArrayDecay) {
      if (const VarDecl *V = varOf(IC->Sub);
          V && trackKind(V) == Track::Whole) {
        uint64_t Key = initKey(V, -1);
        if (Compound)
          checkRead(Key, false, IX->Loc, St);
        // One element written; treat the array as initialized (sound
        // for false-positive avoidance, reads elsewhere stay dynamic).
        St.erase(Key);
        return;
      }
    }
    walk(IX->Base, St);
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(Lhs);
    walk(U->Sub, St); // *p = ...: reads p
    return;
  }
  case ExprKind::ImplicitCast:
    storeTo(cast<ImplicitCastExpr>(Lhs)->Sub, Compound, St);
    return;
  case ExprKind::Cast:
    storeTo(cast<CastExpr>(Lhs)->Sub, Compound, St);
    return;
  default:
    walk(Lhs, St);
    return;
  }
}

void InitDomain::walk(const Expr *E, State &St) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::ImplicitCast: {
    const auto *IC = cast<ImplicitCastExpr>(E);
    if (IC->CK != CastKind::LValueToRValue) {
      walk(IC->Sub, St);
      return;
    }
    const Expr *D = IC->Sub;
    if (const VarDecl *V = varOf(D)) {
      if (trackKind(V) == Track::Whole)
        checkRead(initKey(V, -1), V->Ty.Ty->isPointer(), D->Loc, St);
      return;
    }
    if (const auto *M = dynCast<MemberExpr>(D);
        M && !M->IsArrow && M->FieldIdx >= 0) {
      if (const VarDecl *V = varOf(M->Base);
          V && trackKind(V) == Track::PerField) {
        const Type *FTy = V->Ty.Ty->Record->Fields[M->FieldIdx].Ty.Ty;
        checkRead(initKey(V, M->FieldIdx), FTy && FTy->isPointer(), M->Loc,
                  St);
        return;
      }
    }
    if (const auto *IX = dynCast<IndexExpr>(D)) {
      if (const auto *Decay = dynCast<ImplicitCastExpr>(IX->Base);
          Decay && Decay->CK == CastKind::ArrayDecay) {
        if (const VarDecl *V = varOf(Decay->Sub);
            V && trackKind(V) == Track::Whole) {
          walk(IX->Index, St);
          const Type *ElemTy = V->Ty.Ty->Pointee.Ty;
          checkRead(initKey(V, -1), ElemTy && ElemTy->isPointer(), IX->Loc,
                    St);
          return;
        }
      }
    }
    walk(D, St);
    return;
  }
  case ExprKind::Cast:
    walk(cast<CastExpr>(E)->Sub, St);
    return;
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    walk(A->Rhs, St);
    storeTo(A->Lhs, A->Op != AssignOp::Assign, St);
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->Op) {
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      storeTo(U->Sub, /*Compound=*/true, St);
      return;
    default:
      walk(U->Sub, St);
      return;
    }
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    walk(B->Lhs, St);
    if (B->Op == BinaryOp::LogAnd || B->Op == BinaryOp::LogOr) {
      FC.pushCond();
      walk(B->Rhs, St);
      FC.popCond();
    } else {
      walk(B->Rhs, St);
    }
    return;
  }
  case ExprKind::Cond: {
    const auto *C = cast<CondExpr>(E);
    walk(C->Cond, St);
    FC.pushCond();
    walk(C->Then, St);
    walk(C->Else, St);
    FC.popCond();
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    walk(C->Callee, St);
    for (const Expr *Arg : C->Args)
      walk(Arg, St);
    return;
  }
  case ExprKind::Member:
    walk(cast<MemberExpr>(E)->Base, St);
    return;
  case ExprKind::Index: {
    const auto *IX = cast<IndexExpr>(E);
    walk(IX->Base, St);
    walk(IX->Index, St);
    return;
  }
  case ExprKind::InitList:
    for (const Expr *I : cast<InitListExpr>(E)->Inits)
      walk(I, St);
    return;
  default:
    return; // literals, declrefs without load, sizeof (unevaluated)
  }
}

//===----------------------------------------------------------------------===//
// IntervalDomain
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *IntervalName = "interval";
using I128 = __int128;

std::optional<Interval> lookupItv(const IntervalDomain::State &St,
                                  const VarDecl *V) {
  auto It = St.find(V->DeclId);
  if (It == St.end())
    return std::nullopt;
  return It->second;
}

void setItv(IntervalDomain::State &St, const VarDecl *V,
            std::optional<Interval> Val) {
  if (Val)
    St[V->DeclId] = *Val;
  else
    St.erase(V->DeclId);
}

std::optional<Interval> clampI128(I128 Lo, I128 Hi,
                                  const std::optional<Interval> &Range) {
  if (!Range)
    return std::nullopt;
  if (Lo < Range->Lo || Hi > Range->Hi)
    return std::nullopt;
  return Interval{static_cast<int64_t>(Lo), static_cast<int64_t>(Hi)};
}

BinaryOp binOpOfAssign(AssignOp Op) {
  switch (Op) {
  case AssignOp::MulAssign:
    return BinaryOp::Mul;
  case AssignOp::DivAssign:
    return BinaryOp::Div;
  case AssignOp::RemAssign:
    return BinaryOp::Rem;
  case AssignOp::AddAssign:
    return BinaryOp::Add;
  case AssignOp::SubAssign:
    return BinaryOp::Sub;
  case AssignOp::ShlAssign:
    return BinaryOp::Shl;
  case AssignOp::ShrAssign:
    return BinaryOp::Shr;
  case AssignOp::AndAssign:
    return BinaryOp::BitAnd;
  case AssignOp::XorAssign:
    return BinaryOp::BitXor;
  case AssignOp::OrAssign:
    return BinaryOp::BitOr;
  case AssignOp::Assign:
    break;
  }
  return BinaryOp::Add; // unreachable
}

} // namespace

bool IntervalDomain::tracked(const VarDecl *V) const {
  return V && isFrameLocal(V) && !FC.addrTaken(V) && V->Ty.Ty &&
         V->Ty.Ty->isIntegral() && typeRange(V->Ty.Ty).has_value();
}

std::optional<Interval> IntervalDomain::typeRange(const Type *Ty) const {
  if (!Ty || !Ty->isIntegral())
    return std::nullopt;
  if (Ty->isBool())
    return Interval{0, 1};
  unsigned W = FC.Ctx.Types.bitWidthOf(Ty);
  if (W == 0 || W > 64)
    return std::nullopt;
  if (Ty->isUnsignedInteger(FC.Ctx.Types.config())) {
    if (W >= 64)
      return std::nullopt; // uint64 max not representable in int64
    return Interval{0, (int64_t(1) << W) - 1};
  }
  int64_t Max = W == 64 ? INT64_MAX : (int64_t(1) << (W - 1)) - 1;
  return Interval{-Max - 1, Max};
}

bool IntervalDomain::join(State &Into, const State &In) {
  // Absent = top, which absorbs: keys missing on either side go to top.
  bool Changed = false;
  for (auto It = Into.begin(); It != Into.end();) {
    auto BIt = In.find(It->first);
    if (BIt == In.end()) {
      It = Into.erase(It);
      Changed = true;
      continue;
    }
    Interval Hull{std::min(It->second.Lo, BIt->second.Lo),
                  std::max(It->second.Hi, BIt->second.Hi)};
    if (!(Hull == It->second)) {
      Changed = true;
      if (Widening) { // a growing bound goes straight to top
        It = Into.erase(It);
        continue;
      }
      It->second = Hull;
    }
    ++It;
  }
  return Changed;
}

void IntervalDomain::transferStmt(const Stmt *S, State &St) {
  switch (S->Kind) {
  case StmtKind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->Decls) {
      if (!V->Init) {
        if (tracked(V))
          St.erase(V->DeclId); // fresh indeterminate value: top
        continue;
      }
      auto Init = eval(V->Init, St);
      if (tracked(V) && !isa<InitListExpr>(V->Init)) {
        // The initializer converts to the variable's type.
        auto TR = typeRange(V->Ty.Ty);
        if (Init && TR && Init->Lo >= TR->Lo && Init->Hi <= TR->Hi)
          setItv(St, V, Init);
        else if (Init && Init->singleton())
          setItv(St, V,
                 Interval{truncateToType(Init->Lo, V->Ty.Ty, FC.Ctx.Types),
                          truncateToType(Init->Lo, V->Ty.Ty, FC.Ctx.Types)});
        else
          setItv(St, V, std::nullopt);
      }
    }
    return;
  case StmtKind::Expr:
    eval(cast<ExprStmt>(S)->E, St);
    return;
  case StmtKind::Return:
    eval(cast<ReturnStmt>(S)->Value, St);
    return;
  case StmtKind::For:
    eval(cast<ForStmt>(S)->Inc, St);
    return;
  default:
    return;
  }
}

void IntervalDomain::checkIndex(const IndexExpr *IX, bool IsWrite,
                                State &St) {
  auto II = eval(IX->Index, St);
  const Expr *Base = IX->Base;
  uint64_t N = 0;
  bool Known = false;
  if (const auto *IC = dynCast<ImplicitCastExpr>(Base);
      IC && IC->CK == CastKind::ArrayDecay) {
    const Type *ArrTy = IC->Sub->Ty.Ty;
    if (ArrTy && ArrTy->isArray() && ArrTy->ArraySizeKnown) {
      Known = true;
      N = ArrTy->ArraySize;
    }
  } else {
    eval(Base, St); // pointer base: no static extent, still walk it
  }
  if (!Known || !II)
    return;
  // Mirror the machine's code assignment (C11 6.5.6p8): a[i] is
  // *(a + i), so an index outside [0, N] is UB at pointer *formation*
  // (13), and i == N forms legally but dereferences one-past-the-end
  // (29). The access-level read/write codes never fire here — the
  // arithmetic rule precedes them dynamically too.
  (void)IsWrite;
  int64_t Size = static_cast<int64_t>(N);
  if (II->Hi < 0 || II->Lo > Size)
    FC.must(UbKind::PointerArithOutOfBounds, IX->Loc, IntervalName);
  else if (II->singleton() && II->Lo == Size)
    FC.must(UbKind::DerefOnePastEnd, IX->Loc, IntervalName);
  else if (II->Lo < 0 || II->Hi > Size)
    FC.may(UbKind::PointerArithOutOfBounds, IX->Loc, IntervalName);
  else if (II->Hi == Size)
    FC.may(UbKind::DerefOnePastEnd, IX->Loc, IntervalName);
}

void IntervalDomain::storeTo(const Expr *Lhs, const AssignExpr *A,
                             State &St) {
  switch (Lhs->Kind) {
  case ExprKind::Index:
    checkIndex(cast<IndexExpr>(Lhs), /*IsWrite=*/true, St);
    return;
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(Lhs);
    if (M->IsArrow)
      eval(M->Base, St);
    else
      storeTo(M->Base, A, St);
    return;
  }
  case ExprKind::Unary:
    eval(cast<UnaryExpr>(Lhs)->Sub, St);
    return;
  case ExprKind::ImplicitCast:
    storeTo(cast<ImplicitCastExpr>(Lhs)->Sub, A, St);
    return;
  case ExprKind::Cast:
    storeTo(cast<CastExpr>(Lhs)->Sub, A, St);
    return;
  default:
    eval(Lhs, St);
    return;
  }
}

std::optional<Interval>
IntervalDomain::applyIncDec(const VarDecl *V, bool IsInc, bool IsPre,
                            const Type *Ty, SourceLoc Loc, State &St) {
  auto Cur = lookupItv(St, V);
  if (!Cur) {
    return std::nullopt;
  }
  auto TR = typeRange(Ty);
  I128 Lo = static_cast<I128>(Cur->Lo) + (IsInc ? 1 : -1);
  I128 Hi = static_cast<I128>(Cur->Hi) + (IsInc ? 1 : -1);
  auto Next = clampI128(Lo, Hi, TR);
  // c++ on a sub-int type computes in int (integer promotion), so
  // hitting the narrow type's bound converts implementation-defined,
  // never undefined — only int-or-wider increments can overflow.
  const TypeContext &Types = FC.Ctx.Types;
  if (!Next && Cur->singleton() && Ty && Ty->isSignedInteger(Types.config()) &&
      Types.bitWidthOf(Ty) >= Types.bitWidthOf(Types.intTy()))
    FC.must(UbKind::SignedOverflow, Loc, IntervalName);
  setItv(St, V, Next);
  return IsPre ? Next : Cur;
}

std::optional<Interval>
IntervalDomain::evalBinary(BinaryOp Op, const std::optional<Interval> &L,
                           const std::optional<Interval> &R, const Type *Ty,
                           SourceLoc Loc, bool DivisorIsConst) {
  const TargetConfig &Config = FC.Ctx.Types.config();
  auto TR = typeRange(Ty);
  switch (Op) {
  case BinaryOp::Div:
  case BinaryOp::Rem: {
    UbKind ZeroKind =
        Op == BinaryOp::Div ? UbKind::DivisionByZero : UbKind::ModuloByZero;
    if (R) {
      if (R->Lo == 0 && R->Hi == 0) {
        // A constant zero divisor belongs to the syntactic checker
        // (DivByZeroConstant); the flow layer owns the variable case.
        if (!DivisorIsConst)
          FC.must(ZeroKind, Loc, IntervalName);
        return std::nullopt;
      }
      if (R->contains(0))
        FC.may(ZeroKind, Loc, IntervalName);
    }
    if (L && R && L->singleton() && R->singleton() && R->Lo != 0) {
      if (Ty && Ty->isSignedInteger(Config) && TR && L->Lo == TR->Lo &&
          R->Lo == -1) {
        FC.must(UbKind::SignedOverflow, Loc, IntervalName);
        return std::nullopt;
      }
      int64_t V = Op == BinaryOp::Div ? L->Lo / R->Lo : L->Lo % R->Lo;
      return clampI128(V, V, TR);
    }
    return std::nullopt;
  }
  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    unsigned W = Ty && Ty->isIntegral() ? FC.Ctx.Types.bitWidthOf(Ty) : 0;
    if (R && W) {
      if (R->Hi < 0) {
        FC.must(UbKind::NegativeShiftCount, Loc, IntervalName);
        return std::nullopt;
      }
      if (R->Lo < 0)
        FC.may(UbKind::NegativeShiftCount, Loc, IntervalName);
      if (R->Lo >= static_cast<int64_t>(W)) {
        FC.must(UbKind::ShiftExponentOutOfRange, Loc, IntervalName);
        return std::nullopt;
      }
      if (R->Hi >= static_cast<int64_t>(W))
        FC.may(UbKind::ShiftExponentOutOfRange, Loc, IntervalName);
    }
    if (Op == BinaryOp::Shl && Ty && Ty->isSignedInteger(Config) && L) {
      if (L->Hi < 0) {
        FC.must(UbKind::ShiftOfNegative, Loc, IntervalName);
        return std::nullopt;
      }
      if (L->Lo < 0)
        FC.may(UbKind::ShiftOfNegative, Loc, IntervalName);
    }
    if (L && R && L->singleton() && R->singleton() && L->Lo >= 0 &&
        R->Lo >= 0 && R->Lo < static_cast<int64_t>(W)) {
      I128 V = Op == BinaryOp::Shl ? static_cast<I128>(L->Lo) << R->Lo
                                   : static_cast<I128>(L->Lo) >> R->Lo;
      return clampI128(V, V, TR);
    }
    return std::nullopt;
  }
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul: {
    if (!L || !R || !Ty || !Ty->isIntegral() || !TR)
      return std::nullopt;
    I128 Lo, Hi;
    if (Op == BinaryOp::Add) {
      Lo = static_cast<I128>(L->Lo) + R->Lo;
      Hi = static_cast<I128>(L->Hi) + R->Hi;
    } else if (Op == BinaryOp::Sub) {
      Lo = static_cast<I128>(L->Lo) - R->Hi;
      Hi = static_cast<I128>(L->Hi) - R->Lo;
    } else {
      I128 P1 = static_cast<I128>(L->Lo) * R->Lo;
      I128 P2 = static_cast<I128>(L->Lo) * R->Hi;
      I128 P3 = static_cast<I128>(L->Hi) * R->Lo;
      I128 P4 = static_cast<I128>(L->Hi) * R->Hi;
      Lo = std::min(std::min(P1, P2), std::min(P3, P4));
      Hi = std::max(std::max(P1, P2), std::max(P3, P4));
    }
    auto Res = clampI128(Lo, Hi, TR);
    if (!Res && Ty->isSignedInteger(Config) && L->singleton() &&
        R->singleton())
      FC.must(UbKind::SignedOverflow, Loc, IntervalName);
    return Res;
  }
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return Interval{0, 1};
  default:
    return std::nullopt;
  }
}

std::optional<Interval> IntervalDomain::eval(const Expr *E, State &St) {
  if (!E)
    return std::nullopt;
  // Constant expressions fold directly — this also covers sizeof and
  // enum constants the structural walk below cannot see. A constant
  // expression has no side effects, so skipping the walk is safe.
  if (auto C = constEvalInt(E, FC.Ctx.Types))
    return Interval{*C, *C};
  switch (E->Kind) {
  case ExprKind::ImplicitCast:
  case ExprKind::Cast: {
    CastKind CK;
    const Expr *Sub;
    if (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
      CK = IC->CK;
      Sub = IC->Sub;
    } else {
      CK = cast<CastExpr>(E)->CK;
      Sub = cast<CastExpr>(E)->Sub;
    }
    switch (CK) {
    case CastKind::LValueToRValue: {
      if (const VarDecl *V = varOf(Sub)) {
        if (tracked(V))
          return lookupItv(St, V);
        return std::nullopt;
      }
      eval(Sub, St);
      return std::nullopt;
    }
    case CastKind::ToBool: {
      auto SI = eval(Sub, St);
      if (SI && !SI->contains(0))
        return Interval{1, 1};
      if (SI && SI->Lo == 0 && SI->Hi == 0)
        return Interval{0, 0};
      return Interval{0, 1};
    }
    case CastKind::IntegralCast: {
      auto SI = eval(Sub, St);
      if (!SI)
        return std::nullopt;
      auto TR = typeRange(E->Ty.Ty);
      if (TR && SI->Lo >= TR->Lo && SI->Hi <= TR->Hi)
        return SI;
      if (SI->singleton()) {
        int64_t T = truncateToType(SI->Lo, E->Ty.Ty, FC.Ctx.Types);
        return Interval{T, T};
      }
      return std::nullopt;
    }
    default:
      eval(Sub, St);
      return std::nullopt;
    }
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->Op) {
    case UnaryOp::Plus:
      return eval(U->Sub, St);
    case UnaryOp::Minus: {
      auto SI = eval(U->Sub, St);
      if (!SI || SI->Lo == INT64_MIN)
        return std::nullopt;
      auto TR = typeRange(E->Ty.Ty);
      auto Res = clampI128(-static_cast<I128>(SI->Hi),
                           -static_cast<I128>(SI->Lo), TR);
      if (!Res && SI->singleton() && E->Ty.Ty &&
          E->Ty.Ty->isSignedInteger(FC.Ctx.Types.config()))
        FC.must(UbKind::SignedOverflow, U->Loc, IntervalName);
      return Res;
    }
    case UnaryOp::LogNot: {
      auto SI = eval(U->Sub, St);
      if (SI && !SI->contains(0))
        return Interval{0, 0};
      if (SI && SI->Lo == 0 && SI->Hi == 0)
        return Interval{1, 1};
      return Interval{0, 1};
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      bool IsInc = U->Op == UnaryOp::PreInc || U->Op == UnaryOp::PostInc;
      bool IsPre = U->Op == UnaryOp::PreInc || U->Op == UnaryOp::PreDec;
      if (const VarDecl *V = varOf(U->Sub); V && tracked(V))
        return applyIncDec(V, IsInc, IsPre, V->Ty.Ty, U->Loc, St);
      eval(U->Sub, St);
      return std::nullopt;
    }
    case UnaryOp::AddrOf: {
      // No access happens; subscripts under & may legally form
      // one-past-the-end, so evaluate indices without bounds checks.
      const Expr *D = U->Sub;
      while (true) {
        if (const auto *M = dynCast<MemberExpr>(D)) {
          if (M->IsArrow) {
            eval(M->Base, St);
            break;
          }
          D = M->Base;
          continue;
        }
        if (const auto *IX = dynCast<IndexExpr>(D)) {
          eval(IX->Index, St);
          D = IX->Base;
          continue;
        }
        if (const auto *IC = dynCast<ImplicitCastExpr>(D)) {
          D = IC->Sub;
          continue;
        }
        if (const auto *Inner = dynCast<UnaryExpr>(D);
            Inner && Inner->Op == UnaryOp::Deref) {
          eval(Inner->Sub, St);
          break;
        }
        break;
      }
      return std::nullopt;
    }
    default:
      eval(U->Sub, St);
      return std::nullopt;
    }
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->Op == BinaryOp::Comma) {
      eval(B->Lhs, St);
      return eval(B->Rhs, St);
    }
    if (B->Op == BinaryOp::LogAnd || B->Op == BinaryOp::LogOr) {
      eval(B->Lhs, St);
      FC.pushCond();
      eval(B->Rhs, St);
      FC.popCond();
      return Interval{0, 1};
    }
    auto LI = eval(B->Lhs, St);
    auto RI = eval(B->Rhs, St);
    bool DivisorIsConst = (B->Op == BinaryOp::Div || B->Op == BinaryOp::Rem) &&
                          constEvalInt(B->Rhs, FC.Ctx.Types).has_value();
    return evalBinary(B->Op, LI, RI, E->Ty.Ty, B->Loc, DivisorIsConst);
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    auto RI = eval(A->Rhs, St);
    const VarDecl *V = varOf(A->Lhs);
    if (V && tracked(V)) {
      const Type *VT = V->Ty.Ty;
      auto TR = typeRange(VT);
      std::optional<Interval> NewV;
      if (A->Op == AssignOp::Assign) {
        NewV = RI;
      } else {
        const Type *CT = A->ComputeTy.Ty ? A->ComputeTy.Ty : VT;
        bool DivisorIsConst =
            (A->Op == AssignOp::DivAssign || A->Op == AssignOp::RemAssign) &&
            constEvalInt(A->Rhs, FC.Ctx.Types).has_value();
        NewV = evalBinary(binOpOfAssign(A->Op), lookupItv(St, V), RI, CT,
                          A->Loc, DivisorIsConst);
      }
      // Convert the stored value into the variable's type.
      if (NewV && TR && !(NewV->Lo >= TR->Lo && NewV->Hi <= TR->Hi)) {
        if (NewV->singleton()) {
          int64_t T = truncateToType(NewV->Lo, VT, FC.Ctx.Types);
          NewV = Interval{T, T};
        } else {
          NewV = std::nullopt;
        }
      }
      setItv(St, V, NewV);
      return NewV;
    }
    storeTo(A->Lhs, A, St);
    return A->Op == AssignOp::Assign ? RI : std::nullopt;
  }
  case ExprKind::Cond: {
    const auto *C = cast<CondExpr>(E);
    eval(C->Cond, St);
    FC.pushCond();
    auto T = eval(C->Then, St);
    auto F = eval(C->Else, St);
    FC.popCond();
    if (T && F)
      return Interval{std::min(T->Lo, F->Lo), std::max(T->Hi, F->Hi)};
    return std::nullopt;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    eval(C->Callee, St);
    for (const Expr *Arg : C->Args)
      eval(Arg, St);
    return std::nullopt;
  }
  case ExprKind::Index:
    checkIndex(cast<IndexExpr>(E), /*IsWrite=*/false, St);
    return std::nullopt;
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    if (M->IsArrow)
      eval(M->Base, St);
    return std::nullopt;
  }
  case ExprKind::InitList:
    for (const Expr *I : cast<InitListExpr>(E)->Inits)
      eval(I, St);
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

namespace {

/// Matches a plain load of a tracked variable under value-preserving
/// wrappers only: ToBool, or an *widening* integral promotion (value
/// identity holds, so refining through it is sound; a narrowing cast
/// is not peeled — `(char)x == 0` constrains x only modulo 2^8).
const Expr *peelValuePreserving(const Expr *E, const TypeContext &Types) {
  while (const auto *IC = dynCast<ImplicitCastExpr>(E)) {
    if (IC->CK == CastKind::ToBool) {
      E = IC->Sub;
      continue;
    }
    if (IC->CK == CastKind::IntegralCast) {
      const Type *From = IC->Sub->Ty.Ty;
      const Type *To = IC->Ty.Ty;
      if (From && To && From->isIntegral() && To->isIntegral()) {
        unsigned WF = Types.bitWidthOf(From), WT = Types.bitWidthOf(To);
        bool Preserving =
            WT > WF && (To->isSignedInteger(Types.config()) ||
                        From->isUnsignedInteger(Types.config()));
        if (Preserving) {
          E = IC->Sub;
          continue;
        }
      }
    }
    break;
  }
  return E;
}

} // namespace

bool IntervalDomain::transferCond(const Expr *Cond, bool Taken, State &St) {
  const TypeContext &Types = FC.Ctx.Types;
  const Expr *E = peelValuePreserving(Cond, Types);

  // if ((n = e)): refine the assigned variable's truthiness.
  if (const auto *A = dynCast<AssignExpr>(E); A && A->Op == AssignOp::Assign)
    if (const VarDecl *V = varOf(A->Lhs); V && tracked(V)) {
      auto Cur = lookupItv(St, V);
      if (!Taken) {
        if (Cur && !Cur->contains(0))
          return false;
        setItv(St, V, Interval{0, 0});
      } else if (Cur) {
        if (Cur->Lo == 0 && Cur->Hi == 0)
          return false;
        Interval R = *Cur;
        if (R.Lo == 0)
          R.Lo = 1;
        else if (R.Hi == 0)
          R.Hi = -1;
        setItv(St, V, R);
      }
      return true;
    }

  // Truth test of a tracked variable.
  {
    const auto *Load = dynCast<ImplicitCastExpr>(E);
    if (Load && Load->CK == CastKind::LValueToRValue) {
      const VarDecl *V = varOf(Load->Sub);
      if (V && tracked(V)) {
        auto Cur = lookupItv(St, V);
        if (!Taken) {
          if (Cur && !Cur->contains(0))
            return false;
          setItv(St, V, Interval{0, 0});
        } else if (Cur) {
          if (Cur->Lo == 0 && Cur->Hi == 0)
            return false;
          Interval R = *Cur;
          if (R.Lo == 0)
            R.Lo = 1;
          else if (R.Hi == 0)
            R.Hi = -1;
          setItv(St, V, R);
        }
        return true;
      }
      return true;
    }
  }

  // var REL const (either operand order).
  const auto *B = dynCast<BinaryExpr>(E);
  if (!B)
    return true;
  BinaryOp Op = B->Op;
  if (Op != BinaryOp::Lt && Op != BinaryOp::Gt && Op != BinaryOp::Le &&
      Op != BinaryOp::Ge && Op != BinaryOp::Eq && Op != BinaryOp::Ne)
    return true;

  const VarDecl *V = nullptr;
  std::optional<int64_t> C;
  if (const auto *Load =
          dynCast<ImplicitCastExpr>(peelValuePreserving(B->Lhs, Types));
      Load && Load->CK == CastKind::LValueToRValue && varOf(Load->Sub)) {
    V = varOf(Load->Sub);
    C = constEvalInt(B->Rhs, Types);
  }
  if (!V || !C) {
    if (const auto *Load =
            dynCast<ImplicitCastExpr>(peelValuePreserving(B->Rhs, Types));
        Load && Load->CK == CastKind::LValueToRValue && varOf(Load->Sub)) {
      V = varOf(Load->Sub);
      C = constEvalInt(B->Lhs, Types);
      // Flip so the variable is on the left: C < v  ⇔  v > C, etc.
      switch (Op) {
      case BinaryOp::Lt:
        Op = BinaryOp::Gt;
        break;
      case BinaryOp::Gt:
        Op = BinaryOp::Lt;
        break;
      case BinaryOp::Le:
        Op = BinaryOp::Ge;
        break;
      case BinaryOp::Ge:
        Op = BinaryOp::Le;
        break;
      default:
        break;
      }
    }
  }
  if (!V || !C || !tracked(V))
    return true;

  // The false edge refines by the negated relation.
  if (!Taken) {
    switch (Op) {
    case BinaryOp::Lt:
      Op = BinaryOp::Ge;
      break;
    case BinaryOp::Gt:
      Op = BinaryOp::Le;
      break;
    case BinaryOp::Le:
      Op = BinaryOp::Gt;
      break;
    case BinaryOp::Ge:
      Op = BinaryOp::Lt;
      break;
    case BinaryOp::Eq:
      Op = BinaryOp::Ne;
      break;
    case BinaryOp::Ne:
      Op = BinaryOp::Eq;
      break;
    default:
      break;
    }
  }

  auto Cur = lookupItv(St, V);
  if (Op == BinaryOp::Eq) {
    // Equality may seed from the full type range: it yields a
    // singleton, which is precise enough to be worth tracking even
    // for otherwise-unknown variables.
    Interval Base = Cur ? *Cur : *typeRange(V->Ty.Ty);
    if (!Base.contains(*C))
      return false;
    setItv(St, V, Interval{*C, *C});
    return true;
  }
  if (!Cur) {
    // Inequalities on unknown variables are deliberately not seeded
    // from the type range: half-open intervals like [INT_MIN, C-1]
    // mostly produce noise hints (every loop counter after widening).
    return true;
  }
  Interval R = *Cur;
  switch (Op) {
  case BinaryOp::Ne:
    if (R.Lo == *C && R.Hi == *C)
      return false;
    if (R.Lo == *C)
      ++R.Lo;
    else if (R.Hi == *C)
      --R.Hi;
    break;
  case BinaryOp::Lt:
    if (*C == INT64_MIN)
      return false;
    R.Hi = std::min(R.Hi, *C - 1);
    break;
  case BinaryOp::Le:
    R.Hi = std::min(R.Hi, *C);
    break;
  case BinaryOp::Gt:
    if (*C == INT64_MAX)
      return false;
    R.Lo = std::max(R.Lo, *C + 1);
    break;
  case BinaryOp::Ge:
    R.Lo = std::max(R.Lo, *C);
    break;
  default:
    break;
  }
  if (R.Lo > R.Hi)
    return false;
  setItv(St, V, R);
  return true;
}

bool IntervalDomain::transferSwitchEdge(const Expr *Cond, const CaseStmt *Case,
                                        State &St) {
  if (!Case)
    return true; // default / fall-out edge: no single-value refinement
  const Expr *E = peelValuePreserving(Cond, FC.Ctx.Types);
  const auto *Load = dynCast<ImplicitCastExpr>(E);
  if (!Load || Load->CK != CastKind::LValueToRValue)
    return true;
  const VarDecl *V = varOf(Load->Sub);
  if (!V || !tracked(V))
    return true;
  auto Cur = lookupItv(St, V);
  Interval Base = Cur ? *Cur : *typeRange(V->Ty.Ty);
  if (!Base.contains(Case->Value))
    return false; // this case label can never be reached
  setItv(St, V, Interval{Case->Value, Case->Value});
  return true;
}
