//===- static/Cfg.h - Per-function control-flow graphs ----------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement-level control-flow graphs over the analyzed AST, built per
/// function for the flow-sensitive static layer (static/FlowChecker.h).
/// Basic blocks hold straight-line statements; edges model `if`, the
/// three loop forms, `switch` dispatch with fallthrough, `break` /
/// `continue` / `return`, Sema-resolved `goto`, and short-circuit
/// evaluation: `&&` / `||` / `!` / `?:` in branch position are
/// decomposed into chains of *atomic* condition blocks, so a dataflow
/// domain sees each leaf condition with an explicit true/false edge and
/// can refine its state per branch (static/Dataflow.h).
///
/// The graph never owns AST nodes — it indexes into the immutable
/// CompiledProgram AST, so building one is cheap and the result is as
/// shareable as the artifact it came from.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_STATIC_CFG_H
#define CUNDEF_STATIC_CFG_H

#include "ast/Ast.h"

#include <string>
#include <vector>

namespace cundef {

class StringInterner;

using BlockId = uint32_t;
constexpr BlockId NoBlock = ~0u;

/// One basic block: straight-line statements plus a terminator.
///
/// Terminators, by shape of (Cond, Switch, Succs):
///  * plain jump / fallthrough: Cond == null, Succs = {next} (or {} for
///    the exit block);
///  * conditional branch: Cond != null, Succs = {true-target,
///    false-target}. Cond is atomic — never `&&`/`||`/`!`/`?:`;
///  * switch dispatch: Switch != null, Cond is the controlling
///    expression, Succs[i] targets SwitchCases[i] (null = the default /
///    fall-out edge, always last).
struct CfgBlock {
  BlockId Id = 0;
  std::vector<const Stmt *> Stmts;
  const Expr *Cond = nullptr;
  const SwitchStmt *Switch = nullptr;
  std::vector<const CaseStmt *> SwitchCases; ///< aligned with Succs
  std::vector<BlockId> Succs;
  std::vector<BlockId> Preds; ///< computed when the graph is sealed

  bool isConditional() const { return Cond && !Switch; }
  bool isSwitch() const { return Switch != nullptr; }
};

/// The control-flow graph of one function definition.
class Cfg {
public:
  /// Builds the graph for \p F (which must have a body). Deterministic:
  /// equal ASTs produce equal graphs, block ids are creation-ordered.
  static Cfg build(const FunctionDecl *F);

  const FunctionDecl *function() const { return Fn; }
  const std::vector<CfgBlock> &blocks() const { return Blocks; }
  const CfgBlock &block(BlockId Id) const { return Blocks[Id]; }
  BlockId entry() const { return Entry; }
  BlockId exit() const { return Exit; }
  size_t size() const { return Blocks.size(); }

  /// Blocks reachable from entry, in reverse post-order — the iteration
  /// order every dataflow fixpoint uses (deterministic).
  const std::vector<BlockId> &rpo() const { return Rpo; }

  /// Renders the graph shape for golden tests:
  ///   B0: stmts=2 if -> B2 B3
  ///   B1: exit
  ///   B2: stmts=1 -> B1
  /// Switch terminators print their labeled edges
  /// (`switch -> B2(case 1) B3(default)`).
  std::string dump(const StringInterner &Interner) const;

private:
  friend class CfgBuilder;
  const FunctionDecl *Fn = nullptr;
  std::vector<CfgBlock> Blocks;
  BlockId Entry = 0;
  BlockId Exit = 0;
  std::vector<BlockId> Rpo;
};

} // namespace cundef

#endif // CUNDEF_STATIC_CFG_H
