//===- static/FlowChecker.h - Flow-sensitive static UB pass -----*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-sensitive static analysis pass: builds a CFG per function
/// definition (static/Cfg.h), runs the three abstract domains
/// (static/Domains.h) to a fixpoint (static/Dataflow.h), then replays
/// the transfer functions once over the settled block-entry states with
/// reporting armed.
///
/// Findings split by verdict into two sinks: *must* findings (true on
/// every execution reaching the point) join the syntactic checker's
/// output and participate in the program's UB verdict; *may* findings
/// are triage hints, reported separately and never part of the verdict.
/// Both are sorted by (line, col, code) and deduplicated, so the output
/// is a pure function of the AST — byte-identical across schedulers,
/// worker counts, and cache state.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_STATIC_FLOWCHECKER_H
#define CUNDEF_STATIC_FLOWCHECKER_H

#include "ast/Ast.h"
#include "ub/Report.h"

namespace cundef {

class FlowChecker {
public:
  FlowChecker(AstContext &Ctx, UbSink &Must, UbSink &Hints)
      : Ctx(Ctx), Must(Must), Hints(Hints) {}

  /// Analyzes every function definition in the translation unit.
  void run();

private:
  void runFunction(const FunctionDecl *F);

  AstContext &Ctx;
  UbSink &Must;
  UbSink &Hints;
};

} // namespace cundef

#endif // CUNDEF_STATIC_FLOWCHECKER_H
