//===- static/Domains.h - Flow-sensitive abstract domains ------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three intraprocedural abstract domains the flow-sensitive static
/// layer runs over each function's CFG (static/Cfg.h, static/Dataflow.h):
///
///  * NullnessDomain — pointer locals as NonNull < Unknown / Null, with
///    MaybeNull on joins; catches definite null dereference (6), writes
///    through pointers to const-defined objects (49), and returned
///    addresses of locals (36).
///  * InitDomain — definite-initialization per scalar local and per
///    record member (Uninit / Init / MaybeInit); catches reads of
///    indeterminate values (19) and uninitialized pointer use (30).
///  * IntervalDomain — constant intervals [lo, hi] over integer locals;
///    catches reachable division/modulo by zero (1/2), oversized and
///    negative shifts (4/32), shifts of negative values (5), constant
///    out-of-bounds indexing (13 at pointer formation, 29 at one-past
///    dereference — matching the machine's code assignment), and
///    signed overflow on constant paths (3).
///
/// Soundness discipline shared by all three: any variable whose address
/// is taken (or whose array decays to a pointer value) is never tracked
/// — its abstract value is permanently top — so aliased mutation can
/// never make a *must* claim wrong. Must-findings are therefore true on
/// every execution reaching the program point; may-findings are triage
/// hints and never part of the verdict.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_STATIC_DOMAINS_H
#define CUNDEF_STATIC_DOMAINS_H

#include "ast/Ast.h"
#include "ub/Report.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

namespace cundef {

/// Per-function context the domains share: the address-taken exclusion
/// set, and the finding collector (armed only during the reporting pass
/// that re-runs transfers after the fixpoint, so sweeps stay silent).
class FlowContext {
public:
  FlowContext(AstContext &Ctx, const FunctionDecl *Fn);

  AstContext &Ctx;
  const FunctionDecl *Fn;
  std::string FnName;

  /// True when the variable's address escapes anywhere in the function
  /// (explicit &, or array-to-pointer decay used as a value).
  bool addrTaken(const VarDecl *V) const {
    return AddrTaken.count(V->DeclId) != 0;
  }

  /// Arms / disarms finding collection.
  void setReporting(bool On) { Reporting = On; }
  bool reporting() const { return Reporting; }

  /// Records a definite (every-path) finding. Demoted to a hint while
  /// inside a conditionally evaluated subexpression (see pushCond).
  void must(UbKind Kind, SourceLoc Loc, const char *Domain);
  /// Records a some-path triage hint.
  void may(UbKind Kind, SourceLoc Loc, const char *Domain);

  /// Brackets walking a subexpression that may not execute (`&&`/`||`
  /// right operands and `?:` arms in *value* position — branch-position
  /// conditions are CFG-decomposed and never need this). While the
  /// depth is nonzero, must() downgrades to may().
  void pushCond() { ++CondDepth; }
  void popCond() { --CondDepth; }

  /// All findings of this function, sorted by (line, col, code) with
  /// must before may at equal positions, deduplicated by (code, loc).
  std::vector<UbReport> takeMust();
  std::vector<UbReport> takeHints();

private:
  void emit(UbKind Kind, SourceLoc Loc, const char *Domain,
            FindingVerdict Verdict);

  std::set<uint32_t> AddrTaken;
  bool Reporting = false;
  unsigned CondDepth = 0;
  std::vector<UbReport> MustFindings;
  std::vector<UbReport> MayFindings;
  std::set<std::tuple<uint32_t, uint32_t, uint16_t, uint8_t>> Seen;
};

//===----------------------------------------------------------------------===//
// Nullness
//===----------------------------------------------------------------------===//

/// Abstract pointer value. Kind forms a diamond with MaybeNull on top
/// over Null and { NonNull, Unknown } below, where Unknown absorbs
/// NonNull on joins. Local / ConstTarget are
/// must-properties of the pointed-to object (AND-ed on joins), only
/// meaningful when the pointer is provably non-null.
struct PtrVal {
  enum K : uint8_t { Unknown, Null, NonNull, MaybeNull };
  K Kind = Unknown;
  bool Local = false;       ///< points into the current frame
  bool ConstTarget = false; ///< points to an object defined const

  bool operator==(const PtrVal &O) const {
    return Kind == O.Kind && Local == O.Local && ConstTarget == O.ConstTarget;
  }
  bool operator!=(const PtrVal &O) const { return !(*this == O); }
};

class NullnessDomain {
public:
  using State = std::map<uint32_t, PtrVal>; ///< DeclId -> value; absent = top

  explicit NullnessDomain(FlowContext &FC) : FC(FC) {}

  State boundary() { return {}; }
  bool join(State &Into, const State &In);
  void transferStmt(const Stmt *S, State &St);
  void transferCondEval(const Expr *Cond, State &St);
  bool transferCond(const Expr *Cond, bool Taken, State &St);
  bool transferSwitchEdge(const Expr *, const CaseStmt *, State &) {
    return true; // finite domain, nothing to refine on integer cases
  }
  void setWidening(bool) {} // finite height

private:
  bool tracked(const VarDecl *V) const;
  PtrVal evalPtr(const Expr *E, State &St);
  void walk(const Expr *E, State &St);
  void checkDeref(const Expr *PtrOperand, State &St, bool IsWrite);
  void storeTo(const Expr *Lhs, State &St);
  bool refine(const VarDecl *V, bool ToNonNull, State &St);

  FlowContext &FC;
};

//===----------------------------------------------------------------------===//
// Initialization
//===----------------------------------------------------------------------===//

class InitDomain {
public:
  /// Key: DeclId * 2^16 + (field index + 1); +0 is the whole-variable
  /// slot used for scalars and arrays. Absent = Init (top).
  using State = std::map<uint64_t, uint8_t>; ///< value: 0 Uninit, 1 Maybe

  explicit InitDomain(FlowContext &FC) : FC(FC) {}

  State boundary() { return {}; }
  bool join(State &Into, const State &In);
  void transferStmt(const Stmt *S, State &St);
  void transferCondEval(const Expr *Cond, State &St) { walk(Cond, St); }
  bool transferCond(const Expr *, bool, State &) { return true; }
  bool transferSwitchEdge(const Expr *, const CaseStmt *, State &) {
    return true;
  }
  void setWidening(bool) {} // finite height

private:
  enum class Track : uint8_t { No, Whole, PerField };
  Track trackKind(const VarDecl *V) const;
  void declare(const VarDecl *V, State &St);
  void setAllInit(const VarDecl *V, State &St);
  void walk(const Expr *E, State &St);
  void storeTo(const Expr *Lhs, bool Compound, State &St);
  void checkRead(uint64_t Key, bool IsPointer, SourceLoc Loc, State &St);

  FlowContext &FC;
};

//===----------------------------------------------------------------------===//
// Constant intervals
//===----------------------------------------------------------------------===//

struct Interval {
  int64_t Lo = 0;
  int64_t Hi = 0;

  bool singleton() const { return Lo == Hi; }
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }
  bool operator==(const Interval &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
};

class IntervalDomain {
public:
  using State = std::map<uint32_t, Interval>; ///< DeclId -> itv; absent = top

  explicit IntervalDomain(FlowContext &FC) : FC(FC) {}

  State boundary() { return {}; }
  bool join(State &Into, const State &In);
  void transferStmt(const Stmt *S, State &St);
  void transferCondEval(const Expr *Cond, State &St) { eval(Cond, St); }
  bool transferCond(const Expr *Cond, bool Taken, State &St);
  bool transferSwitchEdge(const Expr *Cond, const CaseStmt *Case, State &St);
  void setWidening(bool On) { Widening = On; }

private:
  bool tracked(const VarDecl *V) const;
  std::optional<Interval> typeRange(const Type *Ty) const;
  std::optional<Interval> eval(const Expr *E, State &St);
  std::optional<Interval> evalBinary(BinaryOp Op,
                                     const std::optional<Interval> &L,
                                     const std::optional<Interval> &R,
                                     const Type *Ty, SourceLoc Loc,
                                     bool DivisorIsConst);
  std::optional<Interval> applyIncDec(const VarDecl *V, bool IsInc,
                                      bool IsPre, const Type *Ty,
                                      SourceLoc Loc, State &St);
  void checkIndex(const IndexExpr *IX, bool IsWrite, State &St);
  void storeTo(const Expr *Lhs, const AssignExpr *A, State &St);

  FlowContext &FC;
  bool Widening = false;
};

} // namespace cundef

#endif // CUNDEF_STATIC_DOMAINS_H
