//===- static/Cfg.cpp - Per-function control-flow graphs -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "static/Cfg.h"

#include "support/StringInterner.h"
#include "support/Strings.h"

#include <algorithm>
#include <map>

using namespace cundef;

namespace cundef {

/// Builds one Cfg. The builder keeps a "current block" cursor; control
/// statements terminate it and continue in fresh blocks. Jumps out of
/// line (break/continue/goto/return) leave the cursor on a fresh
/// *unreached* block so trailing dead statements still land somewhere
/// without corrupting edges.
class CfgBuilder {
public:
  explicit CfgBuilder(const FunctionDecl *F) { G.Fn = F; }

  Cfg run() {
    G.Entry = newBlock();
    G.Exit = newBlock();
    Cur = G.Entry;
    buildStmt(G.Fn->Body);
    edge(Cur, G.Exit); // falling off the end
    seal();
    return std::move(G);
  }

private:
  Cfg G;
  BlockId Cur = 0;
  std::vector<BlockId> BreakTargets;
  std::vector<BlockId> ContinueTargets;
  std::map<const LabelStmt *, BlockId> LabelBlocks;
  std::map<const Stmt *, BlockId> CaseBlocks; ///< CaseStmt / DefaultStmt

  BlockId newBlock() {
    BlockId Id = static_cast<BlockId>(G.Blocks.size());
    G.Blocks.emplace_back();
    G.Blocks.back().Id = Id;
    return Id;
  }

  void edge(BlockId From, BlockId To) { G.Blocks[From].Succs.push_back(To); }

  BlockId labelBlock(const LabelStmt *L) {
    auto It = LabelBlocks.find(L);
    if (It != LabelBlocks.end())
      return It->second;
    BlockId Id = newBlock();
    LabelBlocks.emplace(L, Id);
    return Id;
  }

  BlockId caseBlock(const Stmt *CaseOrDefault) {
    auto It = CaseBlocks.find(CaseOrDefault);
    if (It != CaseBlocks.end())
      return It->second;
    BlockId Id = newBlock();
    CaseBlocks.emplace(CaseOrDefault, Id);
    return Id;
  }

  //===--- Conditions ----------------------------------------------------===//

  /// Is \p E a short-circuit shape worth decomposing? Peels the ToBool
  /// wrapper Sema puts around branch conditions.
  static const Expr *peelToBool(const Expr *E) {
    if (const auto *IC = dynCast<ImplicitCastExpr>(E))
      if (IC->CK == CastKind::ToBool)
        return IC->Sub;
    return E;
  }

  /// Terminates the current block(s) so that control reaches \p True
  /// when \p E evaluates nonzero and \p False otherwise, decomposing
  /// short-circuit operators into atomic condition blocks.
  void buildCond(const Expr *E, BlockId True, BlockId False) {
    const Expr *Inner = peelToBool(E);
    if (const auto *B = dynCast<BinaryExpr>(Inner)) {
      if (B->Op == BinaryOp::LogAnd) {
        BlockId Mid = newBlock();
        buildCond(B->Lhs, Mid, False);
        Cur = Mid;
        buildCond(B->Rhs, True, False);
        return;
      }
      if (B->Op == BinaryOp::LogOr) {
        BlockId Mid = newBlock();
        buildCond(B->Lhs, True, Mid);
        Cur = Mid;
        buildCond(B->Rhs, True, False);
        return;
      }
    }
    if (const auto *U = dynCast<UnaryExpr>(Inner)) {
      if (U->Op == UnaryOp::LogNot) {
        buildCond(U->Sub, False, True);
        return;
      }
    }
    if (const auto *C = dynCast<CondExpr>(Inner)) {
      BlockId T = newBlock(), F = newBlock();
      buildCond(C->Cond, T, F);
      Cur = T;
      buildCond(C->Then, True, False);
      Cur = F;
      buildCond(C->Else, True, False);
      return;
    }
    CfgBlock &B = G.Blocks[Cur];
    B.Cond = E;
    B.Succs.push_back(True);
    B.Succs.push_back(False);
  }

  //===--- Statements ----------------------------------------------------===//

  void buildStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        buildStmt(Sub);
      return;
    case StmtKind::Decl:
    case StmtKind::Expr:
      G.Blocks[Cur].Stmts.push_back(S);
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      BlockId Then = newBlock();
      BlockId Join = newBlock();
      BlockId Else = I->Else ? newBlock() : Join;
      buildCond(I->Cond, Then, Else);
      Cur = Then;
      buildStmt(I->Then);
      edge(Cur, Join);
      if (I->Else) {
        Cur = Else;
        buildStmt(I->Else);
        edge(Cur, Join);
      }
      Cur = Join;
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      BlockId Head = newBlock();
      BlockId Body = newBlock();
      BlockId After = newBlock();
      edge(Cur, Head);
      Cur = Head;
      buildCond(W->Cond, Body, After);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(Head);
      Cur = Body;
      buildStmt(W->Body);
      edge(Cur, Head);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = After;
      return;
    }
    case StmtKind::Do: {
      const auto *D = cast<DoStmt>(S);
      BlockId Body = newBlock();
      BlockId CondB = newBlock();
      BlockId After = newBlock();
      edge(Cur, Body);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(CondB);
      Cur = Body;
      buildStmt(D->Body);
      edge(Cur, CondB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = CondB;
      buildCond(D->Cond, Body, After);
      Cur = After;
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      buildStmt(F->Init);
      BlockId Head = newBlock();
      BlockId Body = newBlock();
      BlockId Inc = newBlock();
      BlockId After = newBlock();
      edge(Cur, Head);
      Cur = Head;
      if (F->Cond)
        buildCond(F->Cond, Body, After);
      else
        edge(Cur, Body);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(Inc);
      Cur = Body;
      buildStmt(F->Body);
      edge(Cur, Inc);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = Inc;
      if (F->Inc)
        G.Blocks[Cur].Stmts.push_back(S); // the Inc expression rides as
                                          // the ForStmt itself (domains
                                          // transfer F->Inc)
      edge(Cur, Head);
      Cur = After;
      return;
    }
    case StmtKind::Switch: {
      const auto *SW = cast<SwitchStmt>(S);
      BlockId After = newBlock();
      BlockId DispatchId = Cur;
      // Materialize every target first: newBlock() may reallocate the
      // block vector, so no CfgBlock reference is held across it.
      std::vector<BlockId> Targets;
      std::vector<const CaseStmt *> Labels;
      for (const CaseStmt *C : SW->Cases) {
        Targets.push_back(caseBlock(C));
        Labels.push_back(C);
      }
      // The default edge (or fall-out when there is none) is always
      // last, marked by a null CaseStmt.
      Targets.push_back(SW->Default ? caseBlock(SW->Default) : After);
      Labels.push_back(nullptr);
      CfgBlock &Dispatch = G.Blocks[DispatchId];
      Dispatch.Cond = SW->Cond;
      Dispatch.Switch = SW;
      Dispatch.Succs = std::move(Targets);
      Dispatch.SwitchCases = std::move(Labels);

      BreakTargets.push_back(After);
      // Statements before the first label are unreachable; park them in
      // a fresh block with no predecessors.
      Cur = newBlock();
      buildStmt(SW->Body);
      edge(Cur, After); // fallthrough out of the last label
      BreakTargets.pop_back();
      Cur = After;
      return;
    }
    case StmtKind::Case: {
      const auto *C = cast<CaseStmt>(S);
      BlockId B = caseBlock(C);
      edge(Cur, B); // fallthrough from the previous label's statements
      Cur = B;
      buildStmt(C->Sub);
      return;
    }
    case StmtKind::Default: {
      const auto *D = cast<DefaultStmt>(S);
      BlockId B = caseBlock(D);
      edge(Cur, B);
      Cur = B;
      buildStmt(D->Sub);
      return;
    }
    case StmtKind::Break:
      if (!BreakTargets.empty())
        edge(Cur, BreakTargets.back());
      Cur = newBlock();
      return;
    case StmtKind::Continue:
      if (!ContinueTargets.empty())
        edge(Cur, ContinueTargets.back());
      Cur = newBlock();
      return;
    case StmtKind::Goto: {
      const auto *Gt = cast<GotoStmt>(S);
      if (Gt->Target)
        edge(Cur, labelBlock(Gt->Target));
      Cur = newBlock();
      return;
    }
    case StmtKind::Label: {
      const auto *L = cast<LabelStmt>(S);
      BlockId B = labelBlock(L);
      edge(Cur, B);
      Cur = B;
      buildStmt(L->Sub);
      return;
    }
    case StmtKind::Return:
      G.Blocks[Cur].Stmts.push_back(S);
      edge(Cur, G.Exit);
      Cur = newBlock();
      return;
    }
  }

  //===--- Sealing -------------------------------------------------------===//

  void seal() {
    for (const CfgBlock &B : G.Blocks)
      for (BlockId S : B.Succs)
        G.Blocks[S].Preds.push_back(B.Id);
    // Reverse post-order over reachable blocks (iterative DFS; succ
    // order is the AST order, so the result is deterministic).
    std::vector<uint8_t> State(G.Blocks.size(), 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<BlockId, size_t>> Stack;
    std::vector<BlockId> Post;
    Stack.emplace_back(G.Entry, 0);
    State[G.Entry] = 1;
    while (!Stack.empty()) {
      auto &[B, Next] = Stack.back();
      if (Next < G.Blocks[B].Succs.size()) {
        BlockId S = G.Blocks[B].Succs[Next++];
        if (!State[S]) {
          State[S] = 1;
          Stack.emplace_back(S, 0);
        }
      } else {
        State[B] = 2;
        Post.push_back(B);
        Stack.pop_back();
      }
    }
    G.Rpo.assign(Post.rbegin(), Post.rend());
  }
};

} // namespace cundef

Cfg Cfg::build(const FunctionDecl *F) { return CfgBuilder(F).run(); }

std::string Cfg::dump(const StringInterner &Interner) const {
  std::string Out = strFormat("cfg %s: blocks=%zu entry=B%u exit=B%u\n",
                              Interner.str(Fn->Name).c_str(), Blocks.size(),
                              Entry, Exit);
  for (const CfgBlock &B : Blocks) {
    std::string Line = strFormat("  B%u:", B.Id);
    if (B.Id == Exit) {
      Out += Line + " exit\n";
      continue;
    }
    if (!B.Stmts.empty())
      Line += strFormat(" stmts=%zu", B.Stmts.size());
    if (B.isSwitch()) {
      Line += " switch ->";
      for (size_t I = 0; I < B.Succs.size(); ++I) {
        const CaseStmt *C = B.SwitchCases[I];
        Line += C ? strFormat(" B%u(case %lld)", B.Succs[I],
                              static_cast<long long>(C->Value))
                  : strFormat(" B%u(default)", B.Succs[I]);
      }
    } else if (B.isConditional()) {
      Line += strFormat(" if -> B%u B%u", B.Succs[0], B.Succs[1]);
    } else if (!B.Succs.empty()) {
      Line += " ->";
      for (BlockId S : B.Succs)
        Line += strFormat(" B%u", S);
    }
    Out += Line + "\n";
  }
  return Out;
}
