//===- static/FlowChecker.cpp - Flow-sensitive static UB pass -------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "static/FlowChecker.h"

#include "static/Cfg.h"
#include "static/Dataflow.h"
#include "static/Domains.h"

using namespace cundef;

namespace {

/// Fixpoint + reporting replay for one domain. The replay walks the
/// reachable blocks in RPO from each block's settled entry state, so
/// every check sees the most precise invariant the analysis proved.
template <typename DomainT>
void runDomain(FlowContext &FC, const Cfg &G) {
  DomainT Dom(FC);
  DataflowResult<DomainT> R = runForwardDataflow(G, Dom);

  FC.setReporting(true);
  Dom.setWidening(false);
  for (BlockId B : G.rpo()) {
    if (!R.reached(B))
      continue;
    typename DomainT::State St = R.In[B];
    const CfgBlock &Blk = G.block(B);
    for (const Stmt *S : Blk.Stmts)
      Dom.transferStmt(S, St);
    if (Blk.Cond)
      Dom.transferCondEval(Blk.Cond, St);
  }
  FC.setReporting(false);
}

} // namespace

void FlowChecker::runFunction(const FunctionDecl *F) {
  FlowContext FC(Ctx, F);
  Cfg G = Cfg::build(F);

  runDomain<NullnessDomain>(FC, G);
  runDomain<InitDomain>(FC, G);
  runDomain<IntervalDomain>(FC, G);

  for (UbReport &R : FC.takeMust())
    Must.report(std::move(R));
  for (UbReport &R : FC.takeHints())
    Hints.report(std::move(R));
}

void FlowChecker::run() {
  for (const FunctionDecl *F : Ctx.TU.Functions)
    if (F->Body && !F->BuiltinId)
      runFunction(F);
}
