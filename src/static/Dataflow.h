//===- static/Dataflow.h - Forward dataflow to fixpoint ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic forward-dataflow engine the flow-sensitive domains
/// (static/Domains.h) share: round-robin sweeps over the CFG in reverse
/// post-order, joining edge states into block-entry states until a
/// fixpoint. A Domain supplies
///
///   using State = ...;                       // copyable abstract state
///   State boundary();                        // state at function entry
///   bool join(State &Into, const State &In); // lattice join, true if
///                                            // Into changed
///   void transferStmt(const Stmt *S, State &St);
///   void transferCondEval(const Expr *Cond, State &St);
///     // apply the side effects of *evaluating* a terminator condition
///     // (assignments and ++/-- are legal inside conditions); runs once
///     // per block, before any edge refinement
///   bool transferCond(const Expr *Cond, bool Taken, State &St);
///     // refine St along the (atomic) condition's Taken edge; false
///     // means the edge is infeasible under St (never propagated)
///   bool transferSwitchEdge(const Expr *Cond, const CaseStmt *Case,
///                           State &St);
///     // refine along one switch edge (Case == null: default edge);
///     // false means the edge is infeasible under St
///   void setWidening(bool On);
///     // joins may over-approximate to guarantee termination; flipped
///     // on after a fixed number of sweeps (infinite-height domains
///     // widen, finite ones ignore it)
///
/// Statement transfer convention: a ForStmt appearing in a block's
/// statement list stands for its increment expression only (the CFG
/// places it in the dedicated increment block); Decl / Expr / Return
/// statements mean themselves.
///
/// Determinism: sweeps visit blocks in RPO, edge joins happen in
/// successor order, and states live in per-block slots — the fixpoint
/// is a pure function of the CFG and the domain, never of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_STATIC_DATAFLOW_H
#define CUNDEF_STATIC_DATAFLOW_H

#include "static/Cfg.h"

#include <vector>

namespace cundef {

/// Per-block fixpoint states: the state at each block's entry, plus
/// which blocks were ever reached (In[b] is meaningful only when
/// Reached[b]; unreachable code is never analyzed, so it can never
/// produce a finding).
template <typename DomainT> struct DataflowResult {
  std::vector<typename DomainT::State> In;
  std::vector<uint8_t> Reached;

  bool reached(BlockId B) const { return Reached[B] != 0; }
};

/// Sweeps after which the domain is asked to widen its joins. Finite
/// domains converge well before this; the interval domain widens
/// growing bounds to top so every loop still terminates.
constexpr unsigned WideningSweep = 4;

/// Backstop on total sweeps. With widening on, every supplied domain
/// converges in a handful of sweeps; this bound only guards against a
/// non-monotone domain bug turning into an infinite loop.
constexpr unsigned MaxSweeps = 64;

template <typename DomainT>
DataflowResult<DomainT> runForwardDataflow(const Cfg &G, DomainT &Dom) {
  DataflowResult<DomainT> R;
  R.In.resize(G.size());
  R.Reached.assign(G.size(), 0);
  R.In[G.entry()] = Dom.boundary();
  R.Reached[G.entry()] = 1;

  bool Changed = true;
  for (unsigned Sweep = 0; Changed && Sweep < MaxSweeps; ++Sweep) {
    Dom.setWidening(Sweep >= WideningSweep);
    Changed = false;
    for (BlockId B : G.rpo()) {
      if (!R.Reached[B])
        continue;
      const CfgBlock &Blk = G.block(B);
      typename DomainT::State Out = R.In[B];
      for (const Stmt *S : Blk.Stmts)
        Dom.transferStmt(S, Out);
      if (Blk.Cond)
        Dom.transferCondEval(Blk.Cond, Out);
      if (Blk.isSwitch()) {
        for (size_t I = 0; I < Blk.Succs.size(); ++I) {
          typename DomainT::State EdgeSt = Out;
          if (Dom.transferSwitchEdge(Blk.Cond, Blk.SwitchCases[I], EdgeSt))
            Changed |= propagate(R, Dom, Blk.Succs[I], EdgeSt);
        }
      } else if (Blk.isConditional()) {
        typename DomainT::State TrueSt = Out;
        if (Dom.transferCond(Blk.Cond, /*Taken=*/true, TrueSt))
          Changed |= propagate(R, Dom, Blk.Succs[0], TrueSt);
        typename DomainT::State FalseSt = std::move(Out);
        if (Dom.transferCond(Blk.Cond, /*Taken=*/false, FalseSt))
          Changed |= propagate(R, Dom, Blk.Succs[1], FalseSt);
      } else {
        for (BlockId S : Blk.Succs)
          Changed |= propagate(R, Dom, S, Out);
      }
    }
  }
  return R;
}

template <typename DomainT>
bool propagate(DataflowResult<DomainT> &R, DomainT &Dom, BlockId To,
               const typename DomainT::State &St) {
  if (!R.Reached[To]) {
    R.Reached[To] = 1;
    R.In[To] = St;
    return true;
  }
  return Dom.join(R.In[To], St);
}

} // namespace cundef

#endif // CUNDEF_STATIC_DATAFLOW_H
