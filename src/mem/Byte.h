//===- mem/Byte.h - Symbolic memory bytes ----------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's symbolic memory representation (section 4.3):
///
///  * Pointers are sym(B)+O base/offset pairs, never raw integers, so
///    pointers into different objects are incomparable (4.3.1).
///  * A pointer stored to memory is split into subObject(p, i) fragment
///    bytes that can only be reassembled from the complete set (4.3.2).
///  * Uninitialized storage holds unknown(N) bytes that may be copied
///    (e.g. struct padding through memcpy) but not used as values
///    except through unsigned-character lvalues (4.3.3).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_MEM_BYTE_H
#define CUNDEF_MEM_BYTE_H

#include <cstdint>

namespace cundef {

/// A symbolic pointer value: sym(Base) + Offset. Base 0 with no integer
/// provenance is the null pointer. Pointers forged from integers keep
/// their raw value so the permissive (concrete) machine can still chase
/// them, while the strict machine treats them as invalid.
struct SymPointer {
  uint32_t Base = 0;  ///< object id; 0 when null or integer-forged
  int64_t Offset = 0; ///< byte offset within the object
  bool FromInteger = false;
  uint64_t RawInt = 0; ///< original integer for FromInteger pointers

  SymPointer() = default;
  SymPointer(uint32_t Base, int64_t Offset) : Base(Base), Offset(Offset) {}

  static SymPointer null() { return SymPointer(); }
  static SymPointer fromInteger(uint64_t Raw) {
    SymPointer P;
    P.FromInteger = true;
    P.RawInt = Raw;
    return P;
  }

  bool isNull() const { return Base == 0 && !FromInteger; }

  bool operator==(const SymPointer &Other) const {
    return Base == Other.Base && Offset == Other.Offset &&
           FromInteger == Other.FromInteger && RawInt == Other.RawInt;
  }
  bool operator!=(const SymPointer &Other) const { return !(*this == Other); }
};

/// One byte of symbolic memory.
struct Byte {
  enum class Kind : uint8_t {
    Unknown,  ///< unknown(8): indeterminate content
    Concrete, ///< an ordinary numeric byte
    PtrFrag,  ///< subObject(Ptr, FragIndex) of FragCount
  };

  Kind K = Kind::Unknown;
  uint8_t Value = 0;
  SymPointer Ptr;
  uint8_t FragIndex = 0;
  uint8_t FragCount = 0;

  static Byte unknown() { return Byte(); }
  static Byte concrete(uint8_t Value) {
    Byte B;
    B.K = Kind::Concrete;
    B.Value = Value;
    return B;
  }
  static Byte ptrFrag(SymPointer Ptr, uint8_t Index, uint8_t Count) {
    Byte B;
    B.K = Kind::PtrFrag;
    B.Ptr = Ptr;
    B.FragIndex = Index;
    B.FragCount = Count;
    return B;
  }

  bool isUnknown() const { return K == Kind::Unknown; }
  bool isConcrete() const { return K == Kind::Concrete; }
  bool isPtrFrag() const { return K == Kind::PtrFrag; }
};

} // namespace cundef

#endif // CUNDEF_MEM_BYTE_H
