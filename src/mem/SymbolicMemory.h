//===- mem/SymbolicMemory.h - The mem cell ---------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The configuration's mem cell: a map from symbolic base ids to memory
/// objects, exactly the paper's "memory is a map from base addresses to
/// blocks of bytes; each base address represents the memory of a single
/// object" (section 4.3.1). Objects keep a tombstone after their
/// lifetime ends so dangling uses can be named precisely.
///
/// Every object additionally carries a *concrete* address. The strict
/// machine never looks at it; the permissive machine (the substrate for
/// the Valgrind-/CheckPointer-style baselines) uses it to give
/// out-of-bounds and forged pointers the meaning they would have on
/// real hardware.
///
/// Objects are held behind shared pointers with copy-on-write
/// semantics: copying a SymbolicMemory (the evaluation-order search
/// forks configurations at choice points, paper section 2.5.2) shares
/// every object, and the first mutation through mutate()/writeByte()
/// after a copy clones just the touched object. Each object also caches
/// its content digest, so configuration fingerprints cost O(objects
/// touched since the last fingerprint) instead of O(total bytes).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_MEM_SYMBOLICMEMORY_H
#define CUNDEF_MEM_SYMBOLICMEMORY_H

#include "mem/Byte.h"
#include "support/Hash.h"
#include "support/StringInterner.h"
#include "types/Type.h"

#include <map>
#include <memory>
#include <vector>

namespace cundef {

enum class StorageKind : uint8_t {
  Global,
  StaticLocal,
  Auto,
  Heap,
  Literal,  ///< string literals (not writable)
  Function, ///< pseudo-objects giving functions addresses
};

/// Lifetime state of an object.
enum class ObjectState : uint8_t { Alive, Dead, Freed };

class FunctionDecl;

/// One memory object (the paper's obj(Len, ...)).
struct MemObject {
  uint32_t Id = 0;
  StorageKind Storage = StorageKind::Auto;
  ObjectState State = ObjectState::Alive;
  uint64_t Size = 0;
  QualType DeclTy;         ///< declared / effective type (may be null)
  Symbol Name = NoSymbol;  ///< for diagnostics
  uint64_t ConcreteAddr = 0;
  const FunctionDecl *Fn = nullptr; ///< for Function pseudo-objects
  std::vector<Byte> Bytes;

  bool isAlive() const { return State == ObjectState::Alive; }

  /// Cached content digest (a commutative sum over per-byte item hashes
  /// plus a metadata hash; see SymbolicMemory::hashInto). Valid only
  /// while DigestValid; mutate() clears it, writeByte() adjusts it by
  /// the touched byte's delta. Content-determined, so clones share it.
  mutable uint64_t Digest = 0;
  mutable bool DigestValid = false;
};

/// Result of a byte-level access.
enum class MemStatus : uint8_t {
  Ok,
  NoObject,    ///< base id was never allocated (or null)
  Dead,        ///< lifetime ended (scope exit)
  Freed,       ///< heap object already freed
  OutOfBounds, ///< offset outside [0, Size)
};

class SymbolicMemory {
public:
  SymbolicMemory() = default;

  /// Allocates a fresh object of \p Size bytes, all unknown().
  uint32_t create(StorageKind Storage, uint64_t Size, QualType DeclTy,
                  Symbol Name);

  /// Registers a pseudo-object for a function so it has an address.
  uint32_t createFunction(const FunctionDecl *Fn, Symbol Name);

  /// Ends the lifetime of an automatic object (scope exit).
  void markDead(uint32_t Id);
  /// Marks a heap object freed.
  void markFreed(uint32_t Id);

  /// Read-only lookup. Null when the id was never allocated.
  const MemObject *find(uint32_t Id) const;

  /// Mutable lookup with copy-on-write: if the object is shared with a
  /// forked configuration it is cloned first, so the writer never
  /// disturbs the other copy. Invalidates the object's cached digest
  /// (callers may rewrite bytes arbitrarily through the pointer).
  MemObject *mutate(uint32_t Id);

  /// Checked byte access. Out parameters untouched on failure.
  MemStatus readByte(uint32_t Id, int64_t Offset, Byte &Out) const;
  MemStatus writeByte(uint32_t Id, int64_t Offset, const Byte &In);
  /// Status an access *would* have, without performing it.
  MemStatus probe(uint32_t Id, int64_t Offset, uint64_t Len) const;

  /// Maps a concrete address to (object id, offset); used only by the
  /// permissive machine. Returns 0 when the address hits no object
  /// (a "segmentation fault" on the modelled hardware). Dead/freed
  /// objects still resolve -- exactly the danger being modelled.
  uint32_t findByAddress(uint64_t Addr, int64_t &OffsetOut) const;

  /// All objects, for tools (leak reporting, statistics).
  const std::map<uint32_t, std::shared_ptr<MemObject>> &objects() const {
    return Objects;
  }

  /// Number of live allocations of the given storage kind.
  unsigned countAlive(StorageKind Storage) const;

  /// Mixes this cell's state into a configuration fingerprint (used by
  /// the evaluation-order search to deduplicate symmetric
  /// interleavings). Dead and freed objects contribute only their id,
  /// state and size: the strict machine can never legally read their
  /// bytes again, and their concrete addresses depend on allocation
  /// order, so hashing their content would make states that symmetric
  /// interleavings reach in common look distinct.
  ///
  /// Incremental: per-object digests are cached and only recomputed for
  /// objects touched through mutate() since the last call; writeByte
  /// maintains them by delta. \p Full recomputes everything from
  /// scratch, bypassing the caches — the reference the incremental path
  /// is tested against.
  void hashInto(Fnv1a &H, bool Full = false) const;

private:
  uint64_t assignAddress(StorageKind Storage, uint64_t Size);
  /// The object's digest, recomputed from content (ignoring the cache).
  static uint64_t computeDigest(const MemObject &Obj);
  /// Clones \p Slot's object if it is shared with a forked copy.
  static MemObject *owned(std::shared_ptr<MemObject> &Slot);

  std::map<uint32_t, std::shared_ptr<MemObject>> Objects;
  uint32_t NextId = 1;
  // Concrete address cursors. The stack grows down, everything else up.
  uint64_t GlobalCursor = 0x00010000;
  uint64_t FunctionCursor = 0x01000000;
  uint64_t LiteralCursor = 0x08000000;
  uint64_t HeapCursor = 0x20000000;
  uint64_t StackCursor = 0x7fff0000;
};

} // namespace cundef

#endif // CUNDEF_MEM_SYMBOLICMEMORY_H
