//===- mem/SymbolicMemory.cpp - The mem cell --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "mem/SymbolicMemory.h"

#include <cassert>

using namespace cundef;

uint64_t SymbolicMemory::assignAddress(StorageKind Storage, uint64_t Size) {
  auto AlignUp = [](uint64_t Value, uint64_t Align) {
    return (Value + Align - 1) / Align * Align;
  };
  switch (Storage) {
  case StorageKind::Global:
  case StorageKind::StaticLocal: {
    uint64_t Addr = AlignUp(GlobalCursor, 8);
    GlobalCursor = Addr + Size;
    return Addr;
  }
  case StorageKind::Function: {
    uint64_t Addr = AlignUp(FunctionCursor, 16);
    FunctionCursor = Addr + (Size ? Size : 1);
    return Addr;
  }
  case StorageKind::Literal: {
    uint64_t Addr = LiteralCursor;
    LiteralCursor = Addr + Size;
    return Addr;
  }
  case StorageKind::Heap: {
    uint64_t Addr = AlignUp(HeapCursor, 16);
    HeapCursor = Addr + (Size ? Size : 1);
    return Addr;
  }
  case StorageKind::Auto: {
    // The stack grows downward; keep objects contiguous so that the
    // permissive machine reproduces real stack-smashing behavior.
    StackCursor -= Size;
    StackCursor &= ~uint64_t(7); // 8-byte alignment
    return StackCursor;
  }
  }
  return 0;
}

uint32_t SymbolicMemory::create(StorageKind Storage, uint64_t Size,
                                QualType DeclTy, Symbol Name) {
  uint32_t Id = NextId++;
  MemObject Obj;
  Obj.Id = Id;
  Obj.Storage = Storage;
  Obj.Size = Size;
  Obj.DeclTy = DeclTy;
  Obj.Name = Name;
  Obj.ConcreteAddr = assignAddress(Storage, Size);
  Obj.Bytes.assign(Size, Byte::unknown());
  Objects.emplace(Id, std::move(Obj));
  return Id;
}

uint32_t SymbolicMemory::createFunction(const FunctionDecl *Fn, Symbol Name) {
  uint32_t Id = create(StorageKind::Function, 1, QualType(), Name);
  Objects.at(Id).Fn = Fn;
  return Id;
}

void SymbolicMemory::markDead(uint32_t Id) {
  MemObject *Obj = find(Id);
  assert(Obj && "killing unknown object");
  Obj->State = ObjectState::Dead;
}

void SymbolicMemory::markFreed(uint32_t Id) {
  MemObject *Obj = find(Id);
  assert(Obj && "freeing unknown object");
  Obj->State = ObjectState::Freed;
}

MemObject *SymbolicMemory::find(uint32_t Id) {
  auto It = Objects.find(Id);
  return It == Objects.end() ? nullptr : &It->second;
}

const MemObject *SymbolicMemory::find(uint32_t Id) const {
  auto It = Objects.find(Id);
  return It == Objects.end() ? nullptr : &It->second;
}

MemStatus SymbolicMemory::probe(uint32_t Id, int64_t Offset,
                                uint64_t Len) const {
  const MemObject *Obj = find(Id);
  if (!Obj)
    return MemStatus::NoObject;
  if (Obj->State == ObjectState::Freed)
    return MemStatus::Freed;
  if (Obj->State == ObjectState::Dead)
    return MemStatus::Dead;
  if (Offset < 0 || static_cast<uint64_t>(Offset) + Len > Obj->Size)
    return MemStatus::OutOfBounds;
  return MemStatus::Ok;
}

MemStatus SymbolicMemory::readByte(uint32_t Id, int64_t Offset,
                                   Byte &Out) const {
  MemStatus Status = probe(Id, Offset, 1);
  if (Status != MemStatus::Ok)
    return Status;
  Out = find(Id)->Bytes[static_cast<size_t>(Offset)];
  return MemStatus::Ok;
}

MemStatus SymbolicMemory::writeByte(uint32_t Id, int64_t Offset,
                                    const Byte &In) {
  MemStatus Status = probe(Id, Offset, 1);
  if (Status != MemStatus::Ok)
    return Status;
  find(Id)->Bytes[static_cast<size_t>(Offset)] = In;
  return MemStatus::Ok;
}

uint32_t SymbolicMemory::findByAddress(uint64_t Addr,
                                       int64_t &OffsetOut) const {
  // Linear scan is acceptable: the permissive machine is used on small
  // generated tests, and correctness of the model matters more here
  // than lookup speed.
  for (const auto &[Id, Obj] : Objects) {
    if (Addr >= Obj.ConcreteAddr && Addr < Obj.ConcreteAddr + Obj.Size) {
      OffsetOut = static_cast<int64_t>(Addr - Obj.ConcreteAddr);
      return Id;
    }
  }
  return 0;
}

unsigned SymbolicMemory::countAlive(StorageKind Storage) const {
  unsigned Count = 0;
  for (const auto &[Id, Obj] : Objects)
    if (Obj.Storage == Storage && Obj.isAlive())
      ++Count;
  return Count;
}

static void hashByte(Fnv1a &H, const Byte &B) {
  H.u8(static_cast<uint8_t>(B.K));
  switch (B.K) {
  case Byte::Kind::Unknown:
    break;
  case Byte::Kind::Concrete:
    H.u8(B.Value);
    break;
  case Byte::Kind::PtrFrag:
    H.u32(B.Ptr.Base);
    H.i64(B.Ptr.Offset);
    H.u8(B.Ptr.FromInteger);
    H.u64(B.Ptr.RawInt);
    H.u8(B.FragIndex);
    H.u8(B.FragCount);
    break;
  }
}

void SymbolicMemory::hashInto(Fnv1a &H) const {
  H.u32(NextId);
  H.u64(GlobalCursor);
  H.u64(FunctionCursor);
  H.u64(LiteralCursor);
  H.u64(HeapCursor);
  H.u64(StackCursor);
  H.u64(Objects.size());
  for (const auto &[Id, Obj] : Objects) {
    H.u32(Id);
    H.u8(static_cast<uint8_t>(Obj.Storage));
    H.u8(static_cast<uint8_t>(Obj.State));
    H.u64(Obj.Size);
    if (!Obj.isAlive())
      continue; // see the declaration: tombstone content is unreadable
    H.ptr(Obj.DeclTy.Ty);
    H.u8(Obj.DeclTy.Quals);
    H.u32(Obj.Name);
    H.u64(Obj.ConcreteAddr);
    H.ptr(Obj.Fn);
    for (const Byte &B : Obj.Bytes)
      hashByte(H, B);
  }
}
