//===- mem/SymbolicMemory.cpp - The mem cell --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "mem/SymbolicMemory.h"

#include <cassert>

using namespace cundef;

namespace {

/// Per-byte item hash for the commutative object digest: position and
/// content are mixed to full avalanche so that summing items cannot
/// cancel structured patterns (e.g. swapping two equal bytes, or the
/// same byte at two offsets).
uint64_t byteItemHash(uint32_t Id, uint64_t Offset, const Byte &B) {
  uint64_t Content = static_cast<uint64_t>(B.K);
  switch (B.K) {
  case Byte::Kind::Unknown:
    break;
  case Byte::Kind::Concrete:
    Content ^= static_cast<uint64_t>(B.Value) << 8;
    break;
  case Byte::Kind::PtrFrag:
    Content ^= mix64((static_cast<uint64_t>(B.Ptr.Base) << 32) ^
                     static_cast<uint64_t>(B.Ptr.Offset)) ^
               (static_cast<uint64_t>(B.Ptr.FromInteger) << 1) ^
               mix64(B.Ptr.RawInt ^ 0x9e3779b97f4a7c15ull) ^
               (static_cast<uint64_t>(B.FragIndex) << 16) ^
               (static_cast<uint64_t>(B.FragCount) << 24);
    break;
  }
  return mix64((static_cast<uint64_t>(Id) * 0x9e3779b97f4a7c15ull) ^
               (Offset + 1) ^ (Content << 20) ^ mix64(Content));
}

/// Metadata contribution of an object (everything but its bytes).
uint64_t metaHash(const MemObject &Obj) {
  Fnv1a H;
  H.u32(Obj.Id);
  H.u8(static_cast<uint8_t>(Obj.Storage));
  H.u8(static_cast<uint8_t>(Obj.State));
  H.u64(Obj.Size);
  if (Obj.isAlive()) {
    H.ptr(Obj.DeclTy.Ty);
    H.u8(Obj.DeclTy.Quals);
    H.u32(Obj.Name);
    H.u64(Obj.ConcreteAddr);
    H.ptr(Obj.Fn);
  }
  return mix64(H.digest());
}

} // namespace

uint64_t SymbolicMemory::assignAddress(StorageKind Storage, uint64_t Size) {
  auto AlignUp = [](uint64_t Value, uint64_t Align) {
    return (Value + Align - 1) / Align * Align;
  };
  switch (Storage) {
  case StorageKind::Global:
  case StorageKind::StaticLocal: {
    uint64_t Addr = AlignUp(GlobalCursor, 8);
    GlobalCursor = Addr + Size;
    return Addr;
  }
  case StorageKind::Function: {
    uint64_t Addr = AlignUp(FunctionCursor, 16);
    FunctionCursor = Addr + (Size ? Size : 1);
    return Addr;
  }
  case StorageKind::Literal: {
    uint64_t Addr = LiteralCursor;
    LiteralCursor = Addr + Size;
    return Addr;
  }
  case StorageKind::Heap: {
    uint64_t Addr = AlignUp(HeapCursor, 16);
    HeapCursor = Addr + (Size ? Size : 1);
    return Addr;
  }
  case StorageKind::Auto: {
    // The stack grows downward; keep objects contiguous so that the
    // permissive machine reproduces real stack-smashing behavior.
    StackCursor -= Size;
    StackCursor &= ~uint64_t(7); // 8-byte alignment
    return StackCursor;
  }
  }
  return 0;
}

uint32_t SymbolicMemory::create(StorageKind Storage, uint64_t Size,
                                QualType DeclTy, Symbol Name) {
  uint32_t Id = NextId++;
  auto Obj = std::make_shared<MemObject>();
  Obj->Id = Id;
  Obj->Storage = Storage;
  Obj->Size = Size;
  Obj->DeclTy = DeclTy;
  Obj->Name = Name;
  Obj->ConcreteAddr = assignAddress(Storage, Size);
  Obj->Bytes.assign(Size, Byte::unknown());
  Objects.emplace(Id, std::move(Obj));
  return Id;
}

uint32_t SymbolicMemory::createFunction(const FunctionDecl *Fn, Symbol Name) {
  uint32_t Id = create(StorageKind::Function, 1, QualType(), Name);
  mutate(Id)->Fn = Fn;
  return Id;
}

MemObject *SymbolicMemory::owned(std::shared_ptr<MemObject> &Slot) {
  if (Slot.use_count() > 1)
    Slot = std::make_shared<MemObject>(*Slot); // copy-on-write clone
  return Slot.get();
}

void SymbolicMemory::markDead(uint32_t Id) {
  MemObject *Obj = mutate(Id);
  assert(Obj && "killing unknown object");
  Obj->State = ObjectState::Dead;
}

void SymbolicMemory::markFreed(uint32_t Id) {
  MemObject *Obj = mutate(Id);
  assert(Obj && "freeing unknown object");
  Obj->State = ObjectState::Freed;
}

const MemObject *SymbolicMemory::find(uint32_t Id) const {
  auto It = Objects.find(Id);
  return It == Objects.end() ? nullptr : It->second.get();
}

MemObject *SymbolicMemory::mutate(uint32_t Id) {
  auto It = Objects.find(Id);
  if (It == Objects.end())
    return nullptr;
  MemObject *Obj = owned(It->second);
  Obj->DigestValid = false;
  return Obj;
}

MemStatus SymbolicMemory::probe(uint32_t Id, int64_t Offset,
                                uint64_t Len) const {
  const MemObject *Obj = find(Id);
  if (!Obj)
    return MemStatus::NoObject;
  if (Obj->State == ObjectState::Freed)
    return MemStatus::Freed;
  if (Obj->State == ObjectState::Dead)
    return MemStatus::Dead;
  if (Offset < 0 || static_cast<uint64_t>(Offset) + Len > Obj->Size)
    return MemStatus::OutOfBounds;
  return MemStatus::Ok;
}

MemStatus SymbolicMemory::readByte(uint32_t Id, int64_t Offset,
                                   Byte &Out) const {
  MemStatus Status = probe(Id, Offset, 1);
  if (Status != MemStatus::Ok)
    return Status;
  Out = find(Id)->Bytes[static_cast<size_t>(Offset)];
  return MemStatus::Ok;
}

MemStatus SymbolicMemory::writeByte(uint32_t Id, int64_t Offset,
                                    const Byte &In) {
  MemStatus Status = probe(Id, Offset, 1);
  if (Status != MemStatus::Ok)
    return Status;
  MemObject *Obj = owned(Objects.find(Id)->second);
  Byte &Slot = Obj->Bytes[static_cast<size_t>(Offset)];
  // Keep the cached digest current by delta instead of invalidating:
  // the digest is a plain sum over per-byte item hashes, so one write
  // is one subtraction and one addition.
  if (Obj->DigestValid)
    Obj->Digest += byteItemHash(Id, static_cast<uint64_t>(Offset), In) -
                   byteItemHash(Id, static_cast<uint64_t>(Offset), Slot);
  Slot = In;
  return MemStatus::Ok;
}

uint32_t SymbolicMemory::findByAddress(uint64_t Addr,
                                       int64_t &OffsetOut) const {
  // Linear scan is acceptable: the permissive machine is used on small
  // generated tests, and correctness of the model matters more here
  // than lookup speed.
  for (const auto &[Id, Obj] : Objects) {
    if (Addr >= Obj->ConcreteAddr && Addr < Obj->ConcreteAddr + Obj->Size) {
      OffsetOut = static_cast<int64_t>(Addr - Obj->ConcreteAddr);
      return Id;
    }
  }
  return 0;
}

unsigned SymbolicMemory::countAlive(StorageKind Storage) const {
  unsigned Count = 0;
  for (const auto &[Id, Obj] : Objects)
    if (Obj->Storage == Storage && Obj->isAlive())
      ++Count;
  return Count;
}

uint64_t SymbolicMemory::computeDigest(const MemObject &Obj) {
  uint64_t Sum = metaHash(Obj);
  if (!Obj.isAlive())
    return Sum; // see the declaration: tombstone content is unreadable
  for (uint64_t I = 0; I < Obj.Bytes.size(); ++I)
    Sum += byteItemHash(Obj.Id, I, Obj.Bytes[I]);
  return Sum;
}

void SymbolicMemory::hashInto(Fnv1a &H, bool Full) const {
  H.u32(NextId);
  H.u64(GlobalCursor);
  H.u64(FunctionCursor);
  H.u64(LiteralCursor);
  H.u64(HeapCursor);
  H.u64(StackCursor);
  H.u64(Objects.size());
  // Objects are independent, so their digests combine commutatively;
  // each per-object digest is cached and reused until the object is
  // mutated. The Full path recomputes everything and must agree — the
  // equivalence is what makes the cache safe (tests/test_search_fork).
  uint64_t Sum = 0;
  for (const auto &[Id, Obj] : Objects) {
    if (Full) {
      Sum += computeDigest(*Obj);
      continue;
    }
    if (!Obj->DigestValid) {
      Obj->Digest = computeDigest(*Obj);
      Obj->DigestValid = true;
    }
    Sum += Obj->Digest;
  }
  H.u64(Sum);
}
