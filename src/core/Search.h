//===- core/Search.h - Search over evaluation orders ------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whether a program is undefined can depend on the unspecified
/// evaluation order (paper section 2.5.2: `(10/d) + setDenom(0)` is
/// miscompilable because *some* order divides by zero); "any tool
/// seeking to identify all undefined behaviors must search all possible
/// evaluation strategies". This driver enumerates order decisions by
/// deterministic replay: each run pins a prefix of choices, the
/// machine's decision trace reports each choice point's arity, and the
/// driver backtracks depth-first until undefinedness is found or the
/// budget is exhausted.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_SEARCH_H
#define CUNDEF_CORE_SEARCH_H

#include "core/Machine.h"

namespace cundef {

struct SearchResult {
  unsigned RunsExplored = 0;
  bool UbFound = false;
  /// Reports of the first undefined run (empty when none found).
  std::vector<UbReport> Reports;
  /// Status of the last run (Completed when no UB was ever found).
  RunStatus LastStatus = RunStatus::Completed;
  /// The decision vector that exposed the undefinedness.
  std::vector<uint8_t> Witness;
};

/// Depth-first search over evaluation orders.
class OrderSearch {
public:
  OrderSearch(const AstContext &Ctx, MachineOptions BaseOpts,
              unsigned MaxRuns = 64)
      : Ctx(Ctx), BaseOpts(BaseOpts), MaxRuns(MaxRuns) {}

  SearchResult run();

private:
  const AstContext &Ctx;
  MachineOptions BaseOpts;
  unsigned MaxRuns;
};

} // namespace cundef

#endif // CUNDEF_CORE_SEARCH_H
