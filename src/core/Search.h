//===- core/Search.h - Parallel search over evaluation orders ---*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whether a program is undefined can depend on the unspecified
/// evaluation order (paper section 2.5.2: `(10/d) + setDenom(0)` is
/// miscompilable because *some* order divides by zero); "any tool
/// seeking to identify all undefined behaviors must search all possible
/// evaluation strategies". This driver enumerates order decisions in
/// parallel waves:
///
///  * The frontier is a wave of decision prefixes. Workers claim
///    entries from a shared index; children (one per flippable choice
///    point beyond the prefix) form the next wave.
///  * A run starts from a **snapshot** its parent captured at the
///    flipped choice point — the paper's "clone the configuration at
///    choice points" — so only the new suffix executes. When no
///    snapshot exists (memory budget, sync-call choice points, the
///    Random policy, forced-replay mode) the run falls back to
///    replaying its pinned prefix from main(). Both start modes are
///    step-for-step identical; witnesses never depend on which was
///    used.
///  * A visited-set keyed by (decision depth, configuration
///    fingerprint) recognizes symmetric interleavings: when a run
///    reaches a state some earlier prefix already reached at the same
///    depth, the run is cancelled mid-flight and its redundant subtree
///    is never spawned, so commuting choice points cost linear instead
///    of exponential work. Fingerprints are maintained incrementally
///    (O(state touched), core/Fingerprint.cpp).
///  * A cancellation token stops all in-flight machines once
///    undefinedness is found by a prefix that is canonically (lex)
///    smaller than anything still outstanding.
///
/// The reported witness is deterministic: independent of the number of
/// worker threads, of thread scheduling, and of the snapshot/replay
/// start mode, because waves are processed as sorted batches, per-run
/// outcomes depend only on (prefix, committed visited-set), the
/// visited-set is committed at wave barriers, and ties are broken
/// canonically. See docs/SEARCH.md.
///
/// Scheduling is layered (SearchOptions::Sched): the wave engine above
/// lives in Search.cpp as the verified reference; the default
/// work-stealing scheduler (core/Scheduler.h) executes runs
/// speculatively on per-worker deques and commits them through a
/// canonical wavefront that reproduces the wave engine's outputs
/// byte-for-byte without its barriers.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_SEARCH_H
#define CUNDEF_CORE_SEARCH_H

#include "core/Machine.h"

namespace cundef {

/// Visited-set key. Depth is mixed in because the chooser consumes
/// replay decisions positionally, making depth part of the machine's
/// effective state. Depth is avalanched through splitmix64 *before*
/// combining: the previous bare `fp ^ depth*phi` aliased structured
/// (depth, fp) pairs (every pair on a phi-stride line collapsed to one
/// key — a mix applied only after the xor would keep those collisions,
/// since equal inputs stay equal through any bijection). A regression
/// test pins the adversarial families down.
inline uint64_t searchVisitKey(size_t Depth, uint64_t Fp) {
  return mix64(Fp ^ mix64(static_cast<uint64_t>(Depth) *
                              0x9e3779b97f4a7c15ull +
                          1));
}

/// Which scheduling layer drives the search. Both produce byte-identical
/// committed outputs (verdict, witness, reports, runs, dedup hits); they
/// differ only in wall-clock shape.
enum class SchedKind : uint8_t {
  /// Wave-synchronous: each frontier generation barriers on its slowest
  /// machine (the PR-1/PR-2 engine, kept as the verified reference the
  /// stealing scheduler is tested against).
  Wave,
  /// Work-stealing: per-worker deques, speculative execution, canonical
  /// commit wavefront (core/Scheduler.h). The default.
  Stealing,
};

struct SearchOptions {
  /// Replay budget: at most this many machine runs (including runs the
  /// dedup cancels mid-flight).
  unsigned MaxRuns = 64;
  /// Scheduling layer (--search-sched). Results never depend on this.
  SchedKind Sched = SchedKind::Stealing;
  /// Worker threads. 1 = run in-place on the calling thread; 0 =
  /// auto-detect std::thread::hardware_concurrency(). The verdict and
  /// witness do not depend on this; only wall-clock does.
  unsigned Jobs = 1;
  /// Deduplicate symmetric interleavings through configuration
  /// fingerprints. Off = pure prefix enumeration (the exhaustive
  /// baseline bench_search compares against). Ignored under
  /// EvalOrderKind::Random: replay cannot reproduce the policy's
  /// shuffle stream, so the dedup invariant does not hold there (see
  /// Search.cpp).
  bool Dedup = true;
  /// Fork children from configuration snapshots captured at their
  /// choice points instead of replaying prefixes from main(). Off =
  /// forced-replay mode (the PR-1 engine; the equivalence suite and
  /// bench_search compare against it). Ignored under Random (the
  /// chooser's RNG stream position would diverge between fork and
  /// replay) and under RuleStyle::Declarative (its monitors keep state
  /// outside the configuration).
  bool UseSnapshots = true;
  /// Capacity of the LRU snapshot cache (core/Scheduler.h). Every
  /// capture is admitted; going over capacity evicts the *oldest*
  /// pending snapshot, whose child falls back to prefix replay (the old
  /// scheme refused new captures instead, so deep programs thrashed
  /// against a budget full of stale entries). 0 = pure replay.
  /// Snapshots are copy-on-write-cheap but not free: each pins the
  /// unshared parts of one configuration.
  unsigned SnapshotBudget = 1024;
  /// Fingerprint via Configuration::fingerprintFull() (full-state
  /// rehash at every choice point) instead of the incremental digests.
  /// Only bench_search uses this, as the PR-1 cost model baseline.
  bool FullRehash = false;
  /// Record every run's decision trace and fingerprint stream in
  /// SearchResult::Runs (testing: the fork-vs-replay equivalence
  /// suite). Deterministic at Jobs=1; with more jobs, runs cancelled by
  /// a concurrent witness may record partial streams.
  bool CollectRuns = false;
};

/// Stable FNV-1a digest over the *outcome-affecting* SearchOptions
/// fields. MaxRuns, Dedup, and UseSnapshots change what the search
/// explores; Sched never changes committed results, but a cached
/// outcome replays its per-program counters (steals, waves) verbatim,
/// so serving a wave outcome to a steal request would report the wrong
/// shape — it stays in the key. Jobs, SnapshotBudget, FullRehash, and
/// CollectRuns shape only wall-clock and test instrumentation
/// (committed outcomes are independent of them by the scheduler's
/// determinism contract), so they are deliberately excluded: a 4-job
/// and an 8-job search of the same program share one cache entry.
inline uint64_t searchOptionsFingerprint(const SearchOptions &S) {
  Fnv1a H;
  H.u32(S.MaxRuns);
  H.u8(static_cast<uint8_t>(S.Sched));
  H.u8(S.Dedup);
  H.u8(S.UseSnapshots);
  return mix64(H.digest());
}

/// One explored run, recorded when SearchOptions::CollectRuns is set.
struct SearchRunRecord {
  std::vector<uint8_t> Pinned;
  /// The full decision trace (decision, arity) the run recorded.
  std::vector<std::pair<uint8_t, uint8_t>> Trace;
  /// (depth, fingerprint) observed at flippable choice points at or
  /// beyond the divergence.
  std::vector<std::pair<uint64_t, uint64_t>> FpStream;
  RunStatus Status = RunStatus::Completed;
  bool DedupAborted = false;
  /// Whether the run started from a snapshot (perf detail — excluded
  /// from equivalence comparisons, which assert everything above is
  /// identical across start modes).
  bool Forked = false;
};

struct SearchResult {
  unsigned RunsExplored = 0;
  /// Runs cancelled mid-flight because their configuration fingerprint
  /// was already visited (a subset of RunsExplored).
  unsigned DedupHits = 0;
  /// Whole subtrees dropped at a wave barrier because two entries of
  /// one wave diverged into the same state (in-wave twins). These never
  /// became runs.
  unsigned SubtreesPruned = 0;
  /// Runs that started from a forked snapshot (the rest replayed their
  /// prefix from main()). Wall-clock detail: under parallel execution
  /// the fork/replay split depends on snapshot-cache timing.
  unsigned ForkedRuns = 0;
  /// Frontier waves (stealing scheduler: committed generations).
  unsigned Waves = 0;
  /// Pending snapshots of this search evicted by the LRU cache; each
  /// eviction turned one fork into a prefix replay.
  unsigned SnapshotEvictions = 0;
  /// Tasks of this program taken from another worker's deque (stealing
  /// scheduler only; wall-clock detail).
  unsigned Steals = 0;
  /// Peak frontier size: the stealing scheduler's maximum queued-task
  /// count, or the wave engine's largest wave.
  unsigned PeakFrontier = 0;
  /// True when the search ran out of budget with unexplored subtrees
  /// still on the frontier: a clean verdict is then *not* exhaustive.
  /// Callers must surface this (kcc --show-witness prints it); the
  /// previous behavior of silently resizing the frontier made partial
  /// results look like full enumerations.
  bool FrontierTruncated = false;
  /// Subtrees dropped unexplored on budget edges (frontier entries cut
  /// by MaxRuns plus children left when the budget ran out).
  unsigned DroppedSubtrees = 0;
  bool UbFound = false;
  /// Reports of the first undefined run (empty when none found).
  std::vector<UbReport> Reports;
  /// Status of the last run (Completed when no UB was ever found).
  RunStatus LastStatus = RunStatus::Completed;
  /// Outcome of the root run (the empty prefix = the policy default
  /// order): its status, program output, and exit code. The batched
  /// driver reads these instead of executing the default order a second
  /// time outside the search.
  RunStatus RootStatus = RunStatus::Internal;
  std::string RootOutput;
  int RootExitCode = 0;
  /// The decision prefix that exposed the undefinedness: pin it with
  /// Machine::setReplayDecisions to reproduce the run. Empty when the
  /// default order is already undefined.
  std::vector<uint8_t> Witness;
  /// Per-run records (only when SearchOptions::CollectRuns).
  std::vector<SearchRunRecord> Runs;
};

/// Parallel deduplicated search over evaluation orders.
class OrderSearch {
public:
  OrderSearch(const AstContext &Ctx, MachineOptions BaseOpts,
              unsigned MaxRuns = 64)
      : Ctx(Ctx), BaseOpts(BaseOpts) {
    Opts.MaxRuns = MaxRuns;
  }
  OrderSearch(const AstContext &Ctx, MachineOptions BaseOpts,
              SearchOptions Opts)
      : Ctx(Ctx), BaseOpts(BaseOpts), Opts(Opts) {}

  SearchResult run();

private:
  const AstContext &Ctx;
  MachineOptions BaseOpts;
  SearchOptions Opts;
};

} // namespace cundef

#endif // CUNDEF_CORE_SEARCH_H
