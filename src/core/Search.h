//===- core/Search.h - Parallel search over evaluation orders ---*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whether a program is undefined can depend on the unspecified
/// evaluation order (paper section 2.5.2: `(10/d) + setDenom(0)` is
/// miscompilable because *some* order divides by zero); "any tool
/// seeking to identify all undefined behaviors must search all possible
/// evaluation strategies". This driver enumerates order decisions by
/// deterministic replay of decision-vector prefixes, in parallel:
///
///  * The frontier is a wave of prefixes. Workers claim prefixes from a
///    shared index, each replaying a private Machine; children (one per
///    flippable choice point beyond the prefix) form the next wave.
///  * A visited-set keyed by (decision depth, configuration
///    fingerprint) recognizes symmetric interleavings: when a replay
///    reaches a state some earlier prefix already reached at the same
///    depth, the run is cancelled mid-flight and its redundant subtree
///    is never spawned, so commuting choice points cost linear instead
///    of exponential work.
///  * A cancellation token stops all in-flight machines once
///    undefinedness is found by a prefix that is canonically (lex)
///    smaller than anything still outstanding.
///
/// The reported witness is deterministic: independent of the number of
/// worker threads and of thread scheduling, because waves are processed
/// as sorted batches, per-run outcomes depend only on (prefix,
/// committed visited-set), the visited-set is committed at wave
/// barriers, and ties are broken canonically. See docs/SEARCH.md.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_SEARCH_H
#define CUNDEF_CORE_SEARCH_H

#include "core/Machine.h"

namespace cundef {

struct SearchOptions {
  /// Replay budget: at most this many machine runs (including runs the
  /// dedup cancels mid-flight).
  unsigned MaxRuns = 64;
  /// Worker threads. 1 = run in-place on the calling thread. The
  /// verdict and witness do not depend on this; only wall-clock does.
  unsigned Jobs = 1;
  /// Deduplicate symmetric interleavings through configuration
  /// fingerprints. Off = pure prefix enumeration (the exhaustive
  /// baseline bench_search compares against). Ignored under
  /// EvalOrderKind::Random: replay cannot reproduce the policy's
  /// shuffle stream, so the dedup invariant does not hold there (see
  /// Search.cpp).
  bool Dedup = true;
};

struct SearchResult {
  unsigned RunsExplored = 0;
  /// Runs cancelled mid-flight because their configuration fingerprint
  /// was already visited (a subset of RunsExplored).
  unsigned DedupHits = 0;
  /// Whole subtrees dropped at a wave barrier because two entries of
  /// one wave diverged into the same state (in-wave twins). These never
  /// became runs.
  unsigned SubtreesPruned = 0;
  /// Frontier waves processed.
  unsigned Waves = 0;
  bool UbFound = false;
  /// Reports of the first undefined run (empty when none found).
  std::vector<UbReport> Reports;
  /// Status of the last run (Completed when no UB was ever found).
  RunStatus LastStatus = RunStatus::Completed;
  /// The decision prefix that exposed the undefinedness: pin it with
  /// Machine::setReplayDecisions to reproduce the run. Empty when the
  /// default order is already undefined.
  std::vector<uint8_t> Witness;
};

/// Parallel deduplicated search over evaluation orders.
class OrderSearch {
public:
  OrderSearch(const AstContext &Ctx, MachineOptions BaseOpts,
              unsigned MaxRuns = 64)
      : Ctx(Ctx), BaseOpts(BaseOpts) {
    Opts.MaxRuns = MaxRuns;
  }
  OrderSearch(const AstContext &Ctx, MachineOptions BaseOpts,
              SearchOptions Opts)
      : Ctx(Ctx), BaseOpts(BaseOpts), Opts(Opts) {}

  SearchResult run();

private:
  const AstContext &Ctx;
  MachineOptions BaseOpts;
  SearchOptions Opts;
};

} // namespace cundef

#endif // CUNDEF_CORE_SEARCH_H
