//===- core/Scheduler.h - Work-stealing search scheduling -------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling layer under the evaluation-order search. The wave
/// engine (core/Search.cpp) barriers every frontier generation on its
/// slowest machine; this layer removes the barrier by splitting the
/// search into two planes:
///
///  * **Execution plane** — per-worker deques with work stealing. A
///    worker pops its own deque oldest-first and steals oldest-first
///    from siblings when empty; runs execute *speculatively*, in
///    whatever order keeps every core busy, recording their full
///    decision trace and fingerprint stream.
///  * **Commit plane** — a per-program wavefront that finalizes runs in
///    canonical (generation, lex-prefix) order: exactly the order the
///    wave engine's barrier processed them. Finalization derives each
///    run's *effective* outcome (where the committed visited-set would
///    have cancelled it, which children it spawns, whether its
///    undefinedness verdict stands) from the recorded stream — a pure
///    function of (prefix, visits committed by earlier generations), so
///    every committed output is byte-identical to the wave engine's no
///    matter how steals interleave. Speculation can only waste
///    wall-clock, never change a result (docs/SEARCH.md has the full
///    argument).
///
/// The layer also owns the two shared structures both engines use:
///
///  * SnapshotCache — an LRU cache of choice-point snapshots replacing
///    the old admission-only SnapshotBudget: new captures are always
///    admitted and the *oldest* pending snapshot is evicted instead,
///    so deep programs stop thrashing against a full budget. A child
///    whose snapshot was evicted falls back to prefix replay; evictions
///    are counted in SearchResult::SnapshotEvictions.
///  * A sharded-lock visited-set (per program) tagging each committed
///    (depth, fingerprint) key with the generation that published it,
///    so speculative runs may consult it mid-flight: a key published by
///    an earlier generation is always a sound cancellation, and missing
///    one only defers the cancellation to commit time.
///
/// One scheduler can host **many programs** (the batched driver submits
/// N translation units into a single worker pool); results aggregate
/// per program id and are deterministic per program.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_SCHEDULER_H
#define CUNDEF_CORE_SCHEDULER_H

#include "core/Search.h"

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cundef {

/// Content address of a choice-point snapshot for **cross-program
/// sharing**. Two machines reach step-identical states exactly when
/// they execute the same artifact (the AstContext pointer — artifacts
/// are immutable and shared, so pointer identity IS content identity
/// within one engine) under fingerprint-equal MachineOptions through
/// the same decision trace; the machine is deterministic in those
/// three inputs. ConfFp (the incremental configuration fingerprint at
/// the choice point) is redundant given the other three — it rides
/// along as a checksum so a hash collision in MachineFp or TraceDigest
/// cannot silently serve a wrong-state snapshot.
struct SnapshotShareKey {
  const void *Ast = nullptr;
  uint64_t MachineFp = 0;
  uint64_t TraceDigest = 0;
  uint64_t ConfFp = 0;

  bool operator==(const SnapshotShareKey &O) const {
    return Ast == O.Ast && MachineFp == O.MachineFp &&
           TraceDigest == O.TraceDigest && ConfFp == O.ConfFp;
  }
};

/// LRU cache of choice-point snapshots, shared by every run of a
/// scheduler (and by the wave engine). Thread-safe. Capacity bounds the
/// number of *pending* snapshots (captured, not yet taken by the child
/// that will fork from them); inserting beyond capacity evicts a
/// pending entry, whose child then replays its prefix from main()
/// instead — the eviction is counted, never an error.
///
/// Internally the capacity is split across per-worker **shards** (one
/// mutex + LRU list each) so 16-64 workers capturing snapshots stop
/// serializing on one global lock. Small capacities (< 64) keep a
/// single shard, preserving the original global-LRU behavior exactly.
/// An insert goes to the caller's home shard (the \p ShardHint, worker
/// index); when that shard is full it first *steals a free slot* from a
/// sibling shard (so total capacity is never wasted on an imbalanced
/// pool), and only evicts when every shard is full. Eviction is
/// **program-affine**: the victim is the oldest pending entry of the
/// *same program* as the incoming snapshot when one exists (one
/// deep program then thrashes against its own snapshots instead of
/// evicting every other program's), else the home shard's oldest.
class SnapshotCache {
public:
  explicit SnapshotCache(unsigned Capacity);

  /// Aggregated shard counters (monotonic).
  struct Counters {
    uint64_t Inserts = 0;    ///< admitted captures
    uint64_t Takes = 0;      ///< take() calls with a nonzero id
    uint64_t Hits = 0;       ///< takes that found the entry (child forked)
    uint64_t SlotSteals = 0; ///< inserts placed in a sibling shard
    uint64_t Evictions = 0;  ///< pending entries evicted
    uint64_t SharedHits = 0; ///< forks served from another program's donor
  };

  /// Admits \p Snap and returns its handle (0 when Capacity is 0: the
  /// snapshot is dropped immediately, which keeps the "budget 0 means
  /// pure replay" contract). May evict a pending entry; the eviction is
  /// charged to that entry's \p EvictCounter. \p EvictCounter doubles
  /// as the inserting program's identity for affinity decisions.
  /// \p ShardHint selects the home shard (callers pass their worker
  /// index; any value is valid). \p Share, when given, additionally
  /// registers the entry as a **donor** under that content address
  /// (first donor per key wins): donors are served by *cloning* — by
  /// take() and takeShared() alike — and stay resident until dropped
  /// or evicted, so fingerprint-equal machine states captured by other
  /// programs elide their own captures and fork from this one.
  uint64_t insert(MachineSnapshot Snap, std::atomic<unsigned> *EvictCounter,
                  unsigned ShardHint = 0,
                  const SnapshotShareKey *Share = nullptr);

  /// Removes and returns the snapshot for \p Id; null when the entry
  /// was evicted (or \p Id is 0). A share-registered entry is instead
  /// *cloned* and left resident (its program's own child consumes it
  /// this way too — the donor must survive to serve other programs;
  /// drop()/eviction/the reclaim sweep retire it).
  std::unique_ptr<MachineSnapshot> take(uint64_t Id);

  /// True when a donor is registered under \p Key — the capture-elision
  /// probe (a racy snapshot: the donor may be gone by takeShared time,
  /// in which case the eliding child falls back to prefix replay, which
  /// is always sound).
  bool hasShared(const SnapshotShareKey &Key) const;

  /// Clones the donor registered under \p Key (counted in
  /// Counters::SharedHits); null when none is resident. The donor stays
  /// cached, its recency refreshed.
  std::unique_ptr<MachineSnapshot> takeShared(const SnapshotShareKey &Key);

  /// Discards \p Id without counting an eviction (the child's subtree
  /// was pruned or dropped, so the snapshot can never be used).
  /// Dropping an evicted, already-taken, or already-dropped id is a
  /// no-op.
  void drop(uint64_t Id);

  unsigned evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  size_t pending() const;
  unsigned shards() const { return NumShards; }
  Counters counters() const;

private:
  struct Entry {
    std::unique_ptr<MachineSnapshot> Snap;
    std::list<uint64_t>::iterator LruIt;
    /// Eviction accounting target; also the owning program's identity
    /// (one counter per program) for affinity-aware victim selection.
    std::atomic<unsigned> *EvictCounter = nullptr;
    /// Registered as a donor in the share index (served by cloning).
    bool Shared = false;
    /// The donor's *own* child already forked from it (take() cloned
    /// it). Only other programs' elisions can still want it, and they
    /// fall back to prefix replay — so evicting a served donor loses
    /// no fork: eviction prefers these and does not count them.
    bool Served = false;
    /// The index key, kept for deregistration on removal.
    SnapshotShareKey SKey;
  };

  /// One shard: its own lock, map, LRU list, and slice of the
  /// capacity. Cacheline-aligned so neighboring shard locks never
  /// false-share.
  struct alignas(64) Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, Entry> Entries;
    std::list<uint64_t> Lru; ///< front = oldest = next eviction victim
    uint64_t NextSeq = 1;
    unsigned Capacity = 0;
    uint64_t Inserts = 0;
    uint64_t Takes = 0;
    uint64_t Hits = 0;
    uint64_t SlotSteals = 0;
  };

  /// Ids encode their shard in the low bits so take/drop touch exactly
  /// one shard lock.
  static constexpr unsigned kShardBits = 5; ///< up to 32 shards
  static unsigned shardCountFor(unsigned Capacity);
  Shard &shardOf(uint64_t Id) {
    return ShardVec[static_cast<size_t>(Id) & (NumShards - 1)];
  }
  /// Inserts into \p S (caller holds S.Mu; S must have a free slot).
  uint64_t insertInto(Shard &S, unsigned ShardIdx, MachineSnapshot &&Snap,
                      std::atomic<unsigned> *EvictCounter);

  //===--- Share index (cross-program donors) ----------------------------===//
  //
  // Key -> donor id, sharded separately from the entries. Lock order:
  // an entry-shard lock may take an index-shard lock (removal paths
  // deregister in place); the reverse never nests — takeShared and
  // registerShared release the index lock before touching an entry
  // shard, validating the entry afterwards (a stale index row is a
  // miss, cleaned up lazily).

  struct ShareKeyHash {
    size_t operator()(const SnapshotShareKey &K) const {
      uint64_t H = reinterpret_cast<uintptr_t>(K.Ast);
      H = mix64(H ^ (K.MachineFp * 0x9e3779b97f4a7c15ull));
      H = mix64(H ^ (K.TraceDigest * 0x9e3779b97f4a7c15ull));
      H = mix64(H ^ (K.ConfFp * 0x9e3779b97f4a7c15ull));
      return static_cast<size_t>(H);
    }
  };
  struct alignas(64) IndexShard {
    mutable std::mutex Mu;
    std::unordered_map<SnapshotShareKey, uint64_t, ShareKeyHash> Map;
  };
  static constexpr unsigned kIndexShards = 8;
  IndexShard &indexShardFor(const SnapshotShareKey &K) const {
    return IndexVec[ShareKeyHash{}(K) >> 56 & (kIndexShards - 1)];
  }
  /// Publishes \p Id as the donor for \p Key (first wins), then marks
  /// the entry Shared. Takes the index lock and the entry lock
  /// strictly in sequence, never nested.
  void registerShared(const SnapshotShareKey &Key, uint64_t Id);
  /// Removes the Key->Id row if it still names \p Id. Safe to call
  /// under an entry-shard lock (index locks are leaf-most).
  void deregisterShared(const SnapshotShareKey &Key, uint64_t Id);

  const unsigned Capacity;
  const unsigned NumShards;
  std::vector<Shard> ShardVec;
  mutable std::vector<IndexShard> IndexVec;
  std::atomic<unsigned> Evictions{0};
  std::atomic<uint64_t> SharedHits{0};
};

/// Scheduler-wide counters (aggregated across all submitted programs;
/// per-program copies land in each SearchResult).
struct SchedulerStats {
  unsigned Programs = 0;
  unsigned Jobs = 0;
  /// Tasks taken from another worker's deque.
  uint64_t Steals = 0;
  /// Pending snapshots evicted by the LRU cache.
  uint64_t SnapshotEvictions = 0;
  /// Maximum simultaneously queued tasks across all deques.
  uint64_t PeakFrontier = 0;
  /// Machine runs actually executed, including speculative runs whose
  /// effective outcome was a dedup cancellation (the wave engine never
  /// executes those past the cancellation point; the surplus is the
  /// price of barrier-free scheduling, bounded by the run budget) and
  /// re-executions forced by a provisional-publication rollback.
  uint64_t RunsExecuted = 0;
  /// Sum of per-program dedup hits (committed, deterministic).
  uint64_t DedupHits = 0;
  /// Runs finalized by the commit wavefront (deterministic; equal to
  /// the wave engine's started-run count). RunsExecuted - RunsCommitted
  /// is the speculative surplus; the waste ratio is that surplus over
  /// RunsCommitted.
  uint64_t RunsCommitted = 0;
  /// Speculative runs stopped early by a *provisional* visited entry —
  /// one claimed by an in-flight run of an earlier generation, not yet
  /// committed. Each hit is execution the pre-provisional scheduler
  /// would have wasted re-exploring a claimed subtree.
  uint64_t ProvisionalHits = 0;
  /// Provisionally-stopped runs whose claim did not survive commit
  /// (no committed entry justified the stop), re-executed against the
  /// committed set. Determinism's rollback cost; typically tiny.
  uint64_t ProvisionalRequeues = 0;
  /// Peak of (runs executed - runs committed): how far speculation ran
  /// ahead of the commit wavefront.
  uint64_t CommitLagPeak = 0;
  /// Snapshot-cache shard count and aggregated shard counters.
  unsigned SnapshotShards = 0;
  uint64_t SnapshotTakes = 0;      ///< child fork attempts
  uint64_t SnapshotHits = 0;       ///< forks served (entry still cached)
  uint64_t SnapshotSlotSteals = 0; ///< inserts placed via a sibling shard
  /// Forks served by *cloning another program's donor snapshot* —
  /// cross-program sharing (Config::SnapshotSharing): the consuming
  /// program elided its own capture because a fingerprint-identical
  /// machine state was already cached. Wall-clock only; committed
  /// results never depend on it (a shared fork is step-identical to
  /// the elided capture's fork, which is step-identical to a prefix
  /// replay).
  uint64_t SnapshotSharedHits = 0;
};

/// Memory-observability counters: how much per-program state the
/// scheduler currently retains. After drain() + reclaimFinished() on an
/// idle service pool, RetainedPrograms, PendingSnapshots, and
/// QueuedTasks are all zero (ProgramSlots is the monotonic index space,
/// which reclamation nulls but never shrinks) — the reclaim contract
/// tests/test_catalog_coverage.cpp pins down over a 200+-program batch.
struct SchedulerMemoryStats {
  size_t ProgramSlots = 0;     ///< slots in the program index (monotonic)
  size_t RetainedPrograms = 0; ///< non-reclaimed program states (arenas)
  size_t PendingSnapshots = 0; ///< live entries in the snapshot cache
  size_t QueuedTasks = 0;      ///< tasks sitting in worker deques
};

/// The work-stealing search scheduler. Two operating modes share one
/// implementation:
///
///  * **One-shot** (the PR-3 interface): submit one or more programs,
///    call runAll() once, read per-program SearchResults. Workers are
///    spawned for the call and drained with it.
///  * **Service** (persistent): call start() once to spawn the worker
///    pool, then submit() programs at any time, from any thread; each
///    program completes asynchronously (setProgramDoneCallback /
///    waitProgram), the pool idles between submissions, and drain() /
///    stop() end the session. This is the pool an AnalysisEngine keeps
///    alive across batches, so consecutive submissions amortize worker
///    startup and share one snapshot cache.
///
/// In both modes every committed per-program output (verdict, witness,
/// reports, runs, dedup hits, pruned subtrees, truncation) is
/// deterministic — byte-identical to the wave engine's — regardless of
/// job count, steal interleaving, or how submissions interleave with
/// running programs: all cross-program sharing (worker deques, the
/// snapshot cache) affects wall-clock only.
class SearchScheduler {
public:
  struct Config {
    /// Requested worker threads; 1 = run on the calling thread, 0 =
    /// auto-detect std::thread::hardware_concurrency().
    unsigned Jobs = 1;
    /// Cap the pool at hardware_concurrency() (default). The search is
    /// CPU-bound, so oversubscribed workers only add context switches
    /// — worse, they outrun the commit wavefront and execute runs the
    /// visited-set would have cancelled. Tests disable the clamp to
    /// force cross-thread interleaving on small CI machines; results
    /// are worker-count-independent either way.
    bool ClampJobsToHardware = true;
    /// LRU capacity of the shared snapshot cache.
    unsigned SnapshotBudget = 1024;
    /// Cross-program snapshot sharing: machine states whose
    /// SnapshotShareKey collides across programs (same artifact, equal
    /// MachineOptions fingerprint, identical decision trace) share one
    /// cached snapshot — later programs elide the capture and fork
    /// from a clone of the first program's donor entry. Applied
    /// per-program only where snapshots and dedup are already on.
    /// Sound by machine determinism; changes wall-clock only (the
    /// AnalysisEngine turns it on; one-shot/unit schedulers default
    /// off).
    bool SnapshotSharing = false;
  };

  explicit SearchScheduler(Config Cfg);
  ~SearchScheduler();

  SearchScheduler(const SearchScheduler &) = delete;
  SearchScheduler &operator=(const SearchScheduler &) = delete;

  /// Registers one program's evaluation-order search. \p RootGated
  /// reproduces the driver's single-program contract: the root (policy
  /// default) run executes first, and the order search only fans out
  /// when it completed cleanly — otherwise the program finishes with
  /// the root's outcome and no truncation is reported. A per-program
  /// SOpts.SnapshotBudget of 0 disables forking for that program; any
  /// nonzero capacity is supplied by Config.SnapshotBudget, since the
  /// cache is shared across programs. Returns the program id
  /// (submission order; also the result index).
  size_t submit(const AstContext &Ast, MachineOptions MOpts,
                SearchOptions SOpts, bool RootGated = false);

  /// Runs every submitted program to completion on the shared worker
  /// pool. Call once, after all submissions (one-shot mode; mutually
  /// exclusive with start()).
  void runAll();

  /// The finished result for \p Program (valid after runAll(), or —
  /// in service mode — once the program completed).
  SearchResult takeResult(size_t Program);

  /// Aggregate pool counters. In one-shot mode, valid after runAll();
  /// in service mode, a live monotonic snapshot (callers diff two
  /// snapshots for per-batch numbers).
  SchedulerStats stats() const;

  //===--- Service mode --------------------------------------------------===//

  /// Spawns the persistent worker pool (idempotent). After start(),
  /// submit() is allowed at any time from any thread and programs run
  /// as they arrive; runAll() must not be used.
  void start();
  bool started() const;

  /// Invoked once per program, with its id, after the program completed
  /// (its SearchResult is final and takeResult is safe). Called from a
  /// worker thread with no scheduler locks held, so the callback may
  /// call back into the scheduler — including submit(). Set before
  /// start().
  void setProgramDoneCallback(std::function<void(size_t)> Fn);

  /// Blocks until \p Program completed (service mode).
  void waitProgram(size_t Program);

  /// Blocks until every submitted program completed (service mode).
  /// The pool stays alive, idle, ready for the next submission.
  void drain();

  /// Reclaims the per-program search state (task arenas, visited sets)
  /// of completed programs whose result was taken. Only acts when the
  /// pool is fully idle — every submitted program done and no run in
  /// flight — so it is safe to call whenever, and an engine calls it
  /// after drain(): a long-lived service then holds memory proportional
  /// to the largest batch, not to its whole history. Returns true when
  /// the pool was idle and reclamation ran (callers holding resources
  /// the pool references — e.g. ASTs — may free theirs then too).
  bool reclaimFinished();

  /// Live snapshot of the retained-state counters (see
  /// SchedulerMemoryStats for the post-reclaim contract).
  SchedulerMemoryStats memoryStats() const;

  /// Stops and joins the worker pool. Graceful shutdown is
  /// drain()-then-stop(); stopping with unfinished programs abandons
  /// their queued work (their results never become valid).
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace cundef

#endif // CUNDEF_CORE_SCHEDULER_H
