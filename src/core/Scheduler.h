//===- core/Scheduler.h - Work-stealing search scheduling -------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling layer under the evaluation-order search. The wave
/// engine (core/Search.cpp) barriers every frontier generation on its
/// slowest machine; this layer removes the barrier by splitting the
/// search into two planes:
///
///  * **Execution plane** — per-worker deques with work stealing. A
///    worker pops its own deque oldest-first and steals oldest-first
///    from siblings when empty; runs execute *speculatively*, in
///    whatever order keeps every core busy, recording their full
///    decision trace and fingerprint stream.
///  * **Commit plane** — a per-program wavefront that finalizes runs in
///    canonical (generation, lex-prefix) order: exactly the order the
///    wave engine's barrier processed them. Finalization derives each
///    run's *effective* outcome (where the committed visited-set would
///    have cancelled it, which children it spawns, whether its
///    undefinedness verdict stands) from the recorded stream — a pure
///    function of (prefix, visits committed by earlier generations), so
///    every committed output is byte-identical to the wave engine's no
///    matter how steals interleave. Speculation can only waste
///    wall-clock, never change a result (docs/SEARCH.md has the full
///    argument).
///
/// The layer also owns the two shared structures both engines use:
///
///  * SnapshotCache — an LRU cache of choice-point snapshots replacing
///    the old admission-only SnapshotBudget: new captures are always
///    admitted and the *oldest* pending snapshot is evicted instead,
///    so deep programs stop thrashing against a full budget. A child
///    whose snapshot was evicted falls back to prefix replay; evictions
///    are counted in SearchResult::SnapshotEvictions.
///  * A sharded-lock visited-set (per program) tagging each committed
///    (depth, fingerprint) key with the generation that published it,
///    so speculative runs may consult it mid-flight: a key published by
///    an earlier generation is always a sound cancellation, and missing
///    one only defers the cancellation to commit time.
///
/// One scheduler can host **many programs** (the batched driver submits
/// N translation units into a single worker pool); results aggregate
/// per program id and are deterministic per program.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_SCHEDULER_H
#define CUNDEF_CORE_SCHEDULER_H

#include "core/Search.h"

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cundef {

/// LRU cache of choice-point snapshots, shared by every run of a
/// scheduler (and by the wave engine). Thread-safe. Capacity bounds the
/// number of *pending* snapshots (captured, not yet taken by the child
/// that will fork from them); inserting beyond capacity evicts a
/// pending entry, whose child then replays its prefix from main()
/// instead — the eviction is counted, never an error.
///
/// Internally the capacity is split across per-worker **shards** (one
/// mutex + LRU list each) so 16-64 workers capturing snapshots stop
/// serializing on one global lock. Small capacities (< 64) keep a
/// single shard, preserving the original global-LRU behavior exactly.
/// An insert goes to the caller's home shard (the \p ShardHint, worker
/// index); when that shard is full it first *steals a free slot* from a
/// sibling shard (so total capacity is never wasted on an imbalanced
/// pool), and only evicts when every shard is full. Eviction is
/// **program-affine**: the victim is the oldest pending entry of the
/// *same program* as the incoming snapshot when one exists (one
/// deep program then thrashes against its own snapshots instead of
/// evicting every other program's), else the home shard's oldest.
class SnapshotCache {
public:
  explicit SnapshotCache(unsigned Capacity);

  /// Aggregated shard counters (monotonic).
  struct Counters {
    uint64_t Inserts = 0;    ///< admitted captures
    uint64_t Takes = 0;      ///< take() calls with a nonzero id
    uint64_t Hits = 0;       ///< takes that found the entry (child forked)
    uint64_t SlotSteals = 0; ///< inserts placed in a sibling shard
    uint64_t Evictions = 0;  ///< pending entries evicted
  };

  /// Admits \p Snap and returns its handle (0 when Capacity is 0: the
  /// snapshot is dropped immediately, which keeps the "budget 0 means
  /// pure replay" contract). May evict a pending entry; the eviction is
  /// charged to that entry's \p EvictCounter. \p EvictCounter doubles
  /// as the inserting program's identity for affinity decisions.
  /// \p ShardHint selects the home shard (callers pass their worker
  /// index; any value is valid).
  uint64_t insert(MachineSnapshot Snap, std::atomic<unsigned> *EvictCounter,
                  unsigned ShardHint = 0);

  /// Removes and returns the snapshot for \p Id; null when the entry
  /// was evicted (or \p Id is 0).
  std::unique_ptr<MachineSnapshot> take(uint64_t Id);

  /// Discards \p Id without counting an eviction (the child's subtree
  /// was pruned or dropped, so the snapshot can never be used).
  /// Dropping an evicted, already-taken, or already-dropped id is a
  /// no-op.
  void drop(uint64_t Id);

  unsigned evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  size_t pending() const;
  unsigned shards() const { return NumShards; }
  Counters counters() const;

private:
  struct Entry {
    std::unique_ptr<MachineSnapshot> Snap;
    std::list<uint64_t>::iterator LruIt;
    /// Eviction accounting target; also the owning program's identity
    /// (one counter per program) for affinity-aware victim selection.
    std::atomic<unsigned> *EvictCounter = nullptr;
  };

  /// One shard: its own lock, map, LRU list, and slice of the
  /// capacity. Cacheline-aligned so neighboring shard locks never
  /// false-share.
  struct alignas(64) Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, Entry> Entries;
    std::list<uint64_t> Lru; ///< front = oldest = next eviction victim
    uint64_t NextSeq = 1;
    unsigned Capacity = 0;
    uint64_t Inserts = 0;
    uint64_t Takes = 0;
    uint64_t Hits = 0;
    uint64_t SlotSteals = 0;
  };

  /// Ids encode their shard in the low bits so take/drop touch exactly
  /// one shard lock.
  static constexpr unsigned kShardBits = 5; ///< up to 32 shards
  static unsigned shardCountFor(unsigned Capacity);
  Shard &shardOf(uint64_t Id) {
    return ShardVec[static_cast<size_t>(Id) & (NumShards - 1)];
  }
  /// Inserts into \p S (caller holds S.Mu; S must have a free slot).
  uint64_t insertInto(Shard &S, unsigned ShardIdx, MachineSnapshot &&Snap,
                      std::atomic<unsigned> *EvictCounter);

  const unsigned Capacity;
  const unsigned NumShards;
  std::vector<Shard> ShardVec;
  std::atomic<unsigned> Evictions{0};
};

/// Scheduler-wide counters (aggregated across all submitted programs;
/// per-program copies land in each SearchResult).
struct SchedulerStats {
  unsigned Programs = 0;
  unsigned Jobs = 0;
  /// Tasks taken from another worker's deque.
  uint64_t Steals = 0;
  /// Pending snapshots evicted by the LRU cache.
  uint64_t SnapshotEvictions = 0;
  /// Maximum simultaneously queued tasks across all deques.
  uint64_t PeakFrontier = 0;
  /// Machine runs actually executed, including speculative runs whose
  /// effective outcome was a dedup cancellation (the wave engine never
  /// executes those past the cancellation point; the surplus is the
  /// price of barrier-free scheduling, bounded by the run budget) and
  /// re-executions forced by a provisional-publication rollback.
  uint64_t RunsExecuted = 0;
  /// Sum of per-program dedup hits (committed, deterministic).
  uint64_t DedupHits = 0;
  /// Runs finalized by the commit wavefront (deterministic; equal to
  /// the wave engine's started-run count). RunsExecuted - RunsCommitted
  /// is the speculative surplus; the waste ratio is that surplus over
  /// RunsCommitted.
  uint64_t RunsCommitted = 0;
  /// Speculative runs stopped early by a *provisional* visited entry —
  /// one claimed by an in-flight run of an earlier generation, not yet
  /// committed. Each hit is execution the pre-provisional scheduler
  /// would have wasted re-exploring a claimed subtree.
  uint64_t ProvisionalHits = 0;
  /// Provisionally-stopped runs whose claim did not survive commit
  /// (no committed entry justified the stop), re-executed against the
  /// committed set. Determinism's rollback cost; typically tiny.
  uint64_t ProvisionalRequeues = 0;
  /// Peak of (runs executed - runs committed): how far speculation ran
  /// ahead of the commit wavefront.
  uint64_t CommitLagPeak = 0;
  /// Snapshot-cache shard count and aggregated shard counters.
  unsigned SnapshotShards = 0;
  uint64_t SnapshotTakes = 0;      ///< child fork attempts
  uint64_t SnapshotHits = 0;       ///< forks served (entry still cached)
  uint64_t SnapshotSlotSteals = 0; ///< inserts placed via a sibling shard
};

/// Memory-observability counters: how much per-program state the
/// scheduler currently retains. After drain() + reclaimFinished() on an
/// idle service pool, RetainedPrograms, PendingSnapshots, and
/// QueuedTasks are all zero (ProgramSlots is the monotonic index space,
/// which reclamation nulls but never shrinks) — the reclaim contract
/// tests/test_catalog_coverage.cpp pins down over a 200+-program batch.
struct SchedulerMemoryStats {
  size_t ProgramSlots = 0;     ///< slots in the program index (monotonic)
  size_t RetainedPrograms = 0; ///< non-reclaimed program states (arenas)
  size_t PendingSnapshots = 0; ///< live entries in the snapshot cache
  size_t QueuedTasks = 0;      ///< tasks sitting in worker deques
};

/// The work-stealing search scheduler. Two operating modes share one
/// implementation:
///
///  * **One-shot** (the PR-3 interface): submit one or more programs,
///    call runAll() once, read per-program SearchResults. Workers are
///    spawned for the call and drained with it.
///  * **Service** (persistent): call start() once to spawn the worker
///    pool, then submit() programs at any time, from any thread; each
///    program completes asynchronously (setProgramDoneCallback /
///    waitProgram), the pool idles between submissions, and drain() /
///    stop() end the session. This is the pool an AnalysisEngine keeps
///    alive across batches, so consecutive submissions amortize worker
///    startup and share one snapshot cache.
///
/// In both modes every committed per-program output (verdict, witness,
/// reports, runs, dedup hits, pruned subtrees, truncation) is
/// deterministic — byte-identical to the wave engine's — regardless of
/// job count, steal interleaving, or how submissions interleave with
/// running programs: all cross-program sharing (worker deques, the
/// snapshot cache) affects wall-clock only.
class SearchScheduler {
public:
  struct Config {
    /// Requested worker threads; 1 = run on the calling thread, 0 =
    /// auto-detect std::thread::hardware_concurrency().
    unsigned Jobs = 1;
    /// Cap the pool at hardware_concurrency() (default). The search is
    /// CPU-bound, so oversubscribed workers only add context switches
    /// — worse, they outrun the commit wavefront and execute runs the
    /// visited-set would have cancelled. Tests disable the clamp to
    /// force cross-thread interleaving on small CI machines; results
    /// are worker-count-independent either way.
    bool ClampJobsToHardware = true;
    /// LRU capacity of the shared snapshot cache.
    unsigned SnapshotBudget = 1024;
  };

  explicit SearchScheduler(Config Cfg);
  ~SearchScheduler();

  SearchScheduler(const SearchScheduler &) = delete;
  SearchScheduler &operator=(const SearchScheduler &) = delete;

  /// Registers one program's evaluation-order search. \p RootGated
  /// reproduces the driver's single-program contract: the root (policy
  /// default) run executes first, and the order search only fans out
  /// when it completed cleanly — otherwise the program finishes with
  /// the root's outcome and no truncation is reported. A per-program
  /// SOpts.SnapshotBudget of 0 disables forking for that program; any
  /// nonzero capacity is supplied by Config.SnapshotBudget, since the
  /// cache is shared across programs. Returns the program id
  /// (submission order; also the result index).
  size_t submit(const AstContext &Ast, MachineOptions MOpts,
                SearchOptions SOpts, bool RootGated = false);

  /// Runs every submitted program to completion on the shared worker
  /// pool. Call once, after all submissions (one-shot mode; mutually
  /// exclusive with start()).
  void runAll();

  /// The finished result for \p Program (valid after runAll(), or —
  /// in service mode — once the program completed).
  SearchResult takeResult(size_t Program);

  /// Aggregate pool counters. In one-shot mode, valid after runAll();
  /// in service mode, a live monotonic snapshot (callers diff two
  /// snapshots for per-batch numbers).
  SchedulerStats stats() const;

  //===--- Service mode --------------------------------------------------===//

  /// Spawns the persistent worker pool (idempotent). After start(),
  /// submit() is allowed at any time from any thread and programs run
  /// as they arrive; runAll() must not be used.
  void start();
  bool started() const;

  /// Invoked once per program, with its id, after the program completed
  /// (its SearchResult is final and takeResult is safe). Called from a
  /// worker thread with no scheduler locks held, so the callback may
  /// call back into the scheduler — including submit(). Set before
  /// start().
  void setProgramDoneCallback(std::function<void(size_t)> Fn);

  /// Blocks until \p Program completed (service mode).
  void waitProgram(size_t Program);

  /// Blocks until every submitted program completed (service mode).
  /// The pool stays alive, idle, ready for the next submission.
  void drain();

  /// Reclaims the per-program search state (task arenas, visited sets)
  /// of completed programs whose result was taken. Only acts when the
  /// pool is fully idle — every submitted program done and no run in
  /// flight — so it is safe to call whenever, and an engine calls it
  /// after drain(): a long-lived service then holds memory proportional
  /// to the largest batch, not to its whole history. Returns true when
  /// the pool was idle and reclamation ran (callers holding resources
  /// the pool references — e.g. ASTs — may free theirs then too).
  bool reclaimFinished();

  /// Live snapshot of the retained-state counters (see
  /// SchedulerMemoryStats for the post-reclaim contract).
  SchedulerMemoryStats memoryStats() const;

  /// Stops and joins the worker pool. Graceful shutdown is
  /// drain()-then-stop(); stopping with unfinished programs abandons
  /// their queued work (their results never become valid).
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace cundef

#endif // CUNDEF_CORE_SCHEDULER_H
