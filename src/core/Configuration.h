//===- core/Configuration.h - The C configuration --------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine state, organized as the paper's configuration of labeled
/// cells (Figure 1):
///
///   < <K>k  <Map>genv  <Set>locsWrittenTo  <Set>notWritable  <Map>mem
///     < <Map>env ... >control  <List>callStack ... >T
///
/// The whole configuration is a value type: search over unspecified
/// evaluation orders clones it at choice points (paper section 2.5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_CONFIGURATION_H
#define CUNDEF_CORE_CONFIGURATION_H

#include "core/KItem.h"
#include "mem/SymbolicMemory.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cundef {

/// A byte location (base, offset): the elements of the locsWrittenTo
/// and notWritable cells.
using ByteLoc = std::pair<uint32_t, int64_t>;

/// One activation record: the env cell of a control context plus the
/// bookkeeping needed to end parameter lifetimes.
struct Frame {
  const FunctionDecl *Fn = nullptr;
  /// env: declaration -> object id.
  std::map<uint32_t, uint32_t> Env;
  std::vector<uint32_t> ParamObjects;
  /// Variadic tail of the active call (used by printf-style builtins).
  std::vector<Value> VarArgs;
  SourceLoc CallLoc;
};

/// Why the machine stopped.
enum class RunStatus : uint8_t {
  Running,
  Completed,  ///< main returned or exit() was called
  UbDetected, ///< a strict rule got stuck / reported undefinedness
  Fault,      ///< the permissive machine hit a hardware fault (SEGV)
  StepLimit,  ///< ran out of fuel (possibly non-terminating program)
  Internal,   ///< the machine could not proceed (an interpreter bug)
  Cancelled,  ///< stopped from outside (search dedup or cancellation)
};

/// The full configuration.
struct Configuration {
  // --- <k> and its value stack ---------------------------------------
  std::vector<KItem> K;
  std::vector<Value> Values;

  // --- <genv> ----------------------------------------------------------
  std::map<uint32_t, uint32_t> GlobalEnv; ///< DeclId -> object id

  // --- <mem> -----------------------------------------------------------
  SymbolicMemory Mem;

  // --- <locsWrittenTo> / <notWritable> (paper section 4.2) -------------
  std::set<ByteLoc> LocsWrittenTo;
  std::set<ByteLoc> NotWritable;

  // --- <callStack> + <control> -----------------------------------------
  std::vector<Frame> CallStack;

  // --- Bookkeeping cells ------------------------------------------------
  /// Function pseudo-objects (function designators' addresses).
  std::map<const FunctionDecl *, uint32_t> FuncObjects;
  std::map<uint32_t, const FunctionDecl *> FuncByObject;
  /// String literal objects, cached per occurrence.
  std::map<const Expr *, uint32_t> LiteralObjects;
  /// Heap storage's effective types, per (object, offset) region --
  /// "the effective type of the object for that access ... becomes the
  /// effective type" (C11 6.5p6). Declared objects use their layout.
  std::map<ByteLoc, const Type *> HeapEffectiveTy;

  // --- Program-visible results ------------------------------------------
  std::string Output; ///< bytes written by printf and friends
  int ExitCode = 0;
  RunStatus Status = RunStatus::Running;
  uint64_t Steps = 0;
  /// rand()'s deterministic state (part of the configuration so that
  /// search replays are reproducible).
  uint32_t RandState = 12345;

  Frame &frame() { return CallStack.back(); }
  const Frame &frame() const { return CallStack.back(); }

  /// Looks up a variable's object: innermost frame env, then genv.
  /// Returns 0 when unbound.
  uint32_t lookup(uint32_t DeclId) const {
    if (!CallStack.empty()) {
      auto It = CallStack.back().Env.find(DeclId);
      if (It != CallStack.back().Env.end())
        return It->second;
    }
    auto It = GlobalEnv.find(DeclId);
    return It == GlobalEnv.end() ? 0 : It->second;
  }

  /// Renders the cell structure (used by bench_fig1_config to reproduce
  /// Figure 1).
  std::string describeCells() const;

  /// A 64-bit digest of everything that can influence the machine's
  /// future behavior. The evaluation-order search keys its visited-set
  /// on this (core/Search.h): two interleavings whose configurations
  /// fingerprint equal at the same decision depth share all subsequent
  /// behavior, so their subtrees are explored once. Deliberately
  /// excluded: Steps (only reachable effect is the step limit, which is
  /// a budget rather than a behavior) and Output (append-only; it never
  /// feeds back into control flow). Implemented in core/Fingerprint.cpp.
  uint64_t fingerprint() const;
};

} // namespace cundef

#endif // CUNDEF_CORE_CONFIGURATION_H
