//===- core/Configuration.h - The C configuration --------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine state, organized as the paper's configuration of labeled
/// cells (Figure 1):
///
///   < <K>k  <Map>genv  <Set>locsWrittenTo  <Set>notWritable  <Map>mem
///     < <Map>env ... >control  <List>callStack ... >T
///
/// The whole configuration is a value type: search over unspecified
/// evaluation orders clones it at choice points (paper section 2.5.2).
/// Copies are cheap — the mem cell shares objects copy-on-write
/// (mem/SymbolicMemory.h) — and the cells that change on every step (k
/// stack, sequencing sets, memory, frames) maintain incremental digests
/// so fingerprint() is O(what changed), not O(total state).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_CONFIGURATION_H
#define CUNDEF_CORE_CONFIGURATION_H

#include "core/KItem.h"
#include "mem/SymbolicMemory.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cundef {

/// A byte location (base, offset): the elements of the locsWrittenTo
/// and notWritable cells.
using ByteLoc = std::pair<uint32_t, int64_t>;

/// Content digest of one k item (implemented in core/Fingerprint.cpp,
/// next to the value hashing it depends on).
uint64_t kItemDigest(const KItem &Item);

/// The k cell: a stack of KItems plus, when tracking is enabled, a
/// parallel stack of prefix digests so that the whole cell's digest is
/// the top entry — O(1) at fingerprint time, O(one item) per push.
/// Tracking is enabled by machines that fingerprint (the search);
/// ordinary runs skip the per-push hashing entirely.
class KCell {
public:
  void push_back(KItem Item) {
    if (Tracking)
      Digests.push_back(combine(digest(), kItemDigest(Item)));
    Items.push_back(std::move(Item));
  }
  void pop_back() {
    Items.pop_back();
    if (Tracking)
      Digests.pop_back();
  }
  /// Moves the top item out and pops it (the step loop's idiom; a
  /// mutable back() would silently stale the prefix digests).
  KItem take() {
    KItem Item = std::move(Items.back());
    pop_back();
    return Item;
  }
  const KItem &back() const { return Items.back(); }
  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  const std::vector<KItem> &items() const { return Items; }

  /// Digest of the whole stack (valid whenever Tracking).
  uint64_t digest() const { return Digests.empty() ? Seed : Digests.back(); }
  /// Reference recomputation from scratch; always equals digest() while
  /// tracking (tested), and is the fallback when not.
  uint64_t computeDigest() const {
    uint64_t D = Seed;
    for (const KItem &Item : Items)
      D = combine(D, kItemDigest(Item));
    return D;
  }
  bool tracking() const { return Tracking; }
  /// Turns on incremental digests, backfilling for any current items.
  void enableTracking() {
    if (Tracking)
      return;
    Tracking = true;
    Digests.clear();
    Digests.reserve(Items.size());
    uint64_t D = Seed;
    for (const KItem &Item : Items)
      Digests.push_back(D = combine(D, kItemDigest(Item)));
  }

private:
  static constexpr uint64_t Seed = 0x243f6a8885a308d3ull;
  static uint64_t combine(uint64_t Prefix, uint64_t Item) {
    return mix64(Prefix * 0x100000001b3ull ^ Item);
  }
  std::vector<KItem> Items;
  std::vector<uint64_t> Digests;
  bool Tracking = false;
};

/// A set of byte locations with an incrementally maintained multiset
/// digest (sum of mixed item hashes — order-independent, exact under
/// insert/clear). Backs the locsWrittenTo and notWritable cells, whose
/// membership changes every write/sequence point.
class LocSet {
public:
  bool insert(ByteLoc Loc) {
    if (!Set.insert(Loc).second)
      return false;
    Sum += itemHash(Loc);
    return true;
  }
  void clear() {
    Set.clear();
    Sum = 0;
  }
  size_t count(ByteLoc Loc) const { return Set.count(Loc); }
  size_t size() const { return Set.size(); }
  auto begin() const { return Set.begin(); }
  auto end() const { return Set.end(); }
  uint64_t digest() const { return Sum; }
  /// Reference recomputation (must equal digest(); tested).
  uint64_t computeDigest() const {
    uint64_t D = 0;
    for (const ByteLoc &Loc : Set)
      D += itemHash(Loc);
    return D;
  }

private:
  static uint64_t itemHash(ByteLoc Loc) {
    return mix64((static_cast<uint64_t>(Loc.first) << 32) ^
                 (static_cast<uint64_t>(Loc.second) * 0x9e3779b97f4a7c15ull));
  }
  std::set<ByteLoc> Set;
  uint64_t Sum = 0;
};

/// One activation record: the env cell of a control context plus the
/// bookkeeping needed to end parameter lifetimes.
struct Frame {
  const FunctionDecl *Fn = nullptr;
  /// env: declaration -> object id.
  std::map<uint32_t, uint32_t> Env;
  std::vector<uint32_t> ParamObjects;
  /// Variadic tail of the active call (used by printf-style builtins).
  std::vector<Value> VarArgs;
  SourceLoc CallLoc;

  /// Cached frame digest; any mutable access through
  /// Configuration::frame() conservatively invalidates it, so at
  /// fingerprint time only frames touched since the last fingerprint
  /// are rehashed. Content-determined, so copies keep it.
  mutable uint64_t Digest = 0;
  mutable bool DigestValid = false;
};

/// Why the machine stopped.
enum class RunStatus : uint8_t {
  Running,
  Completed,  ///< main returned or exit() was called
  UbDetected, ///< a strict rule got stuck / reported undefinedness
  Fault,      ///< the permissive machine hit a hardware fault (SEGV)
  StepLimit,  ///< ran out of fuel (possibly non-terminating program)
  Internal,   ///< the machine could not proceed (an interpreter bug)
  Cancelled,  ///< stopped from outside (search dedup or cancellation)
};

/// The full configuration.
struct Configuration {
  // --- <k> and its value stack ---------------------------------------
  KCell K;
  std::vector<Value> Values;

  // --- <genv> ----------------------------------------------------------
  std::map<uint32_t, uint32_t> GlobalEnv; ///< DeclId -> object id

  // --- <mem> -----------------------------------------------------------
  SymbolicMemory Mem;

  // --- <locsWrittenTo> / <notWritable> (paper section 4.2) -------------
  LocSet LocsWrittenTo;
  LocSet NotWritable;

  // --- <callStack> + <control> -----------------------------------------
  std::vector<Frame> CallStack;

  // --- Bookkeeping cells ------------------------------------------------
  /// Function pseudo-objects (function designators' addresses).
  std::map<const FunctionDecl *, uint32_t> FuncObjects;
  std::map<uint32_t, const FunctionDecl *> FuncByObject;
  /// String literal objects, cached per occurrence.
  std::map<const Expr *, uint32_t> LiteralObjects;
  /// Heap storage's effective types, per (object, offset) region --
  /// "the effective type of the object for that access ... becomes the
  /// effective type" (C11 6.5p6). Declared objects use their layout.
  std::map<ByteLoc, const Type *> HeapEffectiveTy;

  // --- Program-visible results ------------------------------------------
  std::string Output; ///< bytes written by printf and friends
  int ExitCode = 0;
  RunStatus Status = RunStatus::Running;
  uint64_t Steps = 0;
  /// rand()'s deterministic state (part of the configuration so that
  /// search replays are reproducible).
  uint32_t RandState = 12345;

  /// Mutable access to the innermost frame. Conservatively invalidates
  /// that frame's cached digest: callers may mutate anything behind the
  /// reference.
  Frame &frame() {
    Frame &F = CallStack.back();
    F.DigestValid = false;
    return F;
  }
  const Frame &frame() const { return CallStack.back(); }

  /// Looks up a variable's object: innermost frame env, then genv.
  /// Returns 0 when unbound.
  uint32_t lookup(uint32_t DeclId) const {
    if (!CallStack.empty()) {
      auto It = CallStack.back().Env.find(DeclId);
      if (It != CallStack.back().Env.end())
        return It->second;
    }
    auto It = GlobalEnv.find(DeclId);
    return It == GlobalEnv.end() ? 0 : It->second;
  }

  /// Renders the cell structure (used by bench_fig1_config to reproduce
  /// Figure 1).
  std::string describeCells() const;

  /// A 64-bit digest of everything that can influence the machine's
  /// future behavior. The evaluation-order search keys its visited-set
  /// on this (core/Search.h): two interleavings whose configurations
  /// fingerprint equal at the same decision depth share all subsequent
  /// behavior, so their subtrees are explored once. Deliberately
  /// excluded: Steps (only reachable effect is the step limit, which is
  /// a budget rather than a behavior) and Output (append-only; it never
  /// feeds back into control flow). Implemented in core/Fingerprint.cpp.
  ///
  /// Incremental: the k cell, sequencing sets, memory objects, and
  /// frames contribute cached/incrementally-maintained digests, so the
  /// cost is proportional to what changed since the last fingerprint.
  uint64_t fingerprint() const;

  /// The same digest recomputed from scratch, bypassing every cache.
  /// Always equals fingerprint(); the equivalence is the correctness
  /// argument for the caches and is asserted by tests and by
  /// bench_search's engine cross-check.
  uint64_t fingerprintFull() const;
};

} // namespace cundef

#endif // CUNDEF_CORE_CONFIGURATION_H
