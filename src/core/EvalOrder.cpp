//===- core/EvalOrder.cpp - Evaluation order policies ------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/EvalOrder.h"

#include <algorithm>
#include <numeric>

using namespace cundef;

std::vector<uint8_t> OrderChooser::choose(unsigned N) {
  std::vector<uint8_t> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0);
  // Replayed decisions are consumed positionally, one per choice point
  // INCLUDING forced (arity-1) points, so that replay indices always
  // equal decision-trace indices: a search can turn any trace prefix
  // into a replay vector without re-aligning it.
  if (ReplayPos < Replay.size()) {
    uint8_t Decision = Replay[ReplayPos++];
    if (N <= 1) {
      Trace.emplace_back(0, 1);
      return Perm;
    }
    // Two alternatives per choice point (source order / reversed):
    // enough to flip the direction-dependent undefined behaviors while
    // keeping search linear in depth.
    Trace.emplace_back(Decision, 2);
    if (Decision)
      std::reverse(Perm.begin(), Perm.end());
    return Perm;
  }
  if (N <= 1) {
    Trace.emplace_back(0, 1);
    return Perm;
  }
  switch (Kind) {
  case EvalOrderKind::LeftToRight:
    Trace.emplace_back(0, 2);
    return Perm;
  case EvalOrderKind::RightToLeft:
    Trace.emplace_back(1, 2);
    std::reverse(Perm.begin(), Perm.end());
    return Perm;
  case EvalOrderKind::Random: {
    // Fisher-Yates with the deterministic xorshift stream.
    for (unsigned I = N - 1; I > 0; --I)
      std::swap(Perm[I], Perm[nextRandom() % (I + 1)]);
    Trace.emplace_back(Perm[0] == 0 ? 0 : 1, 2);
    return Perm;
  }
  }
  return Perm;
}
