//===- core/EvalOrder.h - Evaluation order policies -------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation order of most C operands is unspecified, and whether a
/// program is undefined can depend on the order chosen (paper section
/// 2.5.2: CompCert divides by zero where GCC does not). The machine
/// asks an OrderChooser for a permutation at every operand-scheduling
/// point. Policies: source order, reverse, or seeded random. For
/// search, a replay vector pins each choice and a trace records the
/// arity of every choice point so a driver can enumerate alternatives
/// (core/Search.h).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_EVALORDER_H
#define CUNDEF_CORE_EVALORDER_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cundef {

enum class EvalOrderKind : uint8_t {
  LeftToRight,
  RightToLeft,
  Random,
};

/// Decides operand evaluation orders. Deterministic given (policy,
/// seed, replay vector), which makes search reproducible.
class OrderChooser {
public:
  OrderChooser(EvalOrderKind Kind, uint32_t Seed)
      : Kind(Kind), Rng(Seed ? Seed : 1) {}

  /// Chooses an order for \p N operands. Each call appends one entry to
  /// the decision trace. Replayed decisions (0 = source order,
  /// 1 = reversed) take precedence over the policy.
  std::vector<uint8_t> choose(unsigned N);

  /// Pins the first decisions to \p Decisions.
  void setReplay(std::vector<uint8_t> Decisions) {
    Replay = std::move(Decisions);
    ReplayPos = 0;
  }

  /// Fork-resume: installs \p Decisions as the replay vector on a
  /// chooser copied from a mid-run snapshot. The trace already holds
  /// the decisions made so far, so consumption continues at the current
  /// depth instead of restarting from zero — position i of the replay
  /// keeps corresponding to choice point i, exactly as in a
  /// from-scratch replay of the same vector.
  void resumeReplay(std::vector<uint8_t> Decisions) {
    Replay = std::move(Decisions);
    ReplayPos = std::min(Trace.size(), Replay.size());
  }

  /// (decision, arity) per choice point, in order.
  const std::vector<std::pair<uint8_t, uint8_t>> &trace() const {
    return Trace;
  }

  /// Current state of the Random policy's xorshift stream. The search
  /// mixes it into configuration fingerprints: under --order=random the
  /// chooser's stream is part of "everything that influences future
  /// behavior", so two states are only duplicates when their streams
  /// agree too. (LeftToRight/RightToLeft never advance it.)
  uint32_t rngState() const { return Rng; }

private:
  uint32_t nextRandom() {
    // xorshift32: small, deterministic, good enough for shuffles.
    Rng ^= Rng << 13;
    Rng ^= Rng >> 17;
    Rng ^= Rng << 5;
    return Rng;
  }

  EvalOrderKind Kind;
  uint32_t Rng;
  std::vector<uint8_t> Replay;
  size_t ReplayPos = 0;
  std::vector<std::pair<uint8_t, uint8_t>> Trace;
};

} // namespace cundef

#endif // CUNDEF_CORE_EVALORDER_H
