//===- core/RuleSet.h - Rules with precedence -------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's *inclusion/exclusion* specification style (section
/// 4.5.1): instead of guarding one positive rule with accumulating side
/// conditions, write the plain positive rule first and add negative
/// refinement rules after it; "later rules must be applied before
/// earlier rules". A RuleChain holds rules in registration order and
/// applies them newest-first, which realizes exactly that precedence.
///
/// The machine builds chains for dereference and division when
/// MachineOptions::Style is PrecedenceChain; the ablation bench
/// verifies the three styles give identical verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_RULESET_H
#define CUNDEF_CORE_RULESET_H

#include "core/Value.h"

#include <functional>
#include <string>
#include <vector>

namespace cundef {

class Machine;

/// Everything a rule may look at and produce. Operands are filled by
/// the caller (e.g. the pointer value for a dereference; dividend and
/// divisor for a division).
struct RuleContext {
  const Expr *Node = nullptr;
  SourceLoc Loc;
  Value Operand0;
  Value Operand1;
  /// Set by the applied rule.
  Value Result;
  bool ProducedResult = false;
};

/// One named rule: returns true when it matched (whether it produced a
/// result or reported undefinedness).
struct Rule {
  std::string Name;
  std::function<bool(Machine &, RuleContext &)> Body;
};

/// An ordered rule collection applied newest-first.
class RuleChain {
public:
  void add(std::string Name, std::function<bool(Machine &, RuleContext &)> Body) {
    Rules.push_back({std::move(Name), std::move(Body)});
  }

  /// Tries rules from the most recently added to the first; returns the
  /// name of the rule that matched, or null when none did.
  const char *apply(Machine &M, RuleContext &Ctx) const;

  size_t size() const { return Rules.size(); }
  std::vector<std::string> names() const;

private:
  std::vector<Rule> Rules;
};

} // namespace cundef

#endif // CUNDEF_CORE_RULESET_H
