//===- core/Fingerprint.cpp - Configuration fingerprints ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Configuration::fingerprint(): the state digest behind the parallel
// evaluation-order search's visited-set (core/Search.cpp). The digest
// must cover every cell whose content can influence future steps; AST
// nodes, declarations, and canonical types are hashed by address, which
// is a stable identity because every machine of one search shares the
// same AstContext.
//
//===----------------------------------------------------------------------===//

#include "core/Configuration.h"

#include "support/Hash.h"

using namespace cundef;

namespace {

void hashValue(Fnv1a &H, const Value &V) {
  H.u8(static_cast<uint8_t>(V.K));
  H.ptr(V.Ty);
  H.u64(V.Bits);
  H.f64(V.F);
  H.u32(V.Ptr.Base);
  H.i64(V.Ptr.Offset);
  H.u8(V.Ptr.FromInteger);
  H.u64(V.Ptr.RawInt);
  H.u8(V.LvQuals);
  H.u8(static_cast<uint8_t>(V.Payload.K));
  H.u8(V.Payload.Value);
  H.u32(V.Payload.Ptr.Base);
  H.i64(V.Payload.Ptr.Offset);
  H.u8(V.Payload.FragIndex);
  H.u8(V.Payload.FragCount);
  H.u64(V.AggBytes.size());
  for (const Byte &B : V.AggBytes) {
    H.u8(static_cast<uint8_t>(B.K));
    H.u8(B.Value);
    H.u32(B.Ptr.Base);
    H.i64(B.Ptr.Offset);
    H.u8(B.FragIndex);
    H.u8(B.FragCount);
  }
  H.u8(V.MissingReturn);
  H.i64(V.SubStart);
  H.u64(V.SubLen);
}

void hashKItem(Fnv1a &H, const KItem &Item) {
  H.u8(static_cast<uint8_t>(Item.K));
  H.ptr(Item.E);
  H.ptr(Item.S);
  H.u64(Item.Operands.size());
  for (const Expr *Op : Item.Operands)
    H.ptr(Op);
  H.u64(Item.Results.size());
  for (const Value &V : Item.Results)
    hashValue(H, V);
  H.u64(Item.Perm.size());
  H.bytes(Item.Perm.data(), Item.Perm.size());
  H.u8(Item.Idx);
  H.ptr(Item.D);
  H.u64(Item.Offset);
  H.ptr(Item.Ty.Ty);
  H.u8(Item.Ty.Quals);
  H.u64(Item.ObjectsToKill.size());
  for (uint32_t Id : Item.ObjectsToKill)
    H.u32(Id);
  H.ptr(Item.Callee);
  H.u8(Item.HasValue);
}

} // namespace

uint64_t Configuration::fingerprint() const {
  Fnv1a H;

  H.u64(K.size());
  for (const KItem &Item : K)
    hashKItem(H, Item);

  H.u64(Values.size());
  for (const Value &V : Values)
    hashValue(H, V);

  H.u64(GlobalEnv.size());
  for (const auto &[Decl, Obj] : GlobalEnv) {
    H.u32(Decl);
    H.u32(Obj);
  }

  Mem.hashInto(H);

  H.u64(LocsWrittenTo.size());
  for (const auto &[Obj, Off] : LocsWrittenTo) {
    H.u32(Obj);
    H.i64(Off);
  }
  H.u64(NotWritable.size());
  for (const auto &[Obj, Off] : NotWritable) {
    H.u32(Obj);
    H.i64(Off);
  }

  H.u64(CallStack.size());
  for (const Frame &F : CallStack) {
    H.ptr(F.Fn);
    H.u64(F.Env.size());
    for (const auto &[Decl, Obj] : F.Env) {
      H.u32(Decl);
      H.u32(Obj);
    }
    H.u64(F.ParamObjects.size());
    for (uint32_t Id : F.ParamObjects)
      H.u32(Id);
    H.u64(F.VarArgs.size());
    for (const Value &V : F.VarArgs)
      hashValue(H, V);
  }

  H.u64(FuncObjects.size());
  for (const auto &[Fn, Obj] : FuncObjects) {
    H.ptr(Fn);
    H.u32(Obj);
  }
  H.u64(LiteralObjects.size());
  for (const auto &[E, Obj] : LiteralObjects) {
    H.ptr(E);
    H.u32(Obj);
  }
  H.u64(HeapEffectiveTy.size());
  for (const auto &[Loc, Ty] : HeapEffectiveTy) {
    H.u32(Loc.first);
    H.i64(Loc.second);
    H.ptr(Ty);
  }

  H.u8(static_cast<uint8_t>(Status));
  H.u32(static_cast<uint32_t>(ExitCode));
  H.u32(RandState);
  return H.digest();
}
