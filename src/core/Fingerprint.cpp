//===- core/Fingerprint.cpp - Configuration fingerprints ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Configuration::fingerprint(): the state digest behind the parallel
// evaluation-order search's visited-set (core/Search.cpp). The digest
// must cover every cell whose content can influence future steps; AST
// nodes, declarations, and canonical types are hashed by address, which
// is a stable identity because every machine of one search shares the
// same AstContext.
//
// The digest is structured as an FNV-1a fold over per-cell component
// digests. Components that change on every step — the k stack, the
// sequencing sets, memory objects, frames — maintain their digests
// incrementally (prefix stacks, multiset sums, dirty-tracked caches),
// so fingerprint() costs O(state touched since the last fingerprint).
// fingerprintFull() recomputes every component from scratch and must
// produce the identical value; that equivalence is the correctness
// argument for all the caches, and tests assert it at every choice
// point of real runs.
//
//===----------------------------------------------------------------------===//

#include "core/Configuration.h"

#include "support/Hash.h"

using namespace cundef;

namespace {

void hashValue(Fnv1a &H, const Value &V) {
  H.u8(static_cast<uint8_t>(V.K));
  H.ptr(V.Ty);
  H.u64(V.Bits);
  H.f64(V.F);
  H.u32(V.Ptr.Base);
  H.i64(V.Ptr.Offset);
  H.u8(V.Ptr.FromInteger);
  H.u64(V.Ptr.RawInt);
  H.u8(V.LvQuals);
  H.u8(static_cast<uint8_t>(V.Payload.K));
  H.u8(V.Payload.Value);
  H.u32(V.Payload.Ptr.Base);
  H.i64(V.Payload.Ptr.Offset);
  H.u8(V.Payload.FragIndex);
  H.u8(V.Payload.FragCount);
  H.u64(V.AggBytes.size());
  for (const Byte &B : V.AggBytes) {
    H.u8(static_cast<uint8_t>(B.K));
    H.u8(B.Value);
    H.u32(B.Ptr.Base);
    H.i64(B.Ptr.Offset);
    H.u8(B.FragIndex);
    H.u8(B.FragCount);
  }
  H.u8(V.MissingReturn);
  H.i64(V.SubStart);
  H.u64(V.SubLen);
}

uint64_t frameDigest(const Frame &F) {
  Fnv1a H;
  H.ptr(F.Fn);
  H.u64(F.Env.size());
  for (const auto &[Decl, Obj] : F.Env) {
    H.u32(Decl);
    H.u32(Obj);
  }
  H.u64(F.ParamObjects.size());
  for (uint32_t Id : F.ParamObjects)
    H.u32(Id);
  H.u64(F.VarArgs.size());
  for (const Value &V : F.VarArgs)
    hashValue(H, V);
  return H.digest();
}

/// The cells that are cheap to hash in full every time (bounded by the
/// number of globals / functions / literals / live heap regions, not by
/// execution length). Shared by both fingerprint paths.
uint64_t smallCellsDigest(const Configuration &C) {
  Fnv1a H;
  H.u64(C.Values.size());
  for (const Value &V : C.Values)
    hashValue(H, V);

  H.u64(C.GlobalEnv.size());
  for (const auto &[Decl, Obj] : C.GlobalEnv) {
    H.u32(Decl);
    H.u32(Obj);
  }

  H.u64(C.FuncObjects.size());
  for (const auto &[Fn, Obj] : C.FuncObjects) {
    H.ptr(Fn);
    H.u32(Obj);
  }
  H.u64(C.LiteralObjects.size());
  for (const auto &[E, Obj] : C.LiteralObjects) {
    H.ptr(E);
    H.u32(Obj);
  }
  H.u64(C.HeapEffectiveTy.size());
  for (const auto &[Loc, Ty] : C.HeapEffectiveTy) {
    H.u32(Loc.first);
    H.i64(Loc.second);
    H.ptr(Ty);
  }

  H.u8(static_cast<uint8_t>(C.Status));
  H.u32(static_cast<uint32_t>(C.ExitCode));
  H.u32(C.RandState);
  return H.digest();
}

uint64_t fingerprintWith(const Configuration &C, bool Full) {
  Fnv1a H;
  H.u64(Full || !C.K.tracking() ? C.K.computeDigest() : C.K.digest());
  H.u64(Full ? C.LocsWrittenTo.computeDigest() : C.LocsWrittenTo.digest());
  H.u64(Full ? C.NotWritable.computeDigest() : C.NotWritable.digest());
  C.Mem.hashInto(H, Full);

  H.u64(C.CallStack.size());
  for (const Frame &F : C.CallStack) {
    if (Full) {
      H.u64(frameDigest(F));
      continue;
    }
    if (!F.DigestValid) {
      F.Digest = frameDigest(F);
      F.DigestValid = true;
    }
    H.u64(F.Digest);
  }

  H.u64(smallCellsDigest(C));
  return H.digest();
}

} // namespace

uint64_t cundef::kItemDigest(const KItem &Item) {
  Fnv1a H;
  H.u8(static_cast<uint8_t>(Item.K));
  H.ptr(Item.E);
  H.ptr(Item.S);
  H.u64(Item.Operands.size());
  for (const Expr *Op : Item.Operands)
    H.ptr(Op);
  H.u64(Item.Results.size());
  for (const Value &V : Item.Results)
    hashValue(H, V);
  H.u64(Item.Perm.size());
  H.bytes(Item.Perm.data(), Item.Perm.size());
  H.u8(Item.Idx);
  H.ptr(Item.D);
  H.u64(Item.Offset);
  H.ptr(Item.Ty.Ty);
  H.u8(Item.Ty.Quals);
  H.u64(Item.ObjectsToKill.size());
  for (uint32_t Id : Item.ObjectsToKill)
    H.u32(Id);
  H.ptr(Item.Callee);
  H.u8(Item.HasValue);
  return H.digest();
}

uint64_t Configuration::fingerprint() const {
  return fingerprintWith(*this, /*Full=*/false);
}

uint64_t Configuration::fingerprintFull() const {
  return fingerprintWith(*this, /*Full=*/true);
}
