//===- core/Monitors.cpp - Declarative negative specifications --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// The paper's section 4.5.2 proposes specifying undefinedness as
// temporal never-properties over configurations, e.g.
//
//     not < *(NULL : ptrType(T)) ...>k
//     not ( <read(L,T) ...>k  <write(L',T',V) ...>k )  when overlaps(...)
//
// These monitors are that style made executable: each watches machine
// events and reports when its negated pattern occurs. With
// MachineOptions::Style == Declarative the strict machine relies on
// them instead of in-rule side conditions for division, dereference,
// arithmetic exceptions, and sequencing.
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "core/Monitor.h"

#include <set>

using namespace cundef;

namespace {

/// not <I / 0 ...>k  and  not <exceptional-arithmetic>k.
class DivArithMonitor : public ExecMonitor {
public:
  void onDivide(Machine &M, const Value &Divisor, SourceLoc Loc) override {
    if (!Divisor.isInt())
      return;
    if (Divisor.asUnsigned(M.ast().Types) == 0)
      M.flagUb(UbKind::DivisionByZero, Loc);
  }
  void onArith(Machine &M, const ArithOutcome &Out, SourceLoc Loc) override {
    if (Out.Overflow)
      M.flagUb(UbKind::SignedOverflow, Loc);
    else if (Out.ShiftNegCount)
      M.flagUb(UbKind::NegativeShiftCount, Loc);
    else if (Out.ShiftTooWide)
      M.flagUb(UbKind::ShiftExponentOutOfRange, Loc);
    else if (Out.ShiftOfNeg)
      M.flagUb(UbKind::ShiftOfNegative, Loc);
  }
};

/// not <*(NULL : ptrType(T)) ...>k and its void/lifetime/bounds
/// companions (the paper's deref-neg1 / deref-neg2 as properties).
class DerefMonitor : public ExecMonitor {
public:
  void onDeref(Machine &M, const Value &P, QualType Pointee,
               SourceLoc Loc) override {
    if (Pointee.Ty->isVoid()) {
      M.flagUb(UbKind::DerefVoidPointer, Loc);
      return;
    }
    if (P.Ptr.isNull()) {
      M.flagUb(UbKind::DerefNullPointer, Loc);
      return;
    }
    if (P.Ptr.FromInteger) {
      M.flagUb(UbKind::DerefDanglingPointer, Loc);
      return;
    }
    const MemObject *Obj = M.config().Mem.find(P.Ptr.Base);
    if (!Obj) {
      M.flagUb(UbKind::DerefDanglingPointer, Loc);
      return;
    }
    if (Obj->State == ObjectState::Freed) {
      M.flagUb(UbKind::UseAfterFree, Loc);
      return;
    }
    if (Obj->State == ObjectState::Dead) {
      M.flagUb(UbKind::AccessDeadObject, Loc);
      return;
    }
    uint64_t Len = Pointee.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Pointee)
                       : 1;
    if (P.Ptr.Offset < 0 ||
        static_cast<uint64_t>(P.Ptr.Offset) + Len > Obj->Size)
      M.flagUb(Obj->Size == 0 ? UbKind::ZeroSizeAllocationUse
               : static_cast<uint64_t>(P.Ptr.Offset) == Obj->Size
                   ? UbKind::DerefOnePastEnd
                   : UbKind::ReadOutOfBounds,
               Loc);
  }
};

/// not ( write(L) ; {read,write}(L) ) without an intervening sequence
/// point -- the paper's unsequenced-side-effect property, maintained
/// over events instead of inside the write rules.
class SequencingMonitor : public ExecMonitor {
public:
  void onWrite(Machine &M, SymPointer Ptr, QualType Ty, const Value &V,
               SourceLoc Loc) override {
    (void)V;
    if (Ptr.Base == 0 || Ptr.FromInteger)
      return;
    uint64_t Len = Ty.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Ty)
                       : 1;
    for (uint64_t I = 0; I < Len; ++I) {
      ByteLoc Loc2{Ptr.Base, Ptr.Offset + static_cast<int64_t>(I)};
      if (Written.count(Loc2)) {
        M.flagUb(UbKind::UnsequencedSideEffect, Loc);
        return;
      }
    }
    for (uint64_t I = 0; I < Len; ++I)
      Written.insert({Ptr.Base, Ptr.Offset + static_cast<int64_t>(I)});
  }
  void onRead(Machine &M, SymPointer Ptr, QualType Ty,
              SourceLoc Loc) override {
    if (Ptr.Base == 0 || Ptr.FromInteger)
      return;
    uint64_t Len = Ty.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Ty)
                       : 1;
    for (uint64_t I = 0; I < Len; ++I)
      if (Written.count({Ptr.Base, Ptr.Offset + static_cast<int64_t>(I)})) {
        M.flagUb(UbKind::UnsequencedSideEffect, Loc);
        return;
      }
  }
  void onSeqPoint(Machine &M) override {
    (void)M;
    Written.clear();
  }

private:
  std::set<ByteLoc> Written;
};

} // namespace

std::vector<std::unique_ptr<ExecMonitor>> cundef::makeDeclarativeMonitors() {
  std::vector<std::unique_ptr<ExecMonitor>> Monitors;
  Monitors.push_back(std::make_unique<DivArithMonitor>());
  Monitors.push_back(std::make_unique<DerefMonitor>());
  Monitors.push_back(std::make_unique<SequencingMonitor>());
  return Monitors;
}
