//===- core/Value.h - Runtime values ---------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Values computed by the machine. Besides ordinary integers, floats
/// and sym(B)+O pointers, there are two kinds the undefinedness
/// semantics needs (paper section 4.3):
///
///  * LVal -- the paper's "[L] : T": a located lvalue produced by
///    dereference and name lookup; reading it is a separate rule.
///  * Opaque -- a value read through a character lvalue that carries a
///    raw memory byte (possibly unknown(8) or a subObject pointer
///    fragment). It can be stored back verbatim -- this is what makes
///    byte-wise struct and pointer copies work -- but using it in
///    arithmetic is undefined.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_VALUE_H
#define CUNDEF_CORE_VALUE_H

#include "ast/Ast.h"
#include "mem/Byte.h"

#include <string>

namespace cundef {

class Value {
public:
  enum class Kind : uint8_t {
    Empty,   ///< no value (void results)
    Int,     ///< integral value, bits truncated to the type's width
    Float,   ///< float/double
    Pointer, ///< sym(B)+O (object or function pseudo-object)
    LVal,    ///< a located lvalue [L] : T
    Opaque,  ///< a raw byte read through a character lvalue
    Agg,     ///< a struct/union rvalue: its bytes (may include unknowns)
  };

  Kind K = Kind::Empty;
  const Type *Ty = nullptr; ///< canonical C type (null for Empty)
  uint64_t Bits = 0;        ///< Int payload (raw two's complement bits)
  double F = 0.0;           ///< Float payload
  SymPointer Ptr;           ///< Pointer / LVal payload
  uint8_t LvQuals = QualNone; ///< LVal qualifier bits
  Byte Payload;             ///< Opaque payload
  std::vector<Byte> AggBytes; ///< Agg payload
  /// Set on the Empty value produced when a non-void function falls off
  /// its end; consuming it is UB 24.
  bool MissingReturn = false;
  /// Subobject window for pointers born from an array-to-pointer decay:
  /// [SubStart, SubStart + SubLen) in bytes within the object. While the
  /// pointer flows through an expression, arithmetic beyond the *inner*
  /// array is undefined even when the containing object is larger
  /// (catalog row 64, C11 6.5.6p8). SubLen == 0 means "whole object".
  int64_t SubStart = 0;
  uint64_t SubLen = 0;

  Value() = default;

  static Value empty() { return Value(); }
  static Value makeInt(const Type *Ty, uint64_t Bits) {
    Value V;
    V.K = Kind::Int;
    V.Ty = Ty;
    V.Bits = Bits;
    return V;
  }
  static Value makeFloat(const Type *Ty, double F) {
    Value V;
    V.K = Kind::Float;
    V.Ty = Ty;
    V.F = F;
    return V;
  }
  static Value makePointer(const Type *PtrTy, SymPointer Ptr) {
    Value V;
    V.K = Kind::Pointer;
    V.Ty = PtrTy;
    V.Ptr = Ptr;
    return V;
  }
  static Value makeLValue(SymPointer Ptr, QualType LvTy) {
    Value V;
    V.K = Kind::LVal;
    V.Ty = LvTy.Ty;
    V.LvQuals = LvTy.Quals;
    V.Ptr = Ptr;
    return V;
  }
  static Value makeOpaque(const Type *CharTy, Byte Payload) {
    Value V;
    V.K = Kind::Opaque;
    V.Ty = CharTy;
    V.Payload = Payload;
    return V;
  }
  static Value makeAgg(const Type *RecordTy, std::vector<Byte> Bytes) {
    Value V;
    V.K = Kind::Agg;
    V.Ty = RecordTy;
    V.AggBytes = std::move(Bytes);
    return V;
  }

  bool isEmpty() const { return K == Kind::Empty; }
  bool isInt() const { return K == Kind::Int; }
  bool isFloat() const { return K == Kind::Float; }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isLValue() const { return K == Kind::LVal; }
  bool isOpaque() const { return K == Kind::Opaque; }
  bool isAgg() const { return K == Kind::Agg; }

  QualType lvalueType() const { return QualType(Ty, LvQuals); }

  /// Integer payload interpreted through the type's signedness.
  int64_t asSigned(const TypeContext &Types) const;
  uint64_t asUnsigned(const TypeContext &Types) const;

  /// Scalar truth value (for conditions). Opaque/Empty have none; the
  /// caller must have checked.
  bool truthy(const TypeContext &Types) const;

  /// Debug rendering ("42 : int", "sym(3)+0 : int *").
  std::string str(const TypeContext &Types,
                  const StringInterner &Interner) const;
};

/// Result of an arithmetic step, carrying the undefined conditions the
/// side-condition rules test (paper section 4.1).
struct ArithOutcome {
  Value V;
  bool Overflow = false;      ///< signed overflow (UB 3)
  bool DivZero = false;       ///< division/remainder by zero (UB 1/2)
  bool ShiftTooWide = false;  ///< shift count out of range (UB 4)
  bool ShiftNegCount = false; ///< negative shift count (UB 32)
  bool ShiftOfNeg = false;    ///< left shift of negative value (UB 5)
};

/// Evaluates an integer binary operation in the given result type.
/// Relational/equality operators return int. \p Op must not be a
/// logical/comma operator.
ArithOutcome evalIntBinary(BinaryOp Op, const Value &L, const Value &R,
                           const Type *ResultTy, const TypeContext &Types);

/// Floating binary operation (divide by zero yields inf/nan, defined
/// behavior under Annex F; comparisons return int).
Value evalFloatBinary(BinaryOp Op, const Value &L, const Value &R,
                      const Type *ResultTy, const TypeContext &Types);

/// Result of a scalar conversion.
struct ConvOutcome {
  Value V;
  bool FloatToIntOverflow = false; ///< UB 26
};

/// Converts \p V to \p To per the cast kind semantics. Pointer casts
/// keep the symbolic pointer; int<->pointer casts record provenance.
ConvOutcome convertScalar(const Value &V, const Type *To, CastKind CK,
                          const TypeContext &Types);

/// Truncates raw bits into the representation width of \p Ty.
uint64_t truncateBits(uint64_t Bits, const Type *Ty,
                      const TypeContext &Types);

} // namespace cundef

#endif // CUNDEF_CORE_VALUE_H
