//===- core/Machine.cpp - Machine driver, dispatch, control transfer -------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include "libc/Builtins.h"
#include "support/Strings.h"

#include <cassert>

using namespace cundef;

const char *cundef::kKindName(KKind K) {
  switch (K) {
  case KKind::Expr:           return "expr";
  case KKind::Stmt:           return "stmt";
  case KKind::EvalOperands:   return "eval-operands";
  case KKind::LvToRv:         return "lvalue-to-rvalue";
  case KKind::CastApply:      return "cast";
  case KKind::LogicRhs:       return "logic-rhs";
  case KKind::LogicDone:      return "logic-done";
  case KKind::CondPick:       return "cond-pick";
  case KKind::Pop:            return "pop";
  case KKind::SeqPoint:       return "sequence-point";
  case KKind::InitVar:        return "init-var";
  case KKind::StoreTo:        return "store-to";
  case KKind::LeaveBlock:     return "leave-block";
  case KKind::IfDecide:       return "if-decide";
  case KKind::WhileTest:      return "while-test";
  case KKind::WhileDecide:    return "while-decide";
  case KKind::DoTest:         return "do-test";
  case KKind::DoDecide:       return "do-decide";
  case KKind::ForTest:        return "for-test";
  case KKind::ForDecide:      return "for-decide";
  case KKind::ForInc:         return "for-inc";
  case KKind::SwitchDispatch: return "switch-dispatch";
  case KKind::SwitchEnd:      return "switch-end";
  case KKind::DoReturn:       return "do-return";
  case KKind::CallReturn:     return "call-return";
  }
  return "?";
}

std::string Configuration::describeCells() const {
  std::string Out;
  Out += "<T>\n";
  Out += strFormat("  <k>              %zu item(s)\n", K.size());
  Out += strFormat("  <genv>           %zu binding(s)\n", GlobalEnv.size());
  Out += strFormat("  <mem>            %zu object(s)\n",
                   Mem.objects().size());
  Out += strFormat("  <locsWrittenTo>  %zu location(s)\n",
                   LocsWrittenTo.size());
  Out += strFormat("  <notWritable>    %zu location(s)\n",
                   NotWritable.size());
  Out += "  <control>\n";
  Out += strFormat("    <env>          %zu binding(s)\n",
                   CallStack.empty() ? 0 : CallStack.back().Env.size());
  Out += strFormat("  <callStack>      %zu frame(s)\n", CallStack.size());
  Out += strFormat("  <out>            %zu byte(s)\n", Output.size());
  Out += "</T>\n";
  return Out;
}

const char *RuleChain::apply(Machine &M, RuleContext &Ctx) const {
  for (auto It = Rules.rbegin(); It != Rules.rend(); ++It)
    if (It->Body(M, Ctx))
      return It->Name.c_str();
  return nullptr;
}

std::vector<std::string> RuleChain::names() const {
  std::vector<std::string> Names;
  for (const Rule &R : Rules)
    Names.push_back(R.Name);
  return Names;
}

Machine::Machine(const AstContext &Ctx, MachineOptions Opts, UbSink &Sink)
    : Ctx(Ctx), Opts(Opts), Sink(Sink),
      Chooser(Opts.Order, Opts.Seed) {
  buildRuleChains();
  if (Opts.Style == RuleStyle::Declarative && Opts.Strict) {
    OwnedMonitors = makeDeclarativeMonitors();
    for (auto &M : OwnedMonitors)
      Monitors.push_back(M.get());
  }
}

Machine::Machine(const AstContext &Ctx, MachineOptions Opts, UbSink &Sink,
                 const MachineSnapshot &Snap, std::vector<uint8_t> Decisions)
    : Ctx(Ctx), Opts(Opts), Sink(Sink), Conf(Snap.Conf),
      Chooser(Snap.Chooser) {
  // The configuration copy is cheap: memory objects are shared
  // copy-on-write and only cloned when this fork first writes them.
  Chooser.resumeReplay(std::move(Decisions));
  buildRuleChains();
  assert(Opts.Style != RuleStyle::Declarative &&
         "declarative monitors carry state a snapshot cannot capture");
}

MachineSnapshot Machine::captureChoiceSnapshot() const {
  assert(PendingChoiceNode && "only valid inside a BeforeChoiceHook");
  MachineSnapshot Snap{Conf, Chooser};
  // Rewind to the top of the in-flight step: the expression item whose
  // operand scheduling triggered the choice was already popped (and
  // nothing else happened since — scheduleOperands is its first
  // effect), and the step counter was already bumped. Restoring both
  // makes resumption re-execute the step exactly as a from-scratch
  // replay would.
  Snap.Conf.K.push_back(KItem::expr(PendingChoiceNode));
  --Snap.Conf.Steps;
  return Snap;
}

std::string Machine::currentFunctionName() const {
  if (Conf.CallStack.empty() || !Conf.CallStack.back().Fn)
    return "<startup>";
  return Ctx.Interner.str(Conf.CallStack.back().Fn->Name);
}

void Machine::flagUb(UbKind Kind, SourceLoc Loc) {
  Sink.report(Kind, currentFunctionName(), Loc);
  if (Opts.Strict && Opts.StopAtFirstUb)
    Conf.Status = RunStatus::UbDetected;
}

void Machine::flagUbCode(uint16_t CatalogId, SourceLoc Loc) {
  flagUb(static_cast<UbKind>(CatalogId), Loc);
}

void Machine::fault(const char *Why, SourceLoc Loc) {
  Sink.report(UbReport(UbKind::None,
                       strFormat("hardware fault: %s", Why),
                       currentFunctionName(), Loc));
  Conf.Status = RunStatus::Fault;
}

void Machine::seqPoint() {
  Conf.LocsWrittenTo.clear();
  for (ExecMonitor *M : Monitors)
    M->onSeqPoint(*this);
}

uint32_t Machine::functionObject(const FunctionDecl *F) {
  auto It = Conf.FuncObjects.find(F);
  if (It != Conf.FuncObjects.end())
    return It->second;
  uint32_t Id = Conf.Mem.createFunction(F, F->Name);
  Conf.FuncObjects[F] = Id;
  Conf.FuncByObject[Id] = F;
  return Id;
}

uint32_t Machine::literalObject(const StringLitExpr *S) {
  auto It = Conf.LiteralObjects.find(S);
  if (It != Conf.LiteralObjects.end())
    return It->second;
  uint64_t Size = S->Bytes.size() + 1;
  uint32_t Id = Conf.Mem.create(StorageKind::Literal, Size, S->Ty, NoSymbol);
  MemObject *Obj = Conf.Mem.mutate(Id);
  for (size_t I = 0; I < S->Bytes.size(); ++I)
    Obj->Bytes[I] = Byte::concrete(static_cast<uint8_t>(S->Bytes[I]));
  Obj->Bytes[S->Bytes.size()] = Byte::concrete(0);
  // String literals are not writable (modifying one is UB 18).
  for (uint64_t I = 0; I < Size; ++I)
    Conf.NotWritable.insert({Id, static_cast<int64_t>(I)});
  Conf.LiteralObjects[S] = Id;
  for (ExecMonitor *M : Monitors)
    M->onAlloc(*this, *Obj);
  return Id;
}

uint32_t Machine::createObjectForDecl(const VarDecl *D,
                                      StorageKind Storage) {
  uint64_t Size = D->Ty.Ty->isCompleteObjectType() ? Ctx.Types.sizeOf(D->Ty)
                                                   : 0;
  // Absurd extents (e.g. the statically-flagged int a[-1]) get a
  // zero-size object: any access is then out of bounds.
  if (Size > (1ull << 24))
    Size = 0;
  uint32_t Id = Conf.Mem.create(Storage, Size, D->Ty, D->Name);
  if (Storage == StorageKind::Global || Storage == StorageKind::StaticLocal)
    zeroFill(Id, 0, Size); // static storage duration is zero-initialized
  if (Opts.TrackConst)
    protectConstRanges(Id, D->Ty, 0);
  for (ExecMonitor *M : Monitors)
    M->onAlloc(*this, *Conf.Mem.find(Id));
  return Id;
}

void Machine::zeroFill(uint32_t ObjId, uint64_t Offset, uint64_t Len) {
  MemObject *Obj = Conf.Mem.mutate(ObjId);
  assert(Obj && "zeroFill of unknown object");
  for (uint64_t I = 0; I < Len && Offset + I < Obj->Size; ++I)
    Obj->Bytes[Offset + I] = Byte::concrete(0);
}

/// Whether any part of \p Ty is const-qualified.
static bool containsConst(QualType Ty) {
  const Type *T = Ty.Ty;
  if (!T)
    return false;
  if (Ty.isConst())
    return true;
  if (T->isArray())
    return containsConst(T->Pointee);
  if (T->isRecord() && T->Record->Complete)
    for (const FieldInfo &Field : T->Record->Fields)
      if (containsConst(Field.Ty))
        return true;
  return false;
}

void Machine::protectConstRanges(uint32_t ObjId, QualType Ty,
                                 uint64_t Offset) {
  const Type *T = Ty.Ty;
  if (!T || !containsConst(Ty))
    return;
  const MemObject *Obj = Conf.Mem.find(ObjId);
  uint64_t Bound = Obj ? Obj->Size : 0;
  if (Ty.isConst()) {
    if (Offset >= Bound)
      return;
    uint64_t Size = std::min(Ctx.Types.sizeOf(Ty), Bound - Offset);
    for (uint64_t I = 0; I < Size; ++I)
      Conf.NotWritable.insert({ObjId, static_cast<int64_t>(Offset + I)});
    return;
  }
  if (T->isArray()) {
    uint64_t ElemSize = Ctx.Types.sizeOf(T->Pointee);
    if (ElemSize == 0)
      return;
    uint64_t Count = std::min<uint64_t>(T->ArraySize,
                                        Bound / ElemSize + 1);
    for (uint64_t I = 0; I < Count; ++I)
      protectConstRanges(ObjId, T->Pointee, Offset + I * ElemSize);
    return;
  }
  if (T->isRecord()) {
    for (const FieldInfo &Field : T->Record->Fields)
      protectConstRanges(ObjId, Field.Ty, Offset + Field.Offset);
  }
}

/// Collects static-duration locals in a function body.
static void collectStaticLocals(const Stmt *S,
                                std::vector<const VarDecl *> &Out) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
      collectStaticLocals(Sub, Out);
    return;
  case StmtKind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->Decls)
      if (V->Storage == StorageClass::Static)
        Out.push_back(V);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectStaticLocals(I->Then, Out);
    collectStaticLocals(I->Else, Out);
    return;
  }
  case StmtKind::While:
    collectStaticLocals(cast<WhileStmt>(S)->Body, Out);
    return;
  case StmtKind::Do:
    collectStaticLocals(cast<DoStmt>(S)->Body, Out);
    return;
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    collectStaticLocals(F->Init, Out);
    collectStaticLocals(F->Body, Out);
    return;
  }
  case StmtKind::Switch:
    collectStaticLocals(cast<SwitchStmt>(S)->Body, Out);
    return;
  case StmtKind::Case:
    collectStaticLocals(cast<CaseStmt>(S)->Sub, Out);
    return;
  case StmtKind::Default:
    collectStaticLocals(cast<DefaultStmt>(S)->Sub, Out);
    return;
  case StmtKind::Label:
    collectStaticLocals(cast<LabelStmt>(S)->Sub, Out);
    return;
  default:
    return;
  }
}

void Machine::initStaticStorage() {
  // Globals first, in declaration order.
  for (const VarDecl *G : Ctx.TU.Globals) {
    if (G->Storage == StorageClass::Extern && !G->Init)
      continue; // tentative external; give it storage anyway
    uint32_t Id = createObjectForDecl(G, StorageKind::Global);
    Conf.GlobalEnv[G->DeclId] = Id;
  }
  // Static locals.
  for (const FunctionDecl *F : Ctx.TU.Functions) {
    if (!F->Body)
      continue;
    std::vector<const VarDecl *> Statics;
    collectStaticLocals(F->Body, Statics);
    for (const VarDecl *V : Statics) {
      uint32_t Id = createObjectForDecl(V, StorageKind::StaticLocal);
      Conf.GlobalEnv[V->DeclId] = Id;
    }
  }
  // Initializers run as ordinary (constant) stores before main.
  // Push in reverse so the first global initializes first.
  std::vector<const VarDecl *> WithInit;
  for (const VarDecl *G : Ctx.TU.Globals)
    if (G->Init)
      WithInit.push_back(G);
  for (const FunctionDecl *F : Ctx.TU.Functions) {
    if (!F->Body)
      continue;
    std::vector<const VarDecl *> Statics;
    collectStaticLocals(F->Body, Statics);
    for (const VarDecl *V : Statics)
      if (V->Init)
        WithInit.push_back(V);
  }
  for (auto It = WithInit.rbegin(); It != WithInit.rend(); ++It) {
    uint32_t Id = Conf.GlobalEnv[(*It)->DeclId];
    Conf.K.push_back(KItem::simple(KKind::SeqPoint));
    pushInitStores(Id, *It, (*It)->Ty, 0, (*It)->Init);
  }
}

RunStatus Machine::run() {
  // Startup frame so lookups and diagnostics have a context.
  Frame Startup;
  Conf.CallStack.push_back(Startup);

  // A pseudo caller frame above the program's stack: on real hardware,
  // moderate stack overflows land in the caller's frame (mapped, silent
  // garbage) rather than faulting. The permissive machine models that;
  // the strict machine never consults concrete addresses.
  Conf.Mem.create(StorageKind::Auto, 4096, QualType(), NoSymbol);

  initStaticStorage();
  while (Conf.Status == RunStatus::Running && !Conf.K.empty())
    if (!step())
      break;
  if (Conf.Status != RunStatus::Running)
    return Conf.Status;
  Conf.Values.clear();

  const FunctionDecl *Main = Ctx.TU.findFunction(Ctx.Interner.lookup("main"));
  if (!Main || !Main->Body) {
    Conf.Status = RunStatus::Internal;
    return Conf.Status;
  }
  // Call main with zero/null arguments.
  Frame MainFrame;
  MainFrame.Fn = Main;
  KItem Ret = KItem::simple(KKind::CallReturn);
  Ret.Callee = Main;
  for (const VarDecl *Param : Main->Params) {
    uint32_t Id = createObjectForDecl(Param, StorageKind::Auto);
    MainFrame.Env[Param->DeclId] = Id;
    MainFrame.ParamObjects.push_back(Id);
    Ret.ObjectsToKill.push_back(Id);
    // argc = 0, argv = NULL.
    if (Param->Ty.Ty->isIntegral())
      storeScalar(SymPointer(Id, 0), Param->Ty, Value::makeInt(Param->Ty.Ty, 0),
                  Main->Loc, /*IsInit=*/true);
    else if (Param->Ty.Ty->isPointer())
      storeScalar(SymPointer(Id, 0), Param->Ty,
                  Value::makePointer(Param->Ty.Ty, SymPointer::null()),
                  Main->Loc, /*IsInit=*/true);
  }
  Conf.CallStack.push_back(std::move(MainFrame));
  Conf.K.push_back(Ret);
  Conf.K.push_back(KItem::stmt(Main->Body));

  return resume();
}

RunStatus Machine::resume() {
  while (Conf.Status == RunStatus::Running)
    if (!step())
      break;

  if (Conf.Status == RunStatus::Completed && !Conf.Values.empty()) {
    const Value &Result = Conf.Values.back();
    if (Result.isInt())
      Conf.ExitCode = static_cast<int>(Result.asSigned(Ctx.Types));
  }
  return Conf.Status;
}

bool Machine::step() {
  if (Conf.Status != RunStatus::Running)
    return false;
  if (Conf.K.empty()) {
    Conf.Status = RunStatus::Completed;
    return false;
  }
  if (++Conf.Steps > Opts.StepLimit) {
    Conf.Status = RunStatus::StepLimit;
    return false;
  }
  // Cancellation token (search): polled coarsely so the hot path pays
  // one predictable branch, yet runs stop within ~256 steps of the
  // first-undefinedness signal.
  if ((Conf.Steps & 0xFF) == 0 && ShouldCancel && ShouldCancel()) {
    Conf.Status = RunStatus::Cancelled;
    return false;
  }
  stepItem(Conf.K.take());
  return Conf.Status == RunStatus::Running;
}

void Machine::stepItem(KItem Item) {
  switch (Item.K) {
  case KKind::Expr:
    stepExpr(Item.E);
    return;
  case KKind::Stmt:
    stepStmt(Item.S);
    return;
  case KKind::EvalOperands:
    stepEvalOperands(std::move(Item));
    return;
  case KKind::LvToRv:
    stepLvToRv(Item.E);
    return;
  case KKind::CastApply:
    stepCastApply(Item.E);
    return;
  case KKind::LogicRhs:
    stepLogicRhs(Item.E);
    return;
  case KKind::LogicDone:
    stepLogicDone(Item.E);
    return;
  case KKind::CondPick:
    stepCondPick(Item.E);
    return;
  case KKind::Pop:
    if (!Conf.Values.empty())
      Conf.Values.pop_back();
    return;
  case KKind::SeqPoint:
    seqPoint();
    return;
  case KKind::InitVar:
    stepInitVar(Item);
    return;
  case KKind::StoreTo:
    stepStoreTo(Item);
    return;
  case KKind::LeaveBlock:
    leaveBlock(Item);
    return;
  case KKind::IfDecide: {
    const auto *I = cast<IfStmt>(Item.S);
    Value V = popValue(I->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    if (V.isOpaque()) {
      flagUb(UbKind::ReadIndeterminateValue, I->Cond->Loc);
      return;
    }
    seqPoint();
    if (V.truthy(Ctx.Types)) {
      Conf.K.push_back(KItem::stmt(I->Then));
    } else if (I->Else) {
      Conf.K.push_back(KItem::stmt(I->Else));
    }
    return;
  }
  case KKind::WhileTest: {
    const auto *W = cast<WhileStmt>(Item.S);
    Conf.K.push_back(KItem::forStmt(KKind::WhileDecide, W));
    Conf.K.push_back(KItem::expr(W->Cond));
    return;
  }
  case KKind::WhileDecide: {
    const auto *W = cast<WhileStmt>(Item.S);
    Value V = popValue(W->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    if (V.isOpaque()) {
      flagUb(UbKind::ReadIndeterminateValue, W->Cond->Loc);
      return;
    }
    seqPoint();
    if (V.truthy(Ctx.Types)) {
      Conf.K.push_back(KItem::forStmt(KKind::WhileTest, W));
      Conf.K.push_back(KItem::stmt(W->Body));
    }
    return;
  }
  case KKind::DoTest: {
    const auto *D = cast<DoStmt>(Item.S);
    Conf.K.push_back(KItem::forStmt(KKind::DoDecide, D));
    Conf.K.push_back(KItem::expr(D->Cond));
    return;
  }
  case KKind::DoDecide: {
    const auto *D = cast<DoStmt>(Item.S);
    Value V = popValue(D->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    seqPoint();
    if (V.truthy(Ctx.Types)) {
      Conf.K.push_back(KItem::forStmt(KKind::DoTest, D));
      Conf.K.push_back(KItem::stmt(D->Body));
    }
    return;
  }
  case KKind::ForTest: {
    const auto *F = cast<ForStmt>(Item.S);
    if (F->Cond) {
      Conf.K.push_back(KItem::forStmt(KKind::ForDecide, F));
      Conf.K.push_back(KItem::expr(F->Cond));
    } else {
      Conf.K.push_back(KItem::forStmt(KKind::ForInc, F));
      Conf.K.push_back(KItem::stmt(F->Body));
    }
    return;
  }
  case KKind::ForDecide: {
    const auto *F = cast<ForStmt>(Item.S);
    Value V = popValue(F->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    seqPoint();
    if (V.truthy(Ctx.Types)) {
      Conf.K.push_back(KItem::forStmt(KKind::ForInc, F));
      Conf.K.push_back(KItem::stmt(F->Body));
    }
    return;
  }
  case KKind::ForInc: {
    const auto *F = cast<ForStmt>(Item.S);
    Conf.K.push_back(KItem::forStmt(KKind::ForTest, F));
    if (F->Inc) {
      Conf.K.push_back(KItem::simple(KKind::SeqPoint));
      Conf.K.push_back(KItem::simple(KKind::Pop));
      Conf.K.push_back(KItem::expr(F->Inc));
    }
    return;
  }
  case KKind::SwitchDispatch: {
    const auto *W = cast<SwitchStmt>(Item.S);
    Value V = popValue(W->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    seqPoint();
    performSwitchDispatch(W, V);
    return;
  }
  case KKind::SwitchEnd:
    return; // the break target; nothing to do
  case KKind::DoReturn:
    unwindReturn(Item.HasValue, Item.S ? Item.S->Loc : SourceLoc());
    return;
  case KKind::CallReturn: {
    // Fell off the end of a function body.
    for (uint32_t Id : Item.ObjectsToKill)
      Conf.Mem.markDead(Id);
    bool IsMain = Item.Callee &&
                  Ctx.Interner.str(Item.Callee->Name) == "main";
    Conf.CallStack.pop_back();
    Value Result = Value::empty();
    if (Item.Callee && !Item.Callee->FnTy->ReturnType.Ty->isVoid()) {
      if (IsMain) {
        // Reaching the } of main returns 0 (C99 5.1.2.2.3).
        Result = Value::makeInt(Ctx.Types.intTy(), 0);
      } else {
        Result.MissingReturn = true;
        Result.Ty = Item.Callee->FnTy->ReturnType.Ty;
      }
    }
    pushValue(std::move(Result));
    seqPoint();
    if (Conf.CallStack.empty() ||
        (Conf.CallStack.size() == 1 && IsMain)) {
      Conf.Status = RunStatus::Completed;
    }
    return;
  }
  }
}

Value Machine::popValue(SourceLoc Loc) {
  if (Conf.Values.empty()) {
    Conf.Status = RunStatus::Internal;
    return Value::empty();
  }
  Value V = std::move(Conf.Values.back());
  Conf.Values.pop_back();
  if (V.MissingReturn) {
    // Using the value of a call whose function returned without one
    // (C11 6.9.1p12).
    flagUb(UbKind::MissingReturnValueUsed, Loc);
    if (Opts.Strict && Opts.StopAtFirstUb)
      return V;
    // Permissive hardware hands back whatever was in the register.
    V = Value::makeInt(V.Ty && V.Ty->isIntegral() ? V.Ty : Ctx.Types.intTy(),
                       0xCDCDCDCDu);
  }
  return V;
}

//===----------------------------------------------------------------------===//
// Unwinding: break, continue, return, goto, switch dispatch
//===----------------------------------------------------------------------===//

void Machine::unwindBreak(SourceLoc Loc) {
  (void)Loc;
  while (!Conf.K.empty()) {
    KItem Item = Conf.K.take();
    switch (Item.K) {
    case KKind::LeaveBlock:
      for (uint32_t Id : Item.ObjectsToKill)
        Conf.Mem.markDead(Id);
      break;
    case KKind::WhileTest:
    case KKind::DoTest:
    case KKind::ForTest:
    case KKind::ForInc:
    case KKind::SwitchEnd:
      return; // popped the loop/switch continuation: we are out
    case KKind::CallReturn:
      // break outside any loop: sema rejects this; defensive stop.
      Conf.K.push_back(std::move(Item));
      Conf.Status = RunStatus::Internal;
      return;
    default:
      break;
    }
  }
  Conf.Status = RunStatus::Internal;
}

void Machine::unwindContinue(SourceLoc Loc) {
  (void)Loc;
  while (!Conf.K.empty()) {
    KKind Top = Conf.K.back().K;
    if (Top == KKind::WhileTest || Top == KKind::DoTest ||
        Top == KKind::ForInc)
      return; // keep it: it is exactly the continue target
    KItem Item = Conf.K.take();
    if (Item.K == KKind::LeaveBlock) {
      for (uint32_t Id : Item.ObjectsToKill)
        Conf.Mem.markDead(Id);
    } else if (Item.K == KKind::CallReturn) {
      Conf.K.push_back(std::move(Item));
      Conf.Status = RunStatus::Internal;
      return;
    }
  }
  Conf.Status = RunStatus::Internal;
}

void Machine::unwindReturn(bool HasValue, SourceLoc Loc) {
  Value Result = Value::empty();
  if (HasValue) {
    Result = popValue(Loc);
    if (Conf.Status != RunStatus::Running)
      return;
  }
  while (!Conf.K.empty()) {
    KItem Item = Conf.K.take();
    if (Item.K == KKind::LeaveBlock) {
      for (uint32_t Id : Item.ObjectsToKill)
        Conf.Mem.markDead(Id);
      continue;
    }
    if (Item.K == KKind::CallReturn) {
      for (uint32_t Id : Item.ObjectsToKill)
        Conf.Mem.markDead(Id);
      bool IsMain = Item.Callee &&
                    Ctx.Interner.str(Item.Callee->Name) == "main";
      Conf.CallStack.pop_back();
      if (!HasValue && Item.Callee &&
          !Item.Callee->FnTy->ReturnType.Ty->isVoid()) {
        Result.MissingReturn = true;
        Result.Ty = Item.Callee->FnTy->ReturnType.Ty;
      }
      pushValue(std::move(Result));
      seqPoint();
      if (Conf.CallStack.empty() ||
          (Conf.CallStack.size() == 1 && IsMain))
        Conf.Status = RunStatus::Completed;
      return;
    }
  }
  Conf.Status = RunStatus::Internal;
}

bool Machine::stmtContains(const Stmt *Haystack, const Stmt *Needle) {
  if (!Haystack)
    return false;
  if (Haystack == Needle)
    return true;
  switch (Haystack->Kind) {
  case StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(Haystack)->Body)
      if (stmtContains(Sub, Needle))
        return true;
    return false;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(Haystack);
    return stmtContains(I->Then, Needle) || stmtContains(I->Else, Needle);
  }
  case StmtKind::While:
    return stmtContains(cast<WhileStmt>(Haystack)->Body, Needle);
  case StmtKind::Do:
    return stmtContains(cast<DoStmt>(Haystack)->Body, Needle);
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(Haystack);
    return stmtContains(F->Init, Needle) || stmtContains(F->Body, Needle);
  }
  case StmtKind::Switch:
    return stmtContains(cast<SwitchStmt>(Haystack)->Body, Needle);
  case StmtKind::Case:
    return stmtContains(cast<CaseStmt>(Haystack)->Sub, Needle);
  case StmtKind::Default:
    return stmtContains(cast<DefaultStmt>(Haystack)->Sub, Needle);
  case StmtKind::Label:
    return stmtContains(cast<LabelStmt>(Haystack)->Sub, Needle);
  default:
    return false;
  }
}

bool Machine::pushPathTo(const Stmt *S, const Stmt *Target) {
  if (!S)
    return false;
  if (S == Target) {
    Conf.K.push_back(KItem::stmt(S));
    return true;
  }
  switch (S->Kind) {
  case StmtKind::Compound: {
    const auto *B = cast<CompoundStmt>(S);
    int ChildIdx = -1;
    for (size_t I = 0; I < B->Body.size(); ++I) {
      if (stmtContains(B->Body[I], Target)) {
        ChildIdx = static_cast<int>(I);
        break;
      }
    }
    if (ChildIdx < 0)
      return false;
    enterBlock(B);
    for (size_t I = B->Body.size(); I-- > static_cast<size_t>(ChildIdx) + 1;)
      Conf.K.push_back(KItem::stmt(B->Body[I]));
    return pushPathTo(B->Body[ChildIdx], Target);
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    if (stmtContains(I->Then, Target))
      return pushPathTo(I->Then, Target);
    return pushPathTo(I->Else, Target);
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    Conf.K.push_back(KItem::forStmt(KKind::WhileTest, W));
    return pushPathTo(W->Body, Target);
  }
  case StmtKind::Do: {
    const auto *D = cast<DoStmt>(S);
    Conf.K.push_back(KItem::forStmt(KKind::DoTest, D));
    return pushPathTo(D->Body, Target);
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    // Entering a for statement from outside: its init scope objects
    // come alive (uninitialized), then the body runs with the normal
    // increment continuation.
    KItem Leave = KItem::forStmt(KKind::LeaveBlock, F);
    if (F->Init && isa<DeclStmt>(F->Init)) {
      for (const VarDecl *V : cast<DeclStmt>(F->Init)->Decls) {
        if (V->Storage == StorageClass::Static)
          continue;
        uint32_t Id = createObjectForDecl(V, StorageKind::Auto);
        Conf.frame().Env[V->DeclId] = Id;
        Leave.ObjectsToKill.push_back(Id);
      }
    }
    Conf.K.push_back(std::move(Leave));
    Conf.K.push_back(KItem::forStmt(KKind::ForInc, F));
    return pushPathTo(F->Body, Target);
  }
  case StmtKind::Switch: {
    const auto *W = cast<SwitchStmt>(S);
    Conf.K.push_back(KItem::forStmt(KKind::SwitchEnd, W));
    return pushPathTo(W->Body, Target);
  }
  case StmtKind::Case:
    return pushPathTo(cast<CaseStmt>(S)->Sub, Target);
  case StmtKind::Default:
    return pushPathTo(cast<DefaultStmt>(S)->Sub, Target);
  case StmtKind::Label:
    return pushPathTo(cast<LabelStmt>(S)->Sub, Target);
  default:
    return false;
  }
}

void Machine::performGoto(const GotoStmt *G) {
  const LabelStmt *Target = G->Target;
  if (!Target) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  // Unwind to the innermost enclosing block that (still) contains the
  // label; everything further in is left, ending lifetimes on the way.
  while (!Conf.K.empty()) {
    const KItem &Top = Conf.K.back();
    if (Top.K == KKind::LeaveBlock && Top.S &&
        stmtContains(Top.S, Target)) {
      // Common ancestor found: descend from here.
      const Stmt *Anchor = Top.S;
      if (const auto *B = dynCast<CompoundStmt>(Anchor)) {
        int ChildIdx = -1;
        for (size_t I = 0; I < B->Body.size(); ++I) {
          if (stmtContains(B->Body[I], Target)) {
            ChildIdx = static_cast<int>(I);
            break;
          }
        }
        assert(ChildIdx >= 0 && "anchor block lost the label");
        for (size_t I = B->Body.size();
             I-- > static_cast<size_t>(ChildIdx) + 1;)
          Conf.K.push_back(KItem::stmt(B->Body[I]));
        pushPathTo(B->Body[ChildIdx], Target);
        return;
      }
      // A for-scope LeaveBlock: descend into the for statement's body.
      if (const auto *F = dynCast<ForStmt>(Anchor)) {
        Conf.K.push_back(KItem::forStmt(KKind::ForInc, F));
        pushPathTo(F->Body, Target);
        return;
      }
      Conf.Status = RunStatus::Internal;
      return;
    }
    if (Top.K == KKind::CallReturn) {
      // The function body block always contains every label, so this
      // means the label was not found: an interpreter bug.
      Conf.Status = RunStatus::Internal;
      return;
    }
    KItem Item = Conf.K.take();
    if (Item.K == KKind::LeaveBlock)
      for (uint32_t Id : Item.ObjectsToKill)
        Conf.Mem.markDead(Id);
  }
  Conf.Status = RunStatus::Internal;
}

void Machine::performSwitchDispatch(const SwitchStmt *W, const Value &V) {
  if (!V.isInt()) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  int64_t Selector = V.asSigned(Ctx.Types);
  const Stmt *Target = nullptr;
  for (const CaseStmt *Case : W->Cases) {
    if (Case->Value == Selector) {
      Target = Case;
      break;
    }
  }
  if (!Target && W->Default)
    Target = W->Default;
  if (!Target)
    return; // no matching label: the switch body is skipped entirely
  if (!pushPathTo(W->Body, Target))
    Conf.Status = RunStatus::Internal;
}

//===----------------------------------------------------------------------===//
// Synchronous call-back into the semantics (builtins with callbacks)
//===----------------------------------------------------------------------===//

const FunctionDecl *Machine::functionFor(const Value &V) const {
  if (!V.isPointer() || V.Ptr.FromInteger || V.Ptr.Base == 0)
    return nullptr;
  auto It = Conf.FuncByObject.find(V.Ptr.Base);
  return It == Conf.FuncByObject.end() ? nullptr : It->second;
}

bool Machine::callFunctionSync(const FunctionDecl *Fn,
                               std::vector<Value> Args, SourceLoc Loc,
                               Value &Result) {
  assert(Fn && Fn->Body && "sync call needs a defined function");
  if (Conf.CallStack.size() >= Opts.MaxCallDepth) {
    flagUb(UbKind::RecursionLimitExceeded, Loc);
    return false;
  }
  size_t KDepth = Conf.K.size();
  size_t VDepth = Conf.Values.size();

  Frame NewFrame;
  NewFrame.Fn = Fn;
  NewFrame.CallLoc = Loc;
  KItem Ret = KItem::simple(KKind::CallReturn);
  Ret.Callee = Fn;
  for (size_t I = 0; I < Fn->Params.size(); ++I) {
    const VarDecl *Param = Fn->Params[I];
    uint32_t Id = createObjectForDecl(Param, StorageKind::Auto);
    NewFrame.Env[Param->DeclId] = Id;
    NewFrame.ParamObjects.push_back(Id);
    Ret.ObjectsToKill.push_back(Id);
    if (I < Args.size()) {
      Value Arg = convertForMachine(Args[I], Param->Ty.Ty, Loc);
      if (Conf.Status != RunStatus::Running)
        return false;
      storeScalar(SymPointer(Id, 0), Param->Ty, Arg, Loc, /*IsInit=*/true);
    }
  }
  Conf.CallStack.push_back(std::move(NewFrame));
  seqPoint();
  Conf.K.push_back(std::move(Ret));
  Conf.K.push_back(KItem::stmt(Fn->Body));

  // The C++ call stack below this frame (the builtin's own state) is
  // not part of the configuration: snapshots must not be captured while
  // this loop is live (see inSyncCall).
  ++SyncDepth;
  while (Conf.Status == RunStatus::Running && Conf.K.size() > KDepth) {
    if (++Conf.Steps > Opts.StepLimit) {
      Conf.Status = RunStatus::StepLimit;
      --SyncDepth;
      return false;
    }
    stepItem(Conf.K.take());
  }
  --SyncDepth;
  if (Conf.Status != RunStatus::Running)
    return false;
  if (Conf.Values.size() != VDepth + 1) {
    Conf.Status = RunStatus::Internal;
    return false;
  }
  Result = popValue(Loc);
  return Conf.Status == RunStatus::Running;
}
