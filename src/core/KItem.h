//===- core/KItem.h - Items of the k cell ----------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computation (k) cell is a stack of these items; the item on top
/// is the next thing to compute (the paper's redex, section 3.1). AST
/// nodes are pushed as Expr/Stmt items; the remaining kinds are the
/// continuation frames the small-step rules leave behind.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_KITEM_H
#define CUNDEF_CORE_KITEM_H

#include "core/Value.h"

#include <vector>

namespace cundef {

enum class KKind : uint8_t {
  Expr, ///< evaluate E
  Stmt, ///< execute S

  // Expression continuations.
  EvalOperands, ///< schedule operand evaluation in a chosen order
  LvToRv,       ///< read through the lvalue on top of the value stack
  CastApply,    ///< apply E's (implicit or explicit) cast to the value
  LogicRhs,     ///< decide a short-circuit operator after its lhs
  LogicDone,    ///< collapse the rhs of &&/|| to 0/1
  CondPick,     ///< pick a conditional arm
  Pop,          ///< discard the top value (discarded full expressions)
  SeqPoint,     ///< a sequence point: empty the locsWrittenTo cell

  // Initialization.
  InitVar, ///< scalar initializer value -> variable's object
  StoreTo, ///< store the value to (object of D) + Offset with type Ty

  // Statement continuations.
  LeaveBlock,     ///< end the lifetimes of the block's objects
  IfDecide,       ///< branch on the condition value
  WhileTest,      ///< (re)evaluate a while condition
  WhileDecide,    ///< act on the while condition value
  DoTest,         ///< evaluate a do-while condition after the body
  DoDecide,       ///< act on the do-while condition value
  ForTest,        ///< (re)evaluate a for condition
  ForDecide,      ///< act on the for condition value
  ForInc,         ///< run the for increment, then retest
  SwitchDispatch, ///< jump to the matching case
  SwitchEnd,      ///< break target of a switch
  DoReturn,       ///< unwind to the caller with an optional value
  CallReturn,     ///< call boundary marker; holds the callee
};

/// One item of the k cell. A tagged struct rather than a class
/// hierarchy so that configurations remain cheap, flat value types that
/// search can clone.
struct KItem {
  KKind K = KKind::Expr;
  const Expr *E = nullptr;
  const Stmt *S = nullptr;

  // EvalOperands payload: operands, their evaluated values, the chosen
  // evaluation order (a permutation of operand indices), and the next
  // position in that order. When Idx == Perm.size() the finish handler
  // identified by E runs.
  std::vector<const Expr *> Operands;
  std::vector<Value> Results;
  std::vector<uint8_t> Perm;
  uint8_t Idx = 0;

  // StoreTo payload.
  const VarDecl *D = nullptr;
  uint64_t Offset = 0;
  QualType Ty;

  // LeaveBlock/CallReturn payload: object ids whose lifetime ends.
  std::vector<uint32_t> ObjectsToKill;
  // CallReturn payload.
  const FunctionDecl *Callee = nullptr;
  // DoReturn payload.
  bool HasValue = false;

  static KItem expr(const Expr *E) {
    KItem Item;
    Item.K = KKind::Expr;
    Item.E = E;
    return Item;
  }
  static KItem stmt(const Stmt *S) {
    KItem Item;
    Item.K = KKind::Stmt;
    Item.S = S;
    return Item;
  }
  static KItem simple(KKind K) {
    KItem Item;
    Item.K = K;
    return Item;
  }
  static KItem forExpr(KKind K, const Expr *E) {
    KItem Item;
    Item.K = K;
    Item.E = E;
    return Item;
  }
  static KItem forStmt(KKind K, const Stmt *S) {
    KItem Item;
    Item.K = K;
    Item.S = S;
    return Item;
  }
};

/// Human-readable name of a k item kind (for traces and tests).
const char *kKindName(KKind K);

} // namespace cundef

#endif // CUNDEF_CORE_KITEM_H
