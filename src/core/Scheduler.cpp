//===- core/Scheduler.cpp - Work-stealing search scheduling ------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Determinism model (docs/SEARCH.md has the full argument):
//
//  * Execution is speculative. A task's machine runs as soon as any
//    worker picks it up, consulting the visited-set only for entries
//    *published by earlier generations* — a subset of what the wave
//    engine's barrier would have committed, so an in-flight
//    cancellation is always one the wave engine would also have made,
//    and a missed one only means the run executes further than strictly
//    needed. The task records its raw decision trace and the full
//    (depth, fingerprint) stream it observed.
//
//  * Commit is canonical. Per program, tasks finalize in (generation,
//    lex prefix) order — the exact order the wave engine's sorted
//    barrier used. Generation g finalizes only after generation g-1
//    finished entirely, so at finalization the visited-set restricted
//    to generations < g is complete; the task's *effective* outcome
//    (first committed hit in its stream = the wave engine's
//    cancellation point; children = flippable points of the truncated
//    trace; undefinedness discarded if it occurred past the cut) is a
//    pure function of (prefix, that set). Induction over the commit
//    order makes every committed output equal to the wave engine's.
//
//  * Undefinedness wins canonically. The first task to finalize with an
//    effective UB verdict is the winner: all canonically smaller tasks
//    already finalized clean, and every unfinalized task is canonically
//    larger. In-flight runs then cancel via the program's done flag.
//
// The budget is applied where the wave engine applied it: when a
// generation seals (its predecessor fully finalized), it is sorted,
// and entries beyond (MaxRuns - runs finalized so far) are dropped as
// unexplored subtrees — including any that already started
// speculatively; their results are discarded, keeping the accounting
// identical to the wave engine's truncation.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>
#include <unordered_set>

using namespace cundef;

//===----------------------------------------------------------------------===//
// SnapshotCache
//===----------------------------------------------------------------------===//

uint64_t SnapshotCache::insert(MachineSnapshot Snap,
                               std::atomic<unsigned> *EvictCounter) {
  if (Capacity == 0)
    return 0;
  std::unique_ptr<MachineSnapshot> Victim; // destroyed outside the lock
  uint64_t Id;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Entries.size() >= Capacity) {
      uint64_t Oldest = Lru.front();
      Lru.pop_front();
      auto It = Entries.find(Oldest);
      Victim = std::move(It->second.Snap);
      if (It->second.EvictCounter)
        It->second.EvictCounter->fetch_add(1, std::memory_order_relaxed);
      Evictions.fetch_add(1, std::memory_order_relaxed);
      Entries.erase(It);
    }
    Id = NextId++;
    Lru.push_back(Id);
    Entry E;
    E.Snap = std::make_unique<MachineSnapshot>(std::move(Snap));
    E.LruIt = std::prev(Lru.end());
    E.EvictCounter = EvictCounter;
    Entries.emplace(Id, std::move(E));
  }
  return Id;
}

std::unique_ptr<MachineSnapshot> SnapshotCache::take(uint64_t Id) {
  if (!Id)
    return nullptr;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Id);
  if (It == Entries.end())
    return nullptr; // evicted: the caller replays its prefix instead
  std::unique_ptr<MachineSnapshot> Snap = std::move(It->second.Snap);
  Lru.erase(It->second.LruIt);
  Entries.erase(It);
  return Snap;
}

void SnapshotCache::drop(uint64_t Id) {
  if (!Id)
    return;
  std::unique_ptr<MachineSnapshot> Dead;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Id);
  if (It == Entries.end())
    return;
  Dead = std::move(It->second.Snap);
  Lru.erase(It->second.LruIt);
  Entries.erase(It);
}

size_t SnapshotCache::pending() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

//===----------------------------------------------------------------------===//
// Scheduler internals
//===----------------------------------------------------------------------===//

namespace {

/// Per-program visited-set with sharded locks. Each key maps to the
/// smallest generation that committed it; speculative lookups accept a
/// hit only from a strictly earlier generation, which makes every
/// in-flight answer a subset of the committed truth.
class VisitedMap {
public:
  bool hitBefore(uint64_t Key, uint32_t Gen) const {
    const Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    return It != S.Map.end() && It->second < Gen;
  }

  void publish(uint64_t Key, uint32_t Gen) {
    Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto [It, Inserted] = S.Map.emplace(Key, Gen);
    if (!Inserted && Gen < It->second)
      It->second = Gen;
  }

private:
  static constexpr size_t NumShards = 16;
  static size_t shardOf(uint64_t Key) {
    // The keys are already splitmix-mixed (searchVisitKey); the top
    // bits are as good as any.
    return static_cast<size_t>(Key >> 60) & (NumShards - 1);
  }
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, uint32_t> Map;
  };
  Shard Shards[NumShards];
};

struct ProgramState;

/// One node of a program's search tree. Lives in its program's arena
/// for the whole scheduler lifetime (deques hold raw pointers).
struct Task {
  ProgramState *Prog = nullptr;
  uint32_t Gen = 0;
  std::vector<uint8_t> Pinned;
  uint64_t SnapId = 0; ///< snapshot cache handle (0 = replay)

  enum Phase : uint8_t { Queued, Executed, Finalized, Dropped };
  std::atomic<uint8_t> State{Queued};
  /// Set when the budget truncation or program completion made this
  /// task irrelevant; an in-flight run polls it and cancels.
  std::atomic<bool> Abandoned{false};

  // --- Raw outputs of the speculative run -----------------------------
  RunStatus Status = RunStatus::Running;
  bool UbFound = false;
  bool Forked = false;
  std::vector<UbReport> Reports;
  std::vector<std::pair<uint8_t, uint8_t>> Trace;
  /// Every (depth, fingerprint) observed at flippable choice points at
  /// or beyond the divergence — including the entry that triggered an
  /// in-flight cancellation (the wave engine's Visited stops just
  /// before it; finalization recomputes the cut from this stream).
  std::vector<std::pair<size_t, uint64_t>> Stream;
  /// (depth, snapshot-cache handle) captured during the run.
  std::vector<std::pair<size_t, uint64_t>> Snaps;
  uint64_t DivergenceFp = 0;
  bool HasDivergence = false;
  /// Root only: the program-visible results of the default-order run.
  std::string Output;
  int ExitCode = 0;
};

bool lexLess(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(), B.end());
}

struct ProgramState {
  size_t Id = 0;
  const AstContext *Ast = nullptr;
  MachineOptions MOpts;
  SearchOptions SOpts;
  bool RootGated = false;
  /// takeResult() ran; reclaimFinished() may free this state.
  bool ResultTaken = false;
  /// Effective gates (same policy as the wave engine).
  bool Dedup = true;
  bool Snapshots = true;

  /// All tasks ever created (stable addresses; deques point in here).
  std::deque<Task> Arena;

  std::mutex CommitMu;
  /// The sealed generation being finalized, sorted canonically.
  std::vector<Task *> CurGen;
  size_t NextFinal = 0;
  /// The next generation, accumulating children (sealed & sorted once
  /// CurGen fully finalizes).
  std::vector<Task *> NextGen;
  /// Runs finalized and kept (= the wave engine's RunsStarted on the
  /// deterministic path).
  unsigned RunsFinalized = 0;
  /// In-generation divergence twins (reset per generation).
  std::unordered_set<uint64_t> SeenDivergence;
  /// Dedup hits / twin prunes committed within the current generation.
  /// The wave engine never aggregates the counters of the wave that
  /// produced the witness (its barrier returns first); when a winner
  /// finalizes, these are rolled back for byte-identical stats.
  unsigned GenDedupHits = 0;
  unsigned GenSubtreesPruned = 0;

  VisitedMap Visited;
  std::atomic<bool> Done{false};
  std::atomic<unsigned> EvictionsAtomic{0};
  std::atomic<unsigned> StealsAtomic{0};
  SearchResult Result;
};

} // namespace

struct SearchScheduler::Impl {
  static unsigned resolveJobs(const Config &Cfg) {
    const unsigned HW = std::max(1u, std::thread::hardware_concurrency());
    unsigned Jobs = Cfg.Jobs ? Cfg.Jobs : HW;
    if (Cfg.ClampJobsToHardware)
      Jobs = std::min(Jobs, HW);
    return std::max(1u, Jobs);
  }

  explicit Impl(Config Cfg)
      : Cfg(Cfg), Jobs(resolveJobs(Cfg)), Cache(Cfg.SnapshotBudget),
        Deques(Jobs) {
    Stats.Jobs = Jobs;
  }

  Config Cfg;
  const unsigned Jobs;
  SnapshotCache Cache;

  struct WorkerDeque {
    std::mutex Mu;
    std::deque<Task *> Q;
  };
  std::vector<WorkerDeque> Deques;
  std::atomic<unsigned> NextPush{0};
  std::atomic<size_t> QueuedCount{0};
  std::atomic<size_t> ProgramsLeft{0};
  std::atomic<uint64_t> GlobalSteals{0};
  std::atomic<uint64_t> PeakFrontier{0};
  std::atomic<uint64_t> RunsExecuted{0};
  std::mutex IdleMu;
  std::condition_variable IdleCv;

  /// Submitted programs, by id. unique_ptr so reclaimFinished() can
  /// free a completed program's arena without disturbing the index
  /// space; a null slot is a reclaimed program.
  std::deque<std::unique_ptr<ProgramState>> Programs;
  /// Guards Programs growth/reclaim (service mode submits while
  /// workers run; the deque's internal map is not safe to index
  /// concurrently with push_back).
  mutable std::mutex SubmitMu;
  SchedulerStats Stats;
  bool Ran = false;

  //===--- Service mode --------------------------------------------------===//

  /// start() was called: workers are persistent, submit() is live.
  std::atomic<bool> Persistent{false};
  std::atomic<bool> Stopping{false};
  std::vector<std::thread> Threads;
  /// Tasks a worker currently holds (popped, not yet finished with);
  /// reclaimFinished() waits for 0 so no worker can be touching a
  /// program state it is about to free.
  std::atomic<size_t> InFlight{0};
  std::atomic<size_t> SubmittedCount{0};
  std::atomic<size_t> FinishedCount{0};
  /// Sum of completed programs' committed dedup hits (live stats()).
  std::atomic<uint64_t> DoneDedupHits{0};
  /// Completion handoff: finishProgram() runs under the program's
  /// commit mutex, so it only queues the id; workers drain the queue
  /// lock-free-of-scheduler-state and invoke the callback, which may
  /// therefore re-enter the scheduler (even submit()). The atomic
  /// mirror of the queue size keeps the idle-wait predicate lock-light.
  std::mutex CompletedMu;
  std::deque<size_t> CompletedQ;
  std::atomic<size_t> CompletedPending{0};
  std::function<void(size_t)> DoneCb;
  /// Signals program completions (waitProgram / drain / reclaim).
  std::mutex DoneMu;
  std::condition_variable DoneCv;

  ProgramState *program(size_t Id) {
    std::lock_guard<std::mutex> Lock(SubmitMu);
    return Id < Programs.size() ? Programs[Id].get() : nullptr;
  }

  void drainCompleted() {
    for (;;) {
      size_t Id;
      {
        std::lock_guard<std::mutex> Lock(CompletedMu);
        if (CompletedQ.empty())
          return;
        Id = CompletedQ.front();
        CompletedQ.pop_front();
        CompletedPending.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (DoneCb)
        DoneCb(Id);
    }
  }

  //===--- Frontier ------------------------------------------------------===//

  void pushTask(Task *T, unsigned Worker) {
    {
      WorkerDeque &D = Deques[Worker % Deques.size()];
      std::lock_guard<std::mutex> Lock(D.Mu);
      D.Q.push_back(T);
    }
    size_t Now = QueuedCount.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t Peak = PeakFrontier.load(std::memory_order_relaxed);
    while (Now > Peak &&
           !PeakFrontier.compare_exchange_weak(Peak, Now,
                                               std::memory_order_relaxed))
      ;
    wakeWorker();
  }

  /// Workers sleep on an untimed predicate wait (a persistent pool
  /// must not poll while idle), so every event that can change the
  /// predicate pairs its notify with the wait mutex — otherwise a
  /// worker between its predicate check and its sleep would miss the
  /// wakeup forever.
  void wakeWorker() {
    { std::lock_guard<std::mutex> Lock(IdleMu); }
    IdleCv.notify_one();
  }
  void wakeAllWorkers() {
    { std::lock_guard<std::mutex> Lock(IdleMu); }
    IdleCv.notify_all();
  }

  /// Pops the oldest task from the worker's own deque, stealing the
  /// oldest from a sibling when empty. Oldest-first keeps execution
  /// close to canonical commit order, which keeps the in-flight
  /// visited-set fresh and speculation waste low.
  ///
  /// InFlight is claimed *under the deque mutex*, before the task
  /// leaves the deque: reclaimFinished() purges the deques and then
  /// waits for InFlight to hit zero, so a task must never exist in the
  /// gap between "not queued" and "counted as held" — a worker
  /// preempted there would let reclamation free the arena its task
  /// lives in. The caller owes one fetch_sub per returned task.
  Task *popTask(unsigned Worker) {
    for (unsigned I = 0; I < Deques.size(); ++I) {
      WorkerDeque &D = Deques[(Worker + I) % Deques.size()];
      std::lock_guard<std::mutex> Lock(D.Mu);
      if (D.Q.empty())
        continue;
      Task *T = D.Q.front();
      D.Q.pop_front();
      InFlight.fetch_add(1, std::memory_order_acq_rel);
      QueuedCount.fetch_sub(1, std::memory_order_relaxed);
      if (I != 0) {
        GlobalSteals.fetch_add(1, std::memory_order_relaxed);
        T->Prog->StealsAtomic.fetch_add(1, std::memory_order_relaxed);
      }
      return T;
    }
    return nullptr;
  }

  //===--- Worker loop ---------------------------------------------------===//

  /// One-shot workers retire when every submitted program finished;
  /// persistent workers idle until stop().
  bool exhausted() const {
    return Persistent.load(std::memory_order_acquire)
               ? Stopping.load(std::memory_order_acquire)
               : ProgramsLeft.load(std::memory_order_acquire) == 0;
  }

  void workerLoop(unsigned Worker) {
    while (!exhausted()) {
      drainCompleted();
      Task *T = popTask(Worker);
      if (!T) {
        // Untimed: an idle persistent pool sleeps, it does not poll.
        // Every predicate input is paired with a locked notify
        // (wakeWorker/wakeAllWorkers), so no wakeup can be missed.
        std::unique_lock<std::mutex> Lock(IdleMu);
        IdleCv.wait(Lock, [&] {
          return QueuedCount.load(std::memory_order_relaxed) > 0 ||
                 CompletedPending.load(std::memory_order_acquire) > 0 ||
                 exhausted();
        });
        continue;
      }
      ProgramState &P = *T->Prog;
      if (P.Done.load(std::memory_order_acquire) ||
          T->Abandoned.load(std::memory_order_acquire)) {
        // Dropped by truncation or a finished program; release its
        // snapshot and let the commit plane skip it.
        Cache.drop(T->SnapId);
        T->State.store(Task::Dropped, std::memory_order_release);
        advance(P);
        InFlight.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      executeTask(*T, Worker);
      if (T->Abandoned.load(std::memory_order_acquire) ||
          P.Done.load(std::memory_order_acquire)) {
        // The run was overtaken (budget truncation or a finished
        // program) and will never finalize: release its snapshots so
        // they do not squat in the cache. A race that misses this is
        // harmless — the LRU evicts strays, and the cache dies with
        // the scheduler (or is swept by reclaimFinished()).
        Cache.drop(T->SnapId);
        for (const auto &[Depth, Id] : T->Snaps)
          Cache.drop(Id);
        T->Snaps.clear();
      }
      T->State.store(Task::Executed, std::memory_order_release);
      advance(P);
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
    }
    drainCompleted();
    wakeAllWorkers();
  }

  //===--- Execution plane (speculative) ---------------------------------===//

  void executeTask(Task &T, unsigned Worker) {
    (void)Worker;
    ProgramState &P = *T.Prog;
    const size_t PinnedLen = T.Pinned.size();
    RunsExecuted.fetch_add(1, std::memory_order_relaxed);

    UbSink Sink;
    std::unique_ptr<MachineSnapshot> Snap = Cache.take(T.SnapId);
    std::unique_ptr<Machine> Run;
    if (P.Snapshots && Snap) {
      Run = std::make_unique<Machine>(*P.Ast, P.MOpts, Sink, *Snap, T.Pinned);
      T.Forked = true;
    } else {
      Run = std::make_unique<Machine>(*P.Ast, P.MOpts, Sink);
      Run->setReplayDecisions(T.Pinned);
    }
    Machine &M = *Run;

    M.setCancelCheck([&]() {
      return P.Done.load(std::memory_order_relaxed) ||
             T.Abandoned.load(std::memory_order_relaxed);
    });

    if (P.Snapshots)
      M.setBeforeChoiceHook([&](Machine &Mach, unsigned) {
        const size_t Depth = Mach.decisionTrace().size();
        if (Depth < PinnedLen || Mach.inSyncCall() ||
            P.Done.load(std::memory_order_relaxed))
          return;
        uint64_t Id =
            Cache.insert(Mach.captureChoiceSnapshot(), &P.EvictionsAtomic);
        if (Id)
          T.Snaps.emplace_back(Depth, Id);
      });

    M.setChoiceHook([&](Machine &Mach) {
      if (P.Done.load(std::memory_order_relaxed))
        return false;
      const auto &Trace = Mach.decisionTrace();
      const size_t Depth = Trace.size();
      if (Depth < std::max<size_t>(PinnedLen, 1))
        return true; // still inside the parent's already-explored path
      if (Trace.back().second < 2)
        return true; // forced point: nothing branches here
      const uint64_t Fp = P.SOpts.FullRehash ? Mach.configFingerprintFull()
                                             : Mach.configFingerprint();
      if (Depth == PinnedLen) {
        T.DivergenceFp = Fp;
        T.HasDivergence = true;
      }
      T.Stream.emplace_back(Depth, Fp);
      // Speculative cancellation: only keys committed by earlier
      // generations count, so this can never cancel a run the wave
      // engine would have kept (finalization recomputes the exact cut).
      if (P.Dedup && P.Visited.hitBefore(searchVisitKey(Depth, Fp), T.Gen))
        return false;
      return true;
    });

    T.Status = T.Forked ? M.resume() : M.run();
    T.Trace = M.decisionTrace();
    T.UbFound = T.Status == RunStatus::UbDetected || !Sink.empty();
    if (T.UbFound)
      T.Reports = Sink.all();
    if (PinnedLen == 0) {
      T.Output = M.config().Output;
      T.ExitCode = M.config().ExitCode;
    }
  }

  //===--- Commit plane (canonical) --------------------------------------===//

  /// Advances the program's commit wavefront: finalizes every ready
  /// task in canonical order, sealing the next generation whenever the
  /// current one completes. Runs under the program's commit mutex;
  /// cheap (set operations only, no machine execution).
  void advance(ProgramState &P) {
    std::lock_guard<std::mutex> Lock(P.CommitMu);
    for (;;) {
      if (P.Done.load(std::memory_order_relaxed))
        return;
      if (P.NextFinal == P.CurGen.size()) {
        if (!sealNextGen(P))
          return; // program complete
        continue;
      }
      Task *T = P.CurGen[P.NextFinal];
      uint8_t S = T->State.load(std::memory_order_acquire);
      if (S != Task::Executed)
        return; // the wavefront waits for this task's run
      finalizeTask(P, *T);
      T->State.store(Task::Finalized, std::memory_order_release);
      ++P.NextFinal;
      if (P.Done.load(std::memory_order_relaxed))
        return;
    }
  }

  /// Seals the accumulated next generation: sorts it canonically and
  /// applies the run budget exactly as the wave engine's barrier did.
  /// Returns false when the program is complete.
  bool sealNextGen(ProgramState &P) {
    if (P.NextGen.empty()) {
      finishProgram(P);
      return false;
    }
    const unsigned Budget =
        P.SOpts.MaxRuns > P.RunsFinalized ? P.SOpts.MaxRuns - P.RunsFinalized
                                          : 0;
    if (Budget == 0) {
      // Mirrors the wave loop's exit with a non-empty frontier: every
      // remaining subtree is dropped unexplored and reported.
      P.Result.FrontierTruncated = true;
      P.Result.DroppedSubtrees += static_cast<unsigned>(P.NextGen.size());
      for (Task *T : P.NextGen)
        abandonTask(*T);
      P.NextGen.clear();
      finishProgram(P);
      return false;
    }
    std::sort(P.NextGen.begin(), P.NextGen.end(),
              [](const Task *A, const Task *B) {
                return lexLess(A->Pinned, B->Pinned);
              });
    if (P.NextGen.size() > Budget) {
      P.Result.FrontierTruncated = true;
      P.Result.DroppedSubtrees +=
          static_cast<unsigned>(P.NextGen.size() - Budget);
      for (size_t I = Budget; I < P.NextGen.size(); ++I)
        abandonTask(*P.NextGen[I]);
      P.NextGen.resize(Budget);
    }
    ++P.Result.Waves;
    P.CurGen = std::move(P.NextGen);
    P.NextGen.clear();
    P.NextFinal = 0;
    P.SeenDivergence.clear();
    P.GenDedupHits = 0;
    P.GenSubtreesPruned = 0;
    return true;
  }

  /// Marks a task irrelevant (budget truncation). The start-snapshot
  /// id is written once at spawn and the cache is internally locked,
  /// so dropping it here is always safe. T.Snaps, however, is being
  /// appended to by the capture hook while the task executes: it may
  /// be touched here only when the run has provably finished (acquire
  /// on State pairs with the worker's release after executeTask). A
  /// still-running task's snapshots are released by its own worker's
  /// post-execute cleanup instead.
  void abandonTask(Task &T) {
    T.Abandoned.store(true, std::memory_order_release);
    Cache.drop(T.SnapId);
    if (T.State.load(std::memory_order_acquire) == Task::Executed) {
      for (const auto &[Depth, Id] : T.Snaps)
        Cache.drop(Id);
      T.Snaps.clear();
    }
  }

  /// Derives the task's effective outcome — what the wave engine's run
  /// would have produced against the fully committed visited-set — and
  /// commits it. Called in canonical order under the commit mutex.
  void finalizeTask(ProgramState &P, Task &T) {
    const size_t PinnedLen = T.Pinned.size();
    ++P.RunsFinalized;

    // The wave engine's cancellation point: the first stream entry
    // whose key an earlier generation committed. Everything before it
    // is exactly the run's Visited list; everything after it (trace,
    // snapshots, a late undefinedness) never happened in wave terms.
    size_t Cut = T.Stream.size();
    if (P.Dedup)
      for (size_t I = 0; I < T.Stream.size(); ++I)
        if (P.Visited.hitBefore(
                searchVisitKey(T.Stream[I].first, T.Stream[I].second),
                T.Gen)) {
          Cut = I;
          break;
        }
    const bool DedupAborted = Cut != T.Stream.size();
    const size_t EffTraceLen =
        DedupAborted ? T.Stream[Cut].first : T.Trace.size();
    const RunStatus EffStatus = DedupAborted ? RunStatus::Cancelled : T.Status;
    const bool EffUb = !DedupAborted && T.UbFound;

    if (T.Forked)
      ++P.Result.ForkedRuns;

    if (P.SOpts.CollectRuns) {
      SearchRunRecord Rec;
      Rec.Pinned = T.Pinned;
      Rec.Trace.assign(T.Trace.begin(), T.Trace.begin() + EffTraceLen);
      Rec.FpStream.reserve(Cut);
      for (size_t I = 0; I < Cut; ++I)
        Rec.FpStream.emplace_back(T.Stream[I].first, T.Stream[I].second);
      Rec.Status = EffStatus;
      Rec.DedupAborted = DedupAborted;
      Rec.Forked = T.Forked;
      P.Result.Runs.push_back(std::move(Rec));
    }

    if (PinnedLen == 0) {
      P.Result.RootStatus = T.Status;
      P.Result.RootOutput = std::move(T.Output);
      P.Result.RootExitCode = T.ExitCode;
    }

    if (EffUb) {
      // Canonical-order finalization makes the first effective UB the
      // global winner: smaller prefixes all finalized clean.
      P.Result.UbFound = true;
      P.Result.Reports = std::move(T.Reports);
      P.Result.Witness = T.Pinned;
      P.Result.LastStatus = T.Status;
      // The wave engine returns at this wave's barrier without
      // aggregating it; roll the generation's counters back so the
      // stats stay byte-identical.
      P.Result.DedupHits -= P.GenDedupHits;
      P.Result.SubtreesPruned -= P.GenSubtreesPruned;
      for (const auto &[Depth, Id] : T.Snaps)
        Cache.drop(Id);
      finishProgram(P);
      return;
    }

    if (DedupAborted) {
      ++P.Result.DedupHits;
      ++P.GenDedupHits;
    }
    if (EffStatus != RunStatus::Completed && EffStatus != RunStatus::Cancelled)
      P.Result.LastStatus = EffStatus; // surface StepLimit/Internal/...

    if (P.Dedup) {
      for (size_t I = 0; I < Cut; ++I)
        P.Visited.publish(
            searchVisitKey(T.Stream[I].first, T.Stream[I].second), T.Gen);
      if (T.HasDivergence) {
        uint64_t Key = searchVisitKey(PinnedLen, T.DivergenceFp);
        if (!P.SeenDivergence.insert(Key).second) {
          // In-generation twin: an earlier (lex-smaller) sibling
          // diverged into the same state; this subtree mirrors its.
          ++P.Result.SubtreesPruned;
          ++P.GenSubtreesPruned;
          for (const auto &[Depth, Id] : T.Snaps)
            Cache.drop(Id);
          return;
        }
      }
    }

    // The driver's single-program gate: the search fans out only when
    // the default order completed cleanly (and a budget > 1 asked for
    // a search at all).
    if (PinnedLen == 0 && P.RootGated &&
        (T.Status != RunStatus::Completed || P.SOpts.MaxRuns <= 1)) {
      for (const auto &[Depth, Id] : T.Snaps)
        Cache.drop(Id);
      finishProgram(P);
      return;
    }

    // Spawn one child per flippable choice point of the effective
    // trace, exactly as the wave engine did — including for runs whose
    // effective outcome is a dedup cancellation (alternatives branching
    // off before the duplicate state are not covered by the earlier
    // visit).
    size_t SnapIdx = 0;
    std::vector<Task *> NewTasks;
    for (size_t D = PinnedLen; D < EffTraceLen; ++D) {
      while (SnapIdx < T.Snaps.size() && T.Snaps[SnapIdx].first < D)
        Cache.drop(T.Snaps[SnapIdx++].second);
      if (T.Trace[D].second < 2)
        continue;
      P.Arena.emplace_back();
      Task &Child = P.Arena.back();
      Child.Prog = &P;
      Child.Gen = T.Gen + 1;
      Child.Pinned.reserve(D + 1);
      for (size_t I = 0; I < D; ++I)
        Child.Pinned.push_back(T.Trace[I].first);
      Child.Pinned.push_back(T.Trace[D].first ? 0 : 1);
      if (SnapIdx < T.Snaps.size() && T.Snaps[SnapIdx].first == D)
        Child.SnapId = T.Snaps[SnapIdx++].second;
      P.NextGen.push_back(&Child);
      NewTasks.push_back(&Child);
    }
    // Queue deepest-flip-first: under the left-to-right default a
    // deeper flip keeps a longer run of 0-decisions, so it is
    // lex-*smaller* — reversing makes FIFO execution track canonical
    // commit order, which keeps the in-flight visited-set fresh and
    // stops speculation from outrunning a canonically early witness.
    // (A wall-clock heuristic only; commit order fixes the results.)
    for (auto It = NewTasks.rbegin(); It != NewTasks.rend(); ++It)
      pushTask(*It, NextPush.fetch_add(1, std::memory_order_relaxed));
    // Snapshots past the effective trace (or unmatched) are unusable.
    while (SnapIdx < T.Snaps.size())
      Cache.drop(T.Snaps[SnapIdx++].second);
    T.Snaps.clear();
    T.Stream.clear();
    T.Stream.shrink_to_fit();
  }

  /// Marks the program complete and publishes its aggregate counters.
  /// Called under the commit mutex; the result is final here, so the
  /// per-program wall-clock counters are published too (the one-shot
  /// epilogue re-publishes them with end-of-run values, preserving the
  /// PR-3 accounting). The completion callback is only *queued* —
  /// workers invoke it outside every scheduler lock.
  void finishProgram(ProgramState &P) {
    P.Result.RunsExplored = P.RunsFinalized;
    P.Result.SnapshotEvictions =
        P.EvictionsAtomic.load(std::memory_order_relaxed);
    P.Result.Steals = P.StealsAtomic.load(std::memory_order_relaxed);
    P.Result.PeakFrontier = static_cast<unsigned>(
        PeakFrontier.load(std::memory_order_relaxed)); // scheduler-wide
    P.Done.store(true, std::memory_order_release);
    for (Task &T : P.Arena)
      if (T.State.load(std::memory_order_acquire) == Task::Queued)
        T.Abandoned.store(true, std::memory_order_release);
    DoneDedupHits.fetch_add(P.Result.DedupHits, std::memory_order_relaxed);
    FinishedCount.fetch_add(1, std::memory_order_acq_rel);
    ProgramsLeft.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> Lock(CompletedMu);
      CompletedQ.push_back(P.Id);
      CompletedPending.fetch_add(1, std::memory_order_acq_rel);
    }
    wakeAllWorkers();
    {
      // Taking DoneMu pairs the notify with waiters' predicate checks;
      // without it a waiter between its check and its wait would miss
      // this completion until its poll interval expires.
      std::lock_guard<std::mutex> Lock(DoneMu);
    }
    DoneCv.notify_all();
  }

  /// Seeds a program with its root task (the empty prefix = the policy
  /// default order), unless the budget cannot even run it — then the
  /// program completes immediately as fully truncated. ProgramsLeft
  /// must already account for the program.
  void seedProgram(ProgramState &P, unsigned Hint) {
    if (P.SOpts.MaxRuns == 0) {
      P.Result.FrontierTruncated = true;
      P.Result.DroppedSubtrees += 1;
      finishProgram(P);
      return;
    }
    P.Arena.emplace_back();
    Task &Root = P.Arena.back();
    Root.Prog = &P;
    Root.Gen = 0;
    P.CurGen.push_back(&Root);
    P.NextFinal = 0;
    ++P.Result.Waves;
    pushTask(&Root, Hint);
  }
};

//===----------------------------------------------------------------------===//
// SearchScheduler
//===----------------------------------------------------------------------===//

SearchScheduler::SearchScheduler(Config Cfg)
    : I(std::make_unique<Impl>(Cfg)) {}

SearchScheduler::~SearchScheduler() { stop(); }

size_t SearchScheduler::submit(const AstContext &Ast, MachineOptions MOpts,
                               SearchOptions SOpts, bool RootGated) {
  Impl &S = *I;
  assert((!S.Ran || S.Persistent.load(std::memory_order_acquire)) &&
         "one-shot mode: submit all programs before runAll()");
  auto Slot = std::make_unique<ProgramState>();
  ProgramState &P = *Slot;
  P.Ast = &Ast;
  P.MOpts = MOpts;
  P.SOpts = SOpts;
  P.RootGated = RootGated;
  // Same gating policy as the wave engine: replay cannot reproduce the
  // Random policy's shuffle stream, and Declarative-style monitors keep
  // state outside the configuration a snapshot could capture. A
  // per-program SnapshotBudget of 0 keeps its documented "pure replay"
  // meaning; nonzero capacities come from Config.SnapshotBudget (the
  // cache is shared, so per-program sizes cannot coexist).
  P.Dedup = SOpts.Dedup && MOpts.Order != EvalOrderKind::Random;
  P.Snapshots = SOpts.UseSnapshots && SOpts.SnapshotBudget > 0 &&
                MOpts.Order != EvalOrderKind::Random &&
                MOpts.Style != RuleStyle::Declarative;

  std::lock_guard<std::mutex> Lock(S.SubmitMu);
  P.Id = S.Programs.size();
  S.Programs.push_back(std::move(Slot));
  S.SubmittedCount.fetch_add(1, std::memory_order_acq_rel);
  if (S.Persistent.load(std::memory_order_acquire)) {
    // Service mode: the program goes live immediately on the running
    // pool. ProgramsLeft is bumped before seeding so drain() can never
    // observe a submitted-but-unaccounted program.
    S.ProgramsLeft.fetch_add(1, std::memory_order_acq_rel);
    S.seedProgram(P, S.NextPush.fetch_add(1, std::memory_order_relaxed));
  }
  return P.Id;
}

void SearchScheduler::runAll() {
  Impl &S = *I;
  assert(!S.Ran && "runAll() may be called once");
  assert(!S.Persistent.load(std::memory_order_acquire) &&
         "runAll() is the one-shot interface; service mode uses "
         "start()/drain()");
  S.Ran = true;
  S.Stats.Programs = static_cast<unsigned>(S.Programs.size());
  S.ProgramsLeft.store(S.Programs.size(), std::memory_order_release);

  unsigned Spawn = 0;
  for (auto &P : S.Programs)
    S.seedProgram(*P, Spawn++);

  if (S.ProgramsLeft.load(std::memory_order_acquire) > 0) {
    if (S.Jobs == 1) {
      S.workerLoop(0);
    } else {
      std::vector<std::thread> Threads;
      Threads.reserve(S.Jobs);
      for (unsigned W = 0; W < S.Jobs; ++W)
        Threads.emplace_back([&S, W] { S.workerLoop(W); });
      for (std::thread &T : Threads)
        T.join();
    }
  }

  // Publish end-of-run aggregate counters (finishProgram already
  // published per-program ones; the wall-clock details are re-stamped
  // with final values to preserve the PR-3 accounting).
  S.Stats.Steals = S.GlobalSteals.load(std::memory_order_relaxed);
  S.Stats.SnapshotEvictions = S.Cache.evictions();
  S.Stats.PeakFrontier = S.PeakFrontier.load(std::memory_order_relaxed);
  S.Stats.RunsExecuted = S.RunsExecuted.load(std::memory_order_relaxed);
  for (auto &P : S.Programs) {
    P->Result.PeakFrontier =
        static_cast<unsigned>(S.Stats.PeakFrontier); // scheduler-wide
    S.Stats.DedupHits += P->Result.DedupHits;
  }
}

SearchResult SearchScheduler::takeResult(size_t Program) {
  ProgramState *P = I->program(Program);
  assert(P && "takeResult: program unknown or already reclaimed");
  P->ResultTaken = true;
  return std::move(P->Result);
}

SchedulerStats SearchScheduler::stats() const {
  Impl &S = *I;
  if (!S.Persistent.load(std::memory_order_acquire))
    return S.Stats;
  // Live snapshot: every field is monotonic (peak included), so two
  // snapshots diff into per-batch numbers.
  SchedulerStats St;
  St.Programs =
      static_cast<unsigned>(S.SubmittedCount.load(std::memory_order_acquire));
  St.Jobs = S.Jobs;
  St.Steals = S.GlobalSteals.load(std::memory_order_relaxed);
  St.SnapshotEvictions = S.Cache.evictions();
  St.PeakFrontier = S.PeakFrontier.load(std::memory_order_relaxed);
  St.RunsExecuted = S.RunsExecuted.load(std::memory_order_relaxed);
  St.DedupHits = S.DoneDedupHits.load(std::memory_order_relaxed);
  return St;
}

//===----------------------------------------------------------------------===//
// Service mode
//===----------------------------------------------------------------------===//

void SearchScheduler::start() {
  Impl &S = *I;
  assert(!S.Ran && "cannot mix start() with runAll()");
  if (S.Persistent.exchange(true, std::memory_order_acq_rel))
    return; // already started
  S.Threads.reserve(S.Jobs);
  for (unsigned W = 0; W < S.Jobs; ++W)
    S.Threads.emplace_back([&S, W] { S.workerLoop(W); });
}

bool SearchScheduler::started() const {
  return I->Persistent.load(std::memory_order_acquire);
}

void SearchScheduler::setProgramDoneCallback(std::function<void(size_t)> Fn) {
  assert(!started() && "set the completion callback before start()");
  I->DoneCb = std::move(Fn);
}

void SearchScheduler::waitProgram(size_t Program) {
  Impl &S = *I;
  // The pointer is captured once: taking SubmitMu inside the wait
  // predicate would invert the submit()->finishProgram lock order.
  // Callers must not race this against reclaimFinished() for a
  // program whose result they already took.
  ProgramState *P = S.program(Program);
  if (!P)
    return; // reclaimed: finished long ago
  std::unique_lock<std::mutex> Lock(S.DoneMu);
  S.DoneCv.wait(Lock, [&] { return P->Done.load(std::memory_order_acquire); });
}

void SearchScheduler::drain() {
  Impl &S = *I;
  std::unique_lock<std::mutex> Lock(S.DoneMu);
  S.DoneCv.wait(Lock, [&] {
    return S.FinishedCount.load(std::memory_order_acquire) ==
           S.SubmittedCount.load(std::memory_order_acquire);
  });
}

bool SearchScheduler::reclaimFinished() {
  Impl &S = *I;
  if (!S.Persistent.load(std::memory_order_acquire))
    return false;
  std::lock_guard<std::mutex> Lock(S.SubmitMu);
  // Only a fully idle pool is safe: with every program finished, no
  // queued task can spawn children and no in-flight run can outlive
  // the InFlight wait below.
  if (S.FinishedCount.load(std::memory_order_acquire) !=
      S.SubmittedCount.load(std::memory_order_acquire))
    return false;
  // Queued tasks all belong to finished programs now: abandoned work
  // the workers would drop one by one. Drop it wholesale.
  for (auto &D : S.Deques) {
    std::lock_guard<std::mutex> DL(D.Mu);
    for (Task *T : D.Q) {
      S.Cache.drop(T->SnapId);
      T->State.store(Task::Dropped, std::memory_order_release);
      S.QueuedCount.fetch_sub(1, std::memory_order_relaxed);
    }
    D.Q.clear();
  }
  // Workers may still hold a popped (cancelling) task; their machines
  // stop at the next cancel check, so this wait is bounded.
  while (S.InFlight.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();
  for (auto &Slot : S.Programs) {
    if (!Slot || !Slot->Done.load(std::memory_order_acquire) ||
        !Slot->ResultTaken)
      continue;
    // Executed-but-never-finalized tasks (overtaken by an early UB
    // winner) still pin their mid-run snapshot captures. In one-shot
    // mode the cache dies with the scheduler; a persistent pool must
    // sweep them here or they evict the next batch's snapshots and
    // silently degrade forks into replays.
    for (Task &T : Slot->Arena) {
      S.Cache.drop(T.SnapId);
      for (const auto &[Depth, Id] : T.Snaps)
        S.Cache.drop(Id);
    }
    Slot.reset();
  }
  return true;
}

SchedulerMemoryStats SearchScheduler::memoryStats() const {
  const Impl &S = *I;
  SchedulerMemoryStats M;
  {
    std::lock_guard<std::mutex> Lock(S.SubmitMu);
    M.ProgramSlots = S.Programs.size();
    for (const auto &Slot : S.Programs)
      if (Slot)
        ++M.RetainedPrograms;
  }
  M.PendingSnapshots = S.Cache.pending();
  M.QueuedTasks = S.QueuedCount.load(std::memory_order_relaxed);
  return M;
}

void SearchScheduler::stop() {
  Impl &S = *I;
  if (!S.Persistent.load(std::memory_order_acquire))
    return;
  S.Stopping.store(true, std::memory_order_release);
  S.wakeAllWorkers();
  for (std::thread &T : S.Threads)
    T.join();
  S.Threads.clear();
}
