//===- core/Scheduler.cpp - Work-stealing search scheduling ------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Determinism model (docs/SEARCH.md has the full argument):
//
//  * Execution is speculative. A task's machine runs as soon as any
//    worker picks it up, consulting the visited-set only for entries
//    *published by earlier generations* — a subset of what the wave
//    engine's barrier would have committed, so an in-flight
//    cancellation is always one the wave engine would also have made,
//    and a missed one only means the run executes further than strictly
//    needed. The task records its raw decision trace and the full
//    (depth, fingerprint) stream it observed.
//
//  * Commit is canonical. Per program, tasks finalize in (generation,
//    lex prefix) order — the exact order the wave engine's sorted
//    barrier used. Generation g finalizes only after generation g-1
//    finished entirely, so at finalization the visited-set restricted
//    to generations < g is complete; the task's *effective* outcome
//    (first committed hit in its stream = the wave engine's
//    cancellation point; children = flippable points of the truncated
//    trace; undefinedness discarded if it occurred past the cut) is a
//    pure function of (prefix, that set). Induction over the commit
//    order makes every committed output equal to the wave engine's.
//
//  * Undefinedness wins canonically. The first task to finalize with an
//    effective UB verdict is the winner: all canonically smaller tasks
//    already finalized clean, and every unfinalized task is canonically
//    larger. In-flight runs then cancel via the program's done flag.
//
// The budget is applied where the wave engine applied it: when a
// generation seals (its predecessor fully finalized), it is sorted,
// and entries beyond (MaxRuns - runs finalized so far) are dropped as
// unexplored subtrees — including any that already started
// speculatively; their results are discarded, keeping the accounting
// identical to the wave engine's truncation.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>
#include <unordered_set>

using namespace cundef;

//===----------------------------------------------------------------------===//
// SnapshotCache
//===----------------------------------------------------------------------===//

unsigned SnapshotCache::shardCountFor(unsigned Capacity) {
  // Shards must each hold a meaningful LRU slice (>= 64 slots) or the
  // split would change eviction behavior where tests pin it down
  // (capacity 0/1/2 contracts, exact-victim assertions); a single shard
  // reproduces the original global-LRU cache bit for bit. Power of two
  // so ids can encode the shard in their low bits.
  unsigned N = 1;
  while (N < (1u << kShardBits) && Capacity / (N * 2) >= 64)
    N *= 2;
  return N;
}

SnapshotCache::SnapshotCache(unsigned Capacity)
    : Capacity(Capacity), NumShards(shardCountFor(Capacity)),
      ShardVec(NumShards), IndexVec(kIndexShards) {
  // Distribute the capacity exactly (sum of slices == Capacity), with
  // the remainder on the first shards, so "pending() never exceeds
  // capacity" stays a precise invariant.
  for (unsigned S = 0; S < NumShards; ++S)
    ShardVec[S].Capacity =
        Capacity / NumShards + (S < Capacity % NumShards ? 1 : 0);
}

uint64_t SnapshotCache::insertInto(Shard &S, unsigned ShardIdx,
                                   MachineSnapshot &&Snap,
                                   std::atomic<unsigned> *EvictCounter) {
  uint64_t Id = (S.NextSeq++ << kShardBits) | ShardIdx;
  S.Lru.push_back(Id);
  Entry E;
  E.Snap = std::make_unique<MachineSnapshot>(std::move(Snap));
  E.LruIt = std::prev(S.Lru.end());
  E.EvictCounter = EvictCounter;
  S.Entries.emplace(Id, std::move(E));
  ++S.Inserts;
  return Id;
}

uint64_t SnapshotCache::insert(MachineSnapshot Snap,
                               std::atomic<unsigned> *EvictCounter,
                               unsigned ShardHint,
                               const SnapshotShareKey *Share) {
  if (Capacity == 0)
    return 0;
  const unsigned Home = ShardHint & (NumShards - 1);
  uint64_t Id = 0;
  {
    Shard &S = ShardVec[Home];
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Entries.size() < S.Capacity)
      Id = insertInto(S, Home, std::move(Snap), EvictCounter);
  }
  // Home shard full: steal a free slot from a sibling before evicting
  // anything — an imbalanced pool must not waste total capacity. One
  // shard lock at a time, never nested.
  if (!Id)
    for (unsigned I = 1; I < NumShards && !Id; ++I) {
      const unsigned Idx = (Home + I) & (NumShards - 1);
      Shard &S = ShardVec[Idx];
      std::lock_guard<std::mutex> Lock(S.Mu);
      if (S.Entries.size() < S.Capacity) {
        ++S.SlotSteals;
        Id = insertInto(S, Idx, std::move(Snap), EvictCounter);
      }
    }
  if (!Id) {
    // Every shard full: evict from the home shard. Victim preference:
    //  1. the oldest *served donor* — its own fork was already cloned
    //     out, so removing it loses nothing (other programs' elisions
    //     fall back to replay); this eviction is silent, charged to no
    //     counter;
    //  2. program-affine — the oldest pending entry of the *inserting*
    //     program when one exists (a deep program then thrashes
    //     against itself);
    //  3. the shard's global oldest.
    std::unique_ptr<MachineSnapshot> Victim; // destroyed outside the lock
    Shard &S = ShardVec[Home];
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Entries.size() < S.Capacity) { // re-check: a take() raced us
      Id = insertInto(S, Home, std::move(Snap), EvictCounter);
    } else {
      auto VictimIt = S.Entries.end();
      for (uint64_t Old : S.Lru) {
        auto It = S.Entries.find(Old);
        if (It->second.Shared && It->second.Served) {
          VictimIt = It;
          break;
        }
      }
      const bool Silent = VictimIt != S.Entries.end();
      if (!Silent) {
        for (uint64_t Old : S.Lru) {
          auto It = S.Entries.find(Old);
          if (It->second.EvictCounter == EvictCounter) {
            VictimIt = It;
            break;
          }
        }
        if (VictimIt == S.Entries.end())
          VictimIt = S.Entries.find(S.Lru.front());
      }
      Victim = std::move(VictimIt->second.Snap);
      if (VictimIt->second.Shared)
        deregisterShared(VictimIt->second.SKey, VictimIt->first);
      if (!Silent) {
        if (VictimIt->second.EvictCounter)
          VictimIt->second.EvictCounter->fetch_add(1,
                                                   std::memory_order_relaxed);
        Evictions.fetch_add(1, std::memory_order_relaxed);
      }
      S.Lru.erase(VictimIt->second.LruIt);
      S.Entries.erase(VictimIt);
      Id = insertInto(S, Home, std::move(Snap), EvictCounter);
    }
  }
  if (Id && Share)
    registerShared(*Share, Id);
  return Id;
}

std::unique_ptr<MachineSnapshot> SnapshotCache::take(uint64_t Id) {
  if (!Id)
    return nullptr;
  Shard &S = shardOf(Id);
  std::lock_guard<std::mutex> Lock(S.Mu);
  ++S.Takes;
  auto It = S.Entries.find(Id);
  if (It == S.Entries.end())
    return nullptr; // evicted: the caller replays its prefix instead
  ++S.Hits;
  Entry &E = It->second;
  if (E.Shared) {
    // Donor: clone for the owner's child and stay resident for other
    // programs' elided forks. Served makes the entry eviction's first
    // pick — every fork it still owes is now optional.
    E.Served = true;
    S.Lru.splice(S.Lru.end(), S.Lru, E.LruIt);
    return std::make_unique<MachineSnapshot>(*E.Snap);
  }
  std::unique_ptr<MachineSnapshot> Snap = std::move(E.Snap);
  S.Lru.erase(E.LruIt);
  S.Entries.erase(It);
  return Snap;
}

bool SnapshotCache::hasShared(const SnapshotShareKey &Key) const {
  if (Capacity == 0)
    return false;
  const IndexShard &IS = indexShardFor(Key);
  std::lock_guard<std::mutex> Lock(IS.Mu);
  return IS.Map.find(Key) != IS.Map.end();
}

std::unique_ptr<MachineSnapshot>
SnapshotCache::takeShared(const SnapshotShareKey &Key) {
  if (Capacity == 0)
    return nullptr;
  uint64_t Id = 0;
  {
    IndexShard &IS = indexShardFor(Key);
    std::lock_guard<std::mutex> Lock(IS.Mu);
    auto It = IS.Map.find(Key);
    if (It == IS.Map.end())
      return nullptr;
    Id = It->second;
  } // index lock released before the entry lock (never nested this way)
  Shard &S = shardOf(Id);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Entries.find(Id);
  if (It == S.Entries.end())
    return nullptr; // donor raced away: the caller replays its prefix
  Entry &E = It->second;
  if (!E.Shared || !(E.SKey == Key))
    return nullptr; // stale index row
  S.Lru.splice(S.Lru.end(), S.Lru, E.LruIt);
  SharedHits.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<MachineSnapshot>(*E.Snap);
}

void SnapshotCache::registerShared(const SnapshotShareKey &Key, uint64_t Id) {
  {
    IndexShard &IS = indexShardFor(Key);
    std::lock_guard<std::mutex> Lock(IS.Mu);
    if (!IS.Map.emplace(Key, Id).second)
      return; // an earlier donor already holds this key — first wins
  }
  Shard &S = shardOf(Id);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Entries.find(Id);
  if (It == S.Entries.end()) {
    // Taken or evicted between insert and registration: retract the
    // row just published (ids are never reused, so it can only be
    // ours).
    deregisterShared(Key, Id);
    return;
  }
  It->second.Shared = true;
  It->second.SKey = Key;
}

void SnapshotCache::deregisterShared(const SnapshotShareKey &Key,
                                     uint64_t Id) {
  IndexShard &IS = indexShardFor(Key);
  std::lock_guard<std::mutex> Lock(IS.Mu);
  auto It = IS.Map.find(Key);
  if (It != IS.Map.end() && It->second == Id)
    IS.Map.erase(It);
}

void SnapshotCache::drop(uint64_t Id) {
  if (!Id)
    return;
  std::unique_ptr<MachineSnapshot> Dead;
  Shard &S = shardOf(Id);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Entries.find(Id);
  if (It == S.Entries.end())
    return;
  if (It->second.Shared)
    deregisterShared(It->second.SKey, Id);
  Dead = std::move(It->second.Snap);
  S.Lru.erase(It->second.LruIt);
  S.Entries.erase(It);
}

size_t SnapshotCache::pending() const {
  size_t N = 0;
  for (const Shard &S : ShardVec) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Entries.size();
  }
  return N;
}

SnapshotCache::Counters SnapshotCache::counters() const {
  Counters C;
  for (const Shard &S : ShardVec) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    C.Inserts += S.Inserts;
    C.Takes += S.Takes;
    C.Hits += S.Hits;
    C.SlotSteals += S.SlotSteals;
  }
  C.Evictions = Evictions.load(std::memory_order_relaxed);
  C.SharedHits = SharedHits.load(std::memory_order_relaxed);
  return C;
}

//===----------------------------------------------------------------------===//
// Scheduler internals
//===----------------------------------------------------------------------===//

namespace {

/// Per-program visited-set with sharded locks. Each key carries up to
/// two marks:
///
///  * a **committed** generation — the smallest generation whose
///    finalization published the key. Speculative lookups accept a
///    committed hit only from a strictly earlier generation, which
///    makes every in-flight answer a subset of the committed truth.
///  * a **provisional** (generation, owner) claim — an in-flight run of
///    that generation observed this state and *may* commit it. At most
///    one owner holds a claim at a time; the owner retracts it at
///    finalization (keys it commits are promoted, the rest erased) and
///    on abandonment. A later-generation speculative run that sees a
///    provisional claim may stop early: if the claim commits, the stop
///    was exactly the wave engine's cancellation; if it does not, the
///    commit wavefront detects the unjustified stop and re-executes the
///    run against the committed set (rollback). Either way no committed
///    output changes — provisional marks only steer speculation.
class VisitedMap {
public:
  enum class Hit : uint8_t { None, Committed, Provisional };

  bool hitBefore(uint64_t Key, uint32_t Gen) const {
    const Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    return It != S.Map.end() && It->second.CommitGen < Gen;
  }

  /// Speculative lookup: a committed hit (sound, final), a provisional
  /// hit (an earlier-generation in-flight run claimed the key), or
  /// nothing.
  Hit hitBeforeSpec(uint64_t Key, uint32_t Gen) const {
    const Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end())
      return Hit::None;
    if (It->second.CommitGen < Gen)
      return Hit::Committed;
    if (It->second.ProvOwner && It->second.ProvGen < Gen)
      return Hit::Provisional;
    return Hit::None;
  }

  /// Claims \p Key provisionally for \p Owner. First claimant wins;
  /// returns false (nothing to retract later) when another owner
  /// already holds the claim.
  bool publishProvisional(uint64_t Key, uint32_t Gen, const void *Owner) {
    Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    VEntry &E = S.Map[Key];
    if (E.ProvOwner)
      return E.ProvOwner == Owner;
    E.ProvOwner = Owner;
    E.ProvGen = Gen;
    return true;
  }

  /// Drops \p Owner's provisional claim on \p Key (no-op for another
  /// owner's claim); erases the entry when no committed mark keeps it
  /// alive.
  void retractProvisional(uint64_t Key, const void *Owner) {
    Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end() || It->second.ProvOwner != Owner)
      return;
    It->second.ProvOwner = nullptr;
    It->second.ProvGen = VEntry::kNoGen;
    if (It->second.CommitGen == VEntry::kNoGen)
      S.Map.erase(It);
  }

  /// Commits \p Key at \p Gen (keeps the smallest committed
  /// generation) and releases \p Owner's provisional claim on it.
  void publish(uint64_t Key, uint32_t Gen, const void *Owner) {
    Shard &S = Shards[shardOf(Key)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    VEntry &E = S.Map[Key];
    if (Gen < E.CommitGen)
      E.CommitGen = Gen;
    if (E.ProvOwner == Owner) {
      E.ProvOwner = nullptr;
      E.ProvGen = VEntry::kNoGen;
    }
  }

private:
  struct VEntry {
    static constexpr uint32_t kNoGen = 0xffffffffu;
    uint32_t CommitGen = kNoGen;
    uint32_t ProvGen = kNoGen;
    const void *ProvOwner = nullptr;
  };
  // 64 shards (up from 16): with 16-64 workers streaming one lookup +
  // one provisional claim per choice point, shard-lock collisions are
  // the hottest contention in the whole scheduler.
  static constexpr size_t NumShards = 64;
  static size_t shardOf(uint64_t Key) {
    // The keys are already splitmix-mixed (searchVisitKey); the top
    // bits are as good as any.
    return static_cast<size_t>(Key >> 58) & (NumShards - 1);
  }
  struct alignas(64) Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, VEntry> Map;
  };
  Shard Shards[NumShards];
};

struct ProgramState;

/// One node of a program's search tree. Lives in its program's arena
/// for the whole scheduler lifetime (deques hold raw pointers).
struct Task {
  ProgramState *Prog = nullptr;
  uint32_t Gen = 0;
  std::vector<uint8_t> Pinned;
  uint64_t SnapId = 0; ///< snapshot cache handle (0 = replay)
  /// Cross-program sharing: the parent elided its capture at this
  /// task's spawn point because a fingerprint-identical donor was
  /// resident; when SnapId misses, executeTask forks from a clone of
  /// the donor instead (and replays the prefix if the donor is gone —
  /// always sound).
  SnapshotShareKey ShareKey;
  bool HasShareKey = false;

  enum Phase : uint8_t { Queued, Executed, Finalized, Dropped };
  std::atomic<uint8_t> State{Queued};
  /// Set when the budget truncation or program completion made this
  /// task irrelevant; an in-flight run polls it and cancels.
  std::atomic<bool> Abandoned{false};

  // --- Raw outputs of the speculative run -----------------------------
  RunStatus Status = RunStatus::Running;
  bool UbFound = false;
  bool Forked = false;
  std::vector<UbReport> Reports;
  std::vector<std::pair<uint8_t, uint8_t>> Trace;
  /// Every (depth, fingerprint) observed at flippable choice points at
  /// or beyond the divergence — including the entry that triggered an
  /// in-flight cancellation (the wave engine's Visited stops just
  /// before it; finalization recomputes the cut from this stream).
  std::vector<std::pair<size_t, uint64_t>> Stream;
  /// (depth, snapshot-cache handle) captured during the run.
  std::vector<std::pair<size_t, uint64_t>> Snaps;
  /// (depth, donor key) points where this run *elided* its capture
  /// because a shared donor was resident (Config::SnapshotSharing).
  /// Owns no cache state — children spawned at these depths get the
  /// key, not an id.
  std::vector<std::pair<size_t, SnapshotShareKey>> ShareSnaps;
  /// Visited keys this run claimed provisionally (retracted or
  /// promoted at finalization; retracted on abandonment).
  std::vector<uint64_t> ProvKeys;
  /// The run stopped on a *provisional* hit (not a committed one). If
  /// commit-time recomputation finds no committed justification, the
  /// run is re-executed with CommittedOnly set.
  bool ProvisionalStop = false;
  /// Rollback re-execution: consult only committed visited entries
  /// (the pre-provisional behavior), guaranteeing the re-run
  /// reproduces the wave engine's exactly.
  bool CommittedOnly = false;
  uint64_t DivergenceFp = 0;
  bool HasDivergence = false;
  /// Root only: the program-visible results of the default-order run.
  std::string Output;
  int ExitCode = 0;
};

bool lexLess(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(), B.end());
}

struct ProgramState {
  size_t Id = 0;
  const AstContext *Ast = nullptr;
  MachineOptions MOpts;
  SearchOptions SOpts;
  bool RootGated = false;
  /// takeResult() ran; reclaimFinished() may free this state.
  bool ResultTaken = false;
  /// Effective gates (same policy as the wave engine).
  bool Dedup = true;
  bool Snapshots = true;
  /// Cross-program snapshot sharing is live for this program
  /// (Config::SnapshotSharing plus the snapshot/dedup gates).
  bool Share = false;
  /// machineOptionsFingerprint(MOpts), precomputed for share keys.
  uint64_t MachineFp = 0;

  /// All tasks ever created (stable addresses; deques point in here).
  std::deque<Task> Arena;

  std::mutex CommitMu;
  /// The sealed generation being finalized, sorted canonically.
  std::vector<Task *> CurGen;
  size_t NextFinal = 0;
  /// The next generation, accumulating children (sealed & sorted once
  /// CurGen fully finalizes).
  std::vector<Task *> NextGen;
  /// Runs finalized and kept (= the wave engine's RunsStarted on the
  /// deterministic path).
  unsigned RunsFinalized = 0;
  /// In-generation divergence twins (reset per generation).
  std::unordered_set<uint64_t> SeenDivergence;
  /// Dedup hits / twin prunes committed within the current generation.
  /// The wave engine never aggregates the counters of the wave that
  /// produced the witness (its barrier returns first); when a winner
  /// finalizes, these are rolled back for byte-identical stats.
  unsigned GenDedupHits = 0;
  unsigned GenSubtreesPruned = 0;

  VisitedMap Visited;
  std::atomic<bool> Done{false};
  // Cacheline-separated: these are the only ProgramState fields many
  // workers write concurrently; packed together they false-share.
  alignas(64) std::atomic<unsigned> EvictionsAtomic{0};
  alignas(64) std::atomic<unsigned> StealsAtomic{0};
  SearchResult Result;
};

} // namespace

struct SearchScheduler::Impl {
  static unsigned resolveJobs(const Config &Cfg) {
    const unsigned HW = std::max(1u, std::thread::hardware_concurrency());
    unsigned Jobs = Cfg.Jobs ? Cfg.Jobs : HW;
    if (Cfg.ClampJobsToHardware)
      Jobs = std::min(Jobs, HW);
    return std::max(1u, Jobs);
  }

  explicit Impl(Config Cfg)
      : Cfg(Cfg), Jobs(resolveJobs(Cfg)), Cache(Cfg.SnapshotBudget),
        Deques(Jobs), ExecStripes(Jobs), StealStripes(Jobs) {
    Stats.Jobs = Jobs;
  }

  Config Cfg;
  const unsigned Jobs;
  SnapshotCache Cache;

  struct alignas(64) WorkerDeque {
    std::mutex Mu;
    std::deque<Task *> Q;
  };
  std::vector<WorkerDeque> Deques;
  /// One counter per cacheline: the per-run/per-steal counters are
  /// written by every worker on the hot path, so they are **striped**
  /// per worker (summed only at stats/commit points); the rest are
  /// merely **padded** apart so no two hot atomics false-share.
  struct alignas(64) PaddedCounter {
    std::atomic<uint64_t> V{0};
  };
  std::vector<PaddedCounter> ExecStripes;  ///< runs executed, per worker
  std::vector<PaddedCounter> StealStripes; ///< steals, per worker
  uint64_t sumStripes(const std::vector<PaddedCounter> &Stripes) const {
    uint64_t N = 0;
    for (const PaddedCounter &C : Stripes)
      N += C.V.load(std::memory_order_relaxed);
    return N;
  }
  alignas(64) std::atomic<unsigned> NextPush{0};
  alignas(64) std::atomic<size_t> QueuedCount{0};
  alignas(64) std::atomic<size_t> ProgramsLeft{0};
  alignas(64) std::atomic<uint64_t> PeakFrontier{0};
  /// Runs finalized by any program's commit wavefront (monotonic).
  alignas(64) std::atomic<uint64_t> RunsCommittedTotal{0};
  /// Peak of (executed - committed): the speculation wavefront lag.
  alignas(64) std::atomic<uint64_t> CommitLagPeak{0};
  alignas(64) std::atomic<uint64_t> ProvisionalHits{0};
  alignas(64) std::atomic<uint64_t> ProvisionalRequeues{0};
  std::mutex IdleMu;
  std::condition_variable IdleCv;

  /// Submitted programs, by id. unique_ptr so reclaimFinished() can
  /// free a completed program's arena without disturbing the index
  /// space; a null slot is a reclaimed program.
  std::deque<std::unique_ptr<ProgramState>> Programs;
  /// Guards Programs growth/reclaim (service mode submits while
  /// workers run; the deque's internal map is not safe to index
  /// concurrently with push_back).
  mutable std::mutex SubmitMu;
  SchedulerStats Stats;
  bool Ran = false;

  //===--- Service mode --------------------------------------------------===//

  /// start() was called: workers are persistent, submit() is live.
  std::atomic<bool> Persistent{false};
  std::atomic<bool> Stopping{false};
  std::vector<std::thread> Threads;
  /// One-shot lazy helpers: runAll() runs worker 0 on the calling
  /// thread and spawns the remaining Jobs-1 helper threads only when
  /// the frontier actually holds concurrent work. A tiny program
  /// (frontier never exceeding 1 task) then runs entirely inline —
  /// zero thread spawns, zero wakeup latency — which is what fixed the
  /// ~8ms steal-vs-fork pathology on one-choice-point programs.
  std::atomic<bool> LazySpawn{false};
  std::atomic<unsigned> HelpersSpawned{0};
  std::mutex HelperMu; ///< guards helper growth of Threads
  /// Tasks a worker currently holds (popped, not yet finished with);
  /// reclaimFinished() waits for 0 so no worker can be touching a
  /// program state it is about to free.
  std::atomic<size_t> InFlight{0};
  std::atomic<size_t> SubmittedCount{0};
  std::atomic<size_t> FinishedCount{0};
  /// Sum of completed programs' committed dedup hits (live stats()).
  std::atomic<uint64_t> DoneDedupHits{0};
  /// Completion handoff: finishProgram() runs under the program's
  /// commit mutex, so it only queues the id; workers drain the queue
  /// lock-free-of-scheduler-state and invoke the callback, which may
  /// therefore re-enter the scheduler (even submit()). The atomic
  /// mirror of the queue size keeps the idle-wait predicate lock-light.
  std::mutex CompletedMu;
  std::deque<size_t> CompletedQ;
  std::atomic<size_t> CompletedPending{0};
  std::function<void(size_t)> DoneCb;
  /// Signals program completions (waitProgram / drain / reclaim).
  std::mutex DoneMu;
  std::condition_variable DoneCv;

  ProgramState *program(size_t Id) {
    std::lock_guard<std::mutex> Lock(SubmitMu);
    return Id < Programs.size() ? Programs[Id].get() : nullptr;
  }

  void drainCompleted() {
    for (;;) {
      size_t Id;
      {
        std::lock_guard<std::mutex> Lock(CompletedMu);
        if (CompletedQ.empty())
          return;
        Id = CompletedQ.front();
        CompletedQ.pop_front();
        CompletedPending.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (DoneCb)
        DoneCb(Id);
    }
  }

  //===--- Frontier ------------------------------------------------------===//

  void pushTask(Task *T, unsigned Worker) {
    {
      WorkerDeque &D = Deques[Worker % Deques.size()];
      std::lock_guard<std::mutex> Lock(D.Mu);
      D.Q.push_back(T);
    }
    size_t Now = QueuedCount.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t Peak = PeakFrontier.load(std::memory_order_relaxed);
    while (Now > Peak &&
           !PeakFrontier.compare_exchange_weak(Peak, Now,
                                               std::memory_order_relaxed))
      ;
    wakeWorker();
    if (Now > 1)
      maybeSpawnHelper();
  }

  /// Lazily grows the one-shot helper pool (runAll() with Jobs > 1):
  /// one helper per observation of genuinely concurrent work, up to
  /// Jobs - 1. Called from pushTask, so possibly under a program's
  /// commit mutex — HelperMu is a leaf lock and the spawn itself takes
  /// no scheduler locks.
  void maybeSpawnHelper() {
    if (!LazySpawn.load(std::memory_order_acquire))
      return;
    if (HelpersSpawned.load(std::memory_order_relaxed) >= Jobs - 1)
      return;
    std::lock_guard<std::mutex> Lock(HelperMu);
    unsigned N = HelpersSpawned.load(std::memory_order_relaxed);
    if (N >= Jobs - 1)
      return;
    const unsigned W = N + 1; // worker 0 is the calling thread
    Threads.emplace_back([this, W] { workerLoop(W); });
    HelpersSpawned.store(N + 1, std::memory_order_relaxed);
  }

  /// Workers sleep on an untimed predicate wait (a persistent pool
  /// must not poll while idle), so every event that can change the
  /// predicate pairs its notify with the wait mutex — otherwise a
  /// worker between its predicate check and its sleep would miss the
  /// wakeup forever.
  void wakeWorker() {
    { std::lock_guard<std::mutex> Lock(IdleMu); }
    IdleCv.notify_one();
  }
  void wakeAllWorkers() {
    { std::lock_guard<std::mutex> Lock(IdleMu); }
    IdleCv.notify_all();
  }

  /// Pops the oldest task from the worker's own deque, stealing the
  /// oldest from a sibling when empty. Oldest-first keeps execution
  /// close to canonical commit order, which keeps the in-flight
  /// visited-set fresh and speculation waste low.
  ///
  /// InFlight is claimed *under the deque mutex*, before the task
  /// leaves the deque: reclaimFinished() purges the deques and then
  /// waits for InFlight to hit zero, so a task must never exist in the
  /// gap between "not queued" and "counted as held" — a worker
  /// preempted there would let reclamation free the arena its task
  /// lives in. The caller owes one fetch_sub per returned task.
  Task *popTask(unsigned Worker) {
    for (unsigned I = 0; I < Deques.size(); ++I) {
      WorkerDeque &D = Deques[(Worker + I) % Deques.size()];
      std::lock_guard<std::mutex> Lock(D.Mu);
      if (D.Q.empty())
        continue;
      Task *T = D.Q.front();
      D.Q.pop_front();
      InFlight.fetch_add(1, std::memory_order_acq_rel);
      QueuedCount.fetch_sub(1, std::memory_order_relaxed);
      if (I != 0) {
        StealStripes[Worker % StealStripes.size()].V.fetch_add(
            1, std::memory_order_relaxed);
        T->Prog->StealsAtomic.fetch_add(1, std::memory_order_relaxed);
      }
      return T;
    }
    return nullptr;
  }

  //===--- Worker loop ---------------------------------------------------===//

  /// One-shot workers retire when every submitted program finished;
  /// persistent workers idle until stop().
  bool exhausted() const {
    return Persistent.load(std::memory_order_acquire)
               ? Stopping.load(std::memory_order_acquire)
               : ProgramsLeft.load(std::memory_order_acquire) == 0;
  }

  void workerLoop(unsigned Worker) {
    while (!exhausted()) {
      drainCompleted();
      Task *T = popTask(Worker);
      if (!T) {
        // Untimed: an idle persistent pool sleeps, it does not poll.
        // Every predicate input is paired with a locked notify
        // (wakeWorker/wakeAllWorkers), so no wakeup can be missed.
        std::unique_lock<std::mutex> Lock(IdleMu);
        IdleCv.wait(Lock, [&] {
          return QueuedCount.load(std::memory_order_relaxed) > 0 ||
                 CompletedPending.load(std::memory_order_acquire) > 0 ||
                 exhausted();
        });
        continue;
      }
      ProgramState &P = *T->Prog;
      if (P.Done.load(std::memory_order_acquire) ||
          T->Abandoned.load(std::memory_order_acquire)) {
        // Dropped by truncation or a finished program; release its
        // snapshot and let the commit plane skip it.
        Cache.drop(T->SnapId);
        T->State.store(Task::Dropped, std::memory_order_release);
        advance(P);
        InFlight.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      executeTask(*T, Worker);
      if (T->Abandoned.load(std::memory_order_acquire) ||
          P.Done.load(std::memory_order_acquire)) {
        // The run was overtaken (budget truncation or a finished
        // program) and will never finalize: release its snapshots so
        // they do not squat in the cache, and retract its provisional
        // visited claims so they stop steering live speculation. A
        // race that misses a snapshot is harmless — the LRU evicts
        // strays, and the cache dies with the scheduler (or is swept
        // by reclaimFinished()).
        Cache.drop(T->SnapId);
        for (const auto &[Depth, Id] : T->Snaps)
          Cache.drop(Id);
        T->Snaps.clear();
        T->ShareSnaps.clear();
        for (uint64_t Key : T->ProvKeys)
          P.Visited.retractProvisional(Key, T);
        T->ProvKeys.clear();
      }
      T->State.store(Task::Executed, std::memory_order_release);
      advance(P);
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
    }
    drainCompleted();
    wakeAllWorkers();
  }

  //===--- Execution plane (speculative) ---------------------------------===//

  void executeTask(Task &T, unsigned Worker) {
    ProgramState &P = *T.Prog;
    const size_t PinnedLen = T.Pinned.size();
    ExecStripes[Worker % ExecStripes.size()].V.fetch_add(
        1, std::memory_order_relaxed);

    UbSink Sink;
    std::unique_ptr<MachineSnapshot> Snap = Cache.take(T.SnapId);
    if (!Snap && T.HasShareKey)
      // The parent elided this capture: fork from a clone of the
      // shared donor (step-identical state by machine determinism).
      Snap = Cache.takeShared(T.ShareKey);
    std::unique_ptr<Machine> Run;
    if (P.Snapshots && Snap) {
      Run = std::make_unique<Machine>(*P.Ast, P.MOpts, Sink, *Snap, T.Pinned);
      T.Forked = true;
    } else {
      Run = std::make_unique<Machine>(*P.Ast, P.MOpts, Sink);
      Run->setReplayDecisions(T.Pinned);
    }
    Machine &M = *Run;

    M.setCancelCheck([&]() {
      return P.Done.load(std::memory_order_relaxed) ||
             T.Abandoned.load(std::memory_order_relaxed);
    });

    if (P.Snapshots)
      M.setBeforeChoiceHook([&](Machine &Mach, unsigned) {
        const size_t Depth = Mach.decisionTrace().size();
        if (Depth < PinnedLen || Mach.inSyncCall() ||
            P.Done.load(std::memory_order_relaxed))
          return;
        if (P.Share) {
          // Content address of the state about to be captured. When a
          // fingerprint-identical donor is already resident (typically
          // from another program running the same deduped artifact),
          // skip the capture entirely — the capture elision is where
          // sharing saves its wall-clock — and hand the child the key
          // instead. The probe is racy by design: a vanished donor
          // only demotes the child's fork to a prefix replay.
          SnapshotShareKey SK;
          SK.Ast = P.Ast;
          SK.MachineFp = P.MachineFp;
          Fnv1a H;
          for (const auto &[Decision, Arity] : Mach.decisionTrace()) {
            H.u8(Decision);
            H.u8(Arity);
          }
          SK.TraceDigest = mix64(H.digest());
          SK.ConfFp = Mach.configFingerprint();
          if (Cache.hasShared(SK)) {
            T.ShareSnaps.emplace_back(Depth, SK);
            return;
          }
          uint64_t Id = Cache.insert(Mach.captureChoiceSnapshot(),
                                     &P.EvictionsAtomic, Worker, &SK);
          if (Id)
            T.Snaps.emplace_back(Depth, Id);
          return;
        }
        uint64_t Id = Cache.insert(Mach.captureChoiceSnapshot(),
                                   &P.EvictionsAtomic, Worker);
        if (Id)
          T.Snaps.emplace_back(Depth, Id);
      });

    M.setChoiceHook([&](Machine &Mach) {
      if (P.Done.load(std::memory_order_relaxed))
        return false;
      const auto &Trace = Mach.decisionTrace();
      const size_t Depth = Trace.size();
      if (Depth < std::max<size_t>(PinnedLen, 1))
        return true; // still inside the parent's already-explored path
      if (Trace.back().second < 2)
        return true; // forced point: nothing branches here
      const uint64_t Fp = P.SOpts.FullRehash ? Mach.configFingerprintFull()
                                             : Mach.configFingerprint();
      if (Depth == PinnedLen) {
        T.DivergenceFp = Fp;
        T.HasDivergence = true;
      }
      T.Stream.emplace_back(Depth, Fp);
      if (!P.Dedup)
        return true;
      const uint64_t Key = searchVisitKey(Depth, Fp);
      if (T.CommittedOnly)
        // Rollback re-execution: the committed set for generations
        // < T.Gen is complete by now (the commit wavefront reached this
        // task), so this consults exactly what the wave engine saw.
        return !P.Visited.hitBefore(Key, T.Gen);
      // Speculative cancellation. A *committed* earlier-generation key
      // is final: the wave engine cancelled here too. A *provisional*
      // one — claimed by an in-flight earlier-generation run — stops
      // this run as well (re-exploring a claimed subtree is the
      // speculation waste this exists to kill), but is flagged: if the
      // claim fails to commit, finalization re-executes this run.
      // Missing either kind only defers the cancellation to commit
      // time; finalization recomputes the exact cut.
      switch (P.Visited.hitBeforeSpec(Key, T.Gen)) {
      case VisitedMap::Hit::Committed:
        return false;
      case VisitedMap::Hit::Provisional:
        T.ProvisionalStop = true;
        ProvisionalHits.fetch_add(1, std::memory_order_relaxed);
        return false;
      case VisitedMap::Hit::None:
        break;
      }
      if (P.Visited.publishProvisional(Key, T.Gen, &T))
        T.ProvKeys.push_back(Key);
      return true;
    });

    T.Status = T.Forked ? M.resume() : M.run();
    T.Trace = M.decisionTrace();
    T.UbFound = T.Status == RunStatus::UbDetected || !Sink.empty();
    if (T.UbFound)
      T.Reports = Sink.all();
    if (PinnedLen == 0) {
      T.Output = M.config().Output;
      T.ExitCode = M.config().ExitCode;
    }
  }

  //===--- Commit plane (canonical) --------------------------------------===//

  /// Advances the program's commit wavefront: finalizes every ready
  /// task in canonical order, sealing the next generation whenever the
  /// current one completes. Runs under the program's commit mutex;
  /// cheap (set operations only, no machine execution).
  void advance(ProgramState &P) {
    std::lock_guard<std::mutex> Lock(P.CommitMu);
    for (;;) {
      if (P.Done.load(std::memory_order_relaxed))
        return;
      if (P.NextFinal == P.CurGen.size()) {
        if (!sealNextGen(P))
          return; // program complete
        continue;
      }
      Task *T = P.CurGen[P.NextFinal];
      uint8_t S = T->State.load(std::memory_order_acquire);
      if (S != Task::Executed)
        return; // the wavefront waits for this task's run
      if (needsRerun(P, *T)) {
        // The run stopped on a provisional claim that never committed:
        // its recorded stream is shorter than the wave engine's run
        // would have been. Re-execute it against the now-complete
        // committed set (CommittedOnly) — the one case where rollback
        // costs a run. The wavefront waits exactly as it would for a
        // still-executing task.
        requeueTask(P, *T);
        return;
      }
      finalizeTask(P, *T);
      T->State.store(Task::Finalized, std::memory_order_release);
      ++P.NextFinal;
      if (P.Done.load(std::memory_order_relaxed))
        return;
    }
  }

  /// True when the task's early stop was justified only provisionally:
  /// it stopped on an in-flight claim, and commit-time truth (complete
  /// for generations < T.Gen once the wavefront reaches T) holds no
  /// committed hit anywhere in its recorded stream. Finalizing it as-is
  /// would commit a shorter run than the wave engine's.
  bool needsRerun(ProgramState &P, Task &T) const {
    if (!T.ProvisionalStop || !P.Dedup)
      return false;
    for (const auto &[Depth, Fp] : T.Stream)
      if (P.Visited.hitBefore(searchVisitKey(Depth, Fp), T.Gen))
        return false;
    return true;
  }

  /// Rolls a provisionally-stopped task back to Queued for a
  /// committed-only re-execution. Runs under the commit mutex; the
  /// task is not in any deque and no worker holds it (it already
  /// executed), so resetting its outputs is race-free.
  void requeueTask(ProgramState &P, Task &T) {
    for (uint64_t Key : T.ProvKeys)
      P.Visited.retractProvisional(Key, &T);
    T.ProvKeys.clear();
    Cache.drop(T.SnapId); // consumed by the first execution; 0 is a no-op
    T.SnapId = 0;
    for (const auto &[Depth, Id] : T.Snaps)
      Cache.drop(Id);
    T.Snaps.clear();
    // ShareKey stays: the re-run may still fork from the donor. The
    // recorded elisions reset with the other outputs.
    T.ShareSnaps.clear();
    T.Trace.clear();
    T.Stream.clear();
    T.Reports.clear();
    T.Output.clear();
    T.Status = RunStatus::Running;
    T.UbFound = false;
    T.Forked = false;
    T.HasDivergence = false;
    T.DivergenceFp = 0;
    T.ExitCode = 0;
    T.ProvisionalStop = false;
    T.CommittedOnly = true;
    ProvisionalRequeues.fetch_add(1, std::memory_order_relaxed);
    T.State.store(Task::Queued, std::memory_order_release);
    pushTask(&T, NextPush.fetch_add(1, std::memory_order_relaxed));
  }

  /// Seals the accumulated next generation: sorts it canonically and
  /// applies the run budget exactly as the wave engine's barrier did.
  /// Returns false when the program is complete.
  bool sealNextGen(ProgramState &P) {
    if (P.NextGen.empty()) {
      finishProgram(P);
      return false;
    }
    const unsigned Budget =
        P.SOpts.MaxRuns > P.RunsFinalized ? P.SOpts.MaxRuns - P.RunsFinalized
                                          : 0;
    if (Budget == 0) {
      // Mirrors the wave loop's exit with a non-empty frontier: every
      // remaining subtree is dropped unexplored and reported.
      P.Result.FrontierTruncated = true;
      P.Result.DroppedSubtrees += static_cast<unsigned>(P.NextGen.size());
      for (Task *T : P.NextGen)
        abandonTask(*T);
      P.NextGen.clear();
      finishProgram(P);
      return false;
    }
    std::sort(P.NextGen.begin(), P.NextGen.end(),
              [](const Task *A, const Task *B) {
                return lexLess(A->Pinned, B->Pinned);
              });
    if (P.NextGen.size() > Budget) {
      P.Result.FrontierTruncated = true;
      P.Result.DroppedSubtrees +=
          static_cast<unsigned>(P.NextGen.size() - Budget);
      for (size_t I = Budget; I < P.NextGen.size(); ++I)
        abandonTask(*P.NextGen[I]);
      P.NextGen.resize(Budget);
    }
    ++P.Result.Waves;
    P.CurGen = std::move(P.NextGen);
    P.NextGen.clear();
    P.NextFinal = 0;
    P.SeenDivergence.clear();
    P.GenDedupHits = 0;
    P.GenSubtreesPruned = 0;
    return true;
  }

  /// Marks a task irrelevant (budget truncation). The start-snapshot
  /// id is written once at spawn and the cache is internally locked,
  /// so dropping it here is always safe. T.Snaps, however, is being
  /// appended to by the capture hook while the task executes: it may
  /// be touched here only when the run has provably finished (acquire
  /// on State pairs with the worker's release after executeTask). A
  /// still-running task's snapshots are released by its own worker's
  /// post-execute cleanup instead.
  void abandonTask(Task &T) {
    T.Abandoned.store(true, std::memory_order_release);
    Cache.drop(T.SnapId);
    if (T.State.load(std::memory_order_acquire) == Task::Executed) {
      for (const auto &[Depth, Id] : T.Snaps)
        Cache.drop(Id);
      T.Snaps.clear();
      T.ShareSnaps.clear();
      for (uint64_t Key : T.ProvKeys)
        T.Prog->Visited.retractProvisional(Key, &T);
      T.ProvKeys.clear();
    }
  }

  /// Derives the task's effective outcome — what the wave engine's run
  /// would have produced against the fully committed visited-set — and
  /// commits it. Called in canonical order under the commit mutex.
  void finalizeTask(ProgramState &P, Task &T) {
    const size_t PinnedLen = T.Pinned.size();
    ++P.RunsFinalized;
    const uint64_t Comm =
        RunsCommittedTotal.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t Exec = sumStripes(ExecStripes);
    uint64_t Lag = Exec > Comm ? Exec - Comm : 0;
    uint64_t Peak = CommitLagPeak.load(std::memory_order_relaxed);
    while (Lag > Peak && !CommitLagPeak.compare_exchange_weak(
                             Peak, Lag, std::memory_order_relaxed))
      ;
    // Release every provisional claim up front (before any early
    // return): keys the commit loop below publishes become committed
    // truth, the rest must stop steering speculation now.
    for (uint64_t Key : T.ProvKeys)
      P.Visited.retractProvisional(Key, &T);
    T.ProvKeys.clear();

    // The wave engine's cancellation point: the first stream entry
    // whose key an earlier generation committed. Everything before it
    // is exactly the run's Visited list; everything after it (trace,
    // snapshots, a late undefinedness) never happened in wave terms.
    size_t Cut = T.Stream.size();
    if (P.Dedup)
      for (size_t I = 0; I < T.Stream.size(); ++I)
        if (P.Visited.hitBefore(
                searchVisitKey(T.Stream[I].first, T.Stream[I].second),
                T.Gen)) {
          Cut = I;
          break;
        }
    const bool DedupAborted = Cut != T.Stream.size();
    const size_t EffTraceLen =
        DedupAborted ? T.Stream[Cut].first : T.Trace.size();
    const RunStatus EffStatus = DedupAborted ? RunStatus::Cancelled : T.Status;
    const bool EffUb = !DedupAborted && T.UbFound;

    if (T.Forked)
      ++P.Result.ForkedRuns;

    if (P.SOpts.CollectRuns) {
      SearchRunRecord Rec;
      Rec.Pinned = T.Pinned;
      Rec.Trace.assign(T.Trace.begin(), T.Trace.begin() + EffTraceLen);
      Rec.FpStream.reserve(Cut);
      for (size_t I = 0; I < Cut; ++I)
        Rec.FpStream.emplace_back(T.Stream[I].first, T.Stream[I].second);
      Rec.Status = EffStatus;
      Rec.DedupAborted = DedupAborted;
      Rec.Forked = T.Forked;
      P.Result.Runs.push_back(std::move(Rec));
    }

    if (PinnedLen == 0) {
      P.Result.RootStatus = T.Status;
      P.Result.RootOutput = std::move(T.Output);
      P.Result.RootExitCode = T.ExitCode;
    }

    if (EffUb) {
      // Canonical-order finalization makes the first effective UB the
      // global winner: smaller prefixes all finalized clean.
      P.Result.UbFound = true;
      P.Result.Reports = std::move(T.Reports);
      P.Result.Witness = T.Pinned;
      P.Result.LastStatus = T.Status;
      // The wave engine returns at this wave's barrier without
      // aggregating it; roll the generation's counters back so the
      // stats stay byte-identical.
      P.Result.DedupHits -= P.GenDedupHits;
      P.Result.SubtreesPruned -= P.GenSubtreesPruned;
      for (const auto &[Depth, Id] : T.Snaps)
        Cache.drop(Id);
      finishProgram(P);
      return;
    }

    if (DedupAborted) {
      ++P.Result.DedupHits;
      ++P.GenDedupHits;
    }
    if (EffStatus != RunStatus::Completed && EffStatus != RunStatus::Cancelled)
      P.Result.LastStatus = EffStatus; // surface StepLimit/Internal/...

    if (P.Dedup) {
      for (size_t I = 0; I < Cut; ++I)
        P.Visited.publish(
            searchVisitKey(T.Stream[I].first, T.Stream[I].second), T.Gen, &T);
      if (T.HasDivergence) {
        uint64_t Key = searchVisitKey(PinnedLen, T.DivergenceFp);
        if (!P.SeenDivergence.insert(Key).second) {
          // In-generation twin: an earlier (lex-smaller) sibling
          // diverged into the same state; this subtree mirrors its.
          ++P.Result.SubtreesPruned;
          ++P.GenSubtreesPruned;
          for (const auto &[Depth, Id] : T.Snaps)
            Cache.drop(Id);
          return;
        }
      }
    }

    // The driver's single-program gate: the search fans out only when
    // the default order completed cleanly (and a budget > 1 asked for
    // a search at all).
    if (PinnedLen == 0 && P.RootGated &&
        (T.Status != RunStatus::Completed || P.SOpts.MaxRuns <= 1)) {
      for (const auto &[Depth, Id] : T.Snaps)
        Cache.drop(Id);
      finishProgram(P);
      return;
    }

    // Spawn one child per flippable choice point of the effective
    // trace, exactly as the wave engine did — including for runs whose
    // effective outcome is a dedup cancellation (alternatives branching
    // off before the duplicate state are not covered by the earlier
    // visit).
    size_t SnapIdx = 0;
    size_t ShareIdx = 0;
    std::vector<Task *> NewTasks;
    for (size_t D = PinnedLen; D < EffTraceLen; ++D) {
      while (SnapIdx < T.Snaps.size() && T.Snaps[SnapIdx].first < D)
        Cache.drop(T.Snaps[SnapIdx++].second);
      while (ShareIdx < T.ShareSnaps.size() &&
             T.ShareSnaps[ShareIdx].first < D)
        ++ShareIdx; // elided captures own nothing to release
      if (T.Trace[D].second < 2)
        continue;
      P.Arena.emplace_back();
      Task &Child = P.Arena.back();
      Child.Prog = &P;
      Child.Gen = T.Gen + 1;
      Child.Pinned.reserve(D + 1);
      for (size_t I = 0; I < D; ++I)
        Child.Pinned.push_back(T.Trace[I].first);
      Child.Pinned.push_back(T.Trace[D].first ? 0 : 1);
      if (SnapIdx < T.Snaps.size() && T.Snaps[SnapIdx].first == D)
        Child.SnapId = T.Snaps[SnapIdx++].second;
      else if (ShareIdx < T.ShareSnaps.size() &&
               T.ShareSnaps[ShareIdx].first == D) {
        Child.ShareKey = T.ShareSnaps[ShareIdx++].second;
        Child.HasShareKey = true;
      }
      P.NextGen.push_back(&Child);
      NewTasks.push_back(&Child);
    }
    // Queue deepest-flip-first: under the left-to-right default a
    // deeper flip keeps a longer run of 0-decisions, so it is
    // lex-*smaller* — reversing makes FIFO execution track canonical
    // commit order, which keeps the in-flight visited-set fresh and
    // stops speculation from outrunning a canonically early witness.
    // (A wall-clock heuristic only; commit order fixes the results.)
    for (auto It = NewTasks.rbegin(); It != NewTasks.rend(); ++It)
      pushTask(*It, NextPush.fetch_add(1, std::memory_order_relaxed));
    // Snapshots past the effective trace (or unmatched) are unusable.
    while (SnapIdx < T.Snaps.size())
      Cache.drop(T.Snaps[SnapIdx++].second);
    T.Snaps.clear();
    T.ShareSnaps.clear();
    T.Stream.clear();
    T.Stream.shrink_to_fit();
  }

  /// Marks the program complete and publishes its aggregate counters.
  /// Called under the commit mutex; the result is final here, so the
  /// per-program wall-clock counters are published too (the one-shot
  /// epilogue re-publishes them with end-of-run values, preserving the
  /// PR-3 accounting). The completion callback is only *queued* —
  /// workers invoke it outside every scheduler lock.
  void finishProgram(ProgramState &P) {
    P.Result.RunsExplored = P.RunsFinalized;
    P.Result.SnapshotEvictions =
        P.EvictionsAtomic.load(std::memory_order_relaxed);
    P.Result.Steals = P.StealsAtomic.load(std::memory_order_relaxed);
    P.Result.PeakFrontier = static_cast<unsigned>(
        PeakFrontier.load(std::memory_order_relaxed)); // scheduler-wide
    P.Done.store(true, std::memory_order_release);
    for (Task &T : P.Arena)
      if (T.State.load(std::memory_order_acquire) == Task::Queued)
        T.Abandoned.store(true, std::memory_order_release);
    DoneDedupHits.fetch_add(P.Result.DedupHits, std::memory_order_relaxed);
    FinishedCount.fetch_add(1, std::memory_order_acq_rel);
    ProgramsLeft.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> Lock(CompletedMu);
      CompletedQ.push_back(P.Id);
      CompletedPending.fetch_add(1, std::memory_order_acq_rel);
    }
    wakeAllWorkers();
    {
      // Taking DoneMu pairs the notify with waiters' predicate checks;
      // without it a waiter between its check and its wait would miss
      // this completion until its poll interval expires.
      std::lock_guard<std::mutex> Lock(DoneMu);
    }
    DoneCv.notify_all();
  }

  /// Seeds a program with its root task (the empty prefix = the policy
  /// default order), unless the budget cannot even run it — then the
  /// program completes immediately as fully truncated. ProgramsLeft
  /// must already account for the program.
  void seedProgram(ProgramState &P, unsigned Hint) {
    if (P.SOpts.MaxRuns == 0) {
      P.Result.FrontierTruncated = true;
      P.Result.DroppedSubtrees += 1;
      finishProgram(P);
      return;
    }
    P.Arena.emplace_back();
    Task &Root = P.Arena.back();
    Root.Prog = &P;
    Root.Gen = 0;
    P.CurGen.push_back(&Root);
    P.NextFinal = 0;
    ++P.Result.Waves;
    pushTask(&Root, Hint);
  }
};

//===----------------------------------------------------------------------===//
// SearchScheduler
//===----------------------------------------------------------------------===//

SearchScheduler::SearchScheduler(Config Cfg)
    : I(std::make_unique<Impl>(Cfg)) {}

SearchScheduler::~SearchScheduler() { stop(); }

size_t SearchScheduler::submit(const AstContext &Ast, MachineOptions MOpts,
                               SearchOptions SOpts, bool RootGated) {
  Impl &S = *I;
  assert((!S.Ran || S.Persistent.load(std::memory_order_acquire)) &&
         "one-shot mode: submit all programs before runAll()");
  auto Slot = std::make_unique<ProgramState>();
  ProgramState &P = *Slot;
  P.Ast = &Ast;
  P.MOpts = MOpts;
  P.SOpts = SOpts;
  P.RootGated = RootGated;
  // Same gating policy as the wave engine: replay cannot reproduce the
  // Random policy's shuffle stream, and Declarative-style monitors keep
  // state outside the configuration a snapshot could capture. A
  // per-program SnapshotBudget of 0 keeps its documented "pure replay"
  // meaning; nonzero capacities come from Config.SnapshotBudget (the
  // cache is shared, so per-program sizes cannot coexist).
  P.Dedup = SOpts.Dedup && MOpts.Order != EvalOrderKind::Random;
  P.Snapshots = SOpts.UseSnapshots && SOpts.SnapshotBudget > 0 &&
                MOpts.Order != EvalOrderKind::Random &&
                MOpts.Style != RuleStyle::Declarative;
  // Sharing rides on the snapshot gate (donors are ordinary captures)
  // and is scoped to deduped searches, whose deterministic traces make
  // the share key's trace digest meaningful across submissions.
  P.Share = P.Snapshots && S.Cfg.SnapshotSharing && P.Dedup;
  P.MachineFp = machineOptionsFingerprint(MOpts);

  std::lock_guard<std::mutex> Lock(S.SubmitMu);
  P.Id = S.Programs.size();
  S.Programs.push_back(std::move(Slot));
  S.SubmittedCount.fetch_add(1, std::memory_order_acq_rel);
  if (S.Persistent.load(std::memory_order_acquire)) {
    // Service mode: the program goes live immediately on the running
    // pool. ProgramsLeft is bumped before seeding so drain() can never
    // observe a submitted-but-unaccounted program.
    S.ProgramsLeft.fetch_add(1, std::memory_order_acq_rel);
    S.seedProgram(P, S.NextPush.fetch_add(1, std::memory_order_relaxed));
  }
  return P.Id;
}

void SearchScheduler::runAll() {
  Impl &S = *I;
  assert(!S.Ran && "runAll() may be called once");
  assert(!S.Persistent.load(std::memory_order_acquire) &&
         "runAll() is the one-shot interface; service mode uses "
         "start()/drain()");
  S.Ran = true;
  S.Stats.Programs = static_cast<unsigned>(S.Programs.size());
  S.ProgramsLeft.store(S.Programs.size(), std::memory_order_release);

  // The calling thread is worker 0; with Jobs > 1 the remaining
  // workers spawn lazily, on demand, from pushTask (maybeSpawnHelper).
  // Seeding therefore happens with LazySpawn already live: a batch of
  // N programs pushes N roots and grows the pool immediately, while a
  // single tiny program never pays a thread spawn at all.
  if (S.Jobs > 1)
    S.LazySpawn.store(true, std::memory_order_release);
  unsigned Spawn = 0;
  for (auto &P : S.Programs)
    S.seedProgram(*P, Spawn++);

  if (S.ProgramsLeft.load(std::memory_order_acquire) > 0)
    S.workerLoop(0);
  if (S.Jobs > 1) {
    // Worker 0 only returns once every program finished; helpers then
    // observe exhausted() and retire (finishProgram woke them all).
    // Join without holding HelperMu — a retiring helper may be blocked
    // *in* maybeSpawnHelper on that mutex, and can even spawn one last
    // (immediately-retiring) helper — so swap-and-join until the pool
    // stays empty.
    for (;;) {
      std::vector<std::thread> Batch;
      {
        std::lock_guard<std::mutex> Lock(S.HelperMu);
        Batch.swap(S.Threads);
      }
      if (Batch.empty())
        break;
      for (std::thread &T : Batch)
        T.join();
    }
    S.LazySpawn.store(false, std::memory_order_release);
  }

  // Publish end-of-run aggregate counters (finishProgram already
  // published per-program ones; the wall-clock details are re-stamped
  // with final values to preserve the PR-3 accounting).
  S.Stats.Steals = S.sumStripes(S.StealStripes);
  S.Stats.SnapshotEvictions = S.Cache.evictions();
  S.Stats.PeakFrontier = S.PeakFrontier.load(std::memory_order_relaxed);
  S.Stats.RunsExecuted = S.sumStripes(S.ExecStripes);
  S.Stats.RunsCommitted = S.RunsCommittedTotal.load(std::memory_order_relaxed);
  S.Stats.ProvisionalHits = S.ProvisionalHits.load(std::memory_order_relaxed);
  S.Stats.ProvisionalRequeues =
      S.ProvisionalRequeues.load(std::memory_order_relaxed);
  S.Stats.CommitLagPeak = S.CommitLagPeak.load(std::memory_order_relaxed);
  const SnapshotCache::Counters SC = S.Cache.counters();
  S.Stats.SnapshotShards = S.Cache.shards();
  S.Stats.SnapshotTakes = SC.Takes;
  S.Stats.SnapshotHits = SC.Hits;
  S.Stats.SnapshotSlotSteals = SC.SlotSteals;
  S.Stats.SnapshotSharedHits = SC.SharedHits;
  for (auto &P : S.Programs) {
    P->Result.PeakFrontier =
        static_cast<unsigned>(S.Stats.PeakFrontier); // scheduler-wide
    S.Stats.DedupHits += P->Result.DedupHits;
  }
}

SearchResult SearchScheduler::takeResult(size_t Program) {
  ProgramState *P = I->program(Program);
  assert(P && "takeResult: program unknown or already reclaimed");
  P->ResultTaken = true;
  return std::move(P->Result);
}

SchedulerStats SearchScheduler::stats() const {
  Impl &S = *I;
  if (!S.Persistent.load(std::memory_order_acquire))
    return S.Stats;
  // Live snapshot: every field is monotonic (peak included), so two
  // snapshots diff into per-batch numbers.
  SchedulerStats St;
  St.Programs =
      static_cast<unsigned>(S.SubmittedCount.load(std::memory_order_acquire));
  St.Jobs = S.Jobs;
  St.Steals = S.sumStripes(S.StealStripes);
  St.SnapshotEvictions = S.Cache.evictions();
  St.PeakFrontier = S.PeakFrontier.load(std::memory_order_relaxed);
  St.RunsExecuted = S.sumStripes(S.ExecStripes);
  St.DedupHits = S.DoneDedupHits.load(std::memory_order_relaxed);
  St.RunsCommitted = S.RunsCommittedTotal.load(std::memory_order_relaxed);
  St.ProvisionalHits = S.ProvisionalHits.load(std::memory_order_relaxed);
  St.ProvisionalRequeues =
      S.ProvisionalRequeues.load(std::memory_order_relaxed);
  St.CommitLagPeak = S.CommitLagPeak.load(std::memory_order_relaxed);
  const SnapshotCache::Counters SC = S.Cache.counters();
  St.SnapshotShards = S.Cache.shards();
  St.SnapshotTakes = SC.Takes;
  St.SnapshotHits = SC.Hits;
  St.SnapshotSlotSteals = SC.SlotSteals;
  St.SnapshotSharedHits = SC.SharedHits;
  return St;
}

//===----------------------------------------------------------------------===//
// Service mode
//===----------------------------------------------------------------------===//

void SearchScheduler::start() {
  Impl &S = *I;
  assert(!S.Ran && "cannot mix start() with runAll()");
  if (S.Persistent.exchange(true, std::memory_order_acq_rel))
    return; // already started
  S.Threads.reserve(S.Jobs);
  for (unsigned W = 0; W < S.Jobs; ++W)
    S.Threads.emplace_back([&S, W] { S.workerLoop(W); });
}

bool SearchScheduler::started() const {
  return I->Persistent.load(std::memory_order_acquire);
}

void SearchScheduler::setProgramDoneCallback(std::function<void(size_t)> Fn) {
  assert(!started() && "set the completion callback before start()");
  I->DoneCb = std::move(Fn);
}

void SearchScheduler::waitProgram(size_t Program) {
  Impl &S = *I;
  // The pointer is captured once: taking SubmitMu inside the wait
  // predicate would invert the submit()->finishProgram lock order.
  // Callers must not race this against reclaimFinished() for a
  // program whose result they already took.
  ProgramState *P = S.program(Program);
  if (!P)
    return; // reclaimed: finished long ago
  std::unique_lock<std::mutex> Lock(S.DoneMu);
  S.DoneCv.wait(Lock, [&] { return P->Done.load(std::memory_order_acquire); });
}

void SearchScheduler::drain() {
  Impl &S = *I;
  std::unique_lock<std::mutex> Lock(S.DoneMu);
  S.DoneCv.wait(Lock, [&] {
    return S.FinishedCount.load(std::memory_order_acquire) ==
           S.SubmittedCount.load(std::memory_order_acquire);
  });
}

bool SearchScheduler::reclaimFinished() {
  Impl &S = *I;
  if (!S.Persistent.load(std::memory_order_acquire))
    return false;
  std::lock_guard<std::mutex> Lock(S.SubmitMu);
  // Only a fully idle pool is safe: with every program finished, no
  // queued task can spawn children and no in-flight run can outlive
  // the InFlight wait below.
  if (S.FinishedCount.load(std::memory_order_acquire) !=
      S.SubmittedCount.load(std::memory_order_acquire))
    return false;
  // Queued tasks all belong to finished programs now: abandoned work
  // the workers would drop one by one. Drop it wholesale.
  for (auto &D : S.Deques) {
    std::lock_guard<std::mutex> DL(D.Mu);
    for (Task *T : D.Q) {
      S.Cache.drop(T->SnapId);
      T->State.store(Task::Dropped, std::memory_order_release);
      S.QueuedCount.fetch_sub(1, std::memory_order_relaxed);
    }
    D.Q.clear();
  }
  // Workers may still hold a popped (cancelling) task; their machines
  // stop at the next cancel check, so this wait is bounded.
  while (S.InFlight.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();
  for (auto &Slot : S.Programs) {
    if (!Slot || !Slot->Done.load(std::memory_order_acquire) ||
        !Slot->ResultTaken)
      continue;
    // Executed-but-never-finalized tasks (overtaken by an early UB
    // winner) still pin their mid-run snapshot captures. In one-shot
    // mode the cache dies with the scheduler; a persistent pool must
    // sweep them here or they evict the next batch's snapshots and
    // silently degrade forks into replays.
    for (Task &T : Slot->Arena) {
      S.Cache.drop(T.SnapId);
      for (const auto &[Depth, Id] : T.Snaps)
        S.Cache.drop(Id);
    }
    Slot.reset();
  }
  return true;
}

SchedulerMemoryStats SearchScheduler::memoryStats() const {
  const Impl &S = *I;
  SchedulerMemoryStats M;
  {
    std::lock_guard<std::mutex> Lock(S.SubmitMu);
    M.ProgramSlots = S.Programs.size();
    for (const auto &Slot : S.Programs)
      if (Slot)
        ++M.RetainedPrograms;
  }
  M.PendingSnapshots = S.Cache.pending();
  M.QueuedTasks = S.QueuedCount.load(std::memory_order_relaxed);
  return M;
}

void SearchScheduler::stop() {
  Impl &S = *I;
  if (!S.Persistent.load(std::memory_order_acquire))
    return;
  S.Stopping.store(true, std::memory_order_release);
  S.wakeAllWorkers();
  for (std::thread &T : S.Threads)
    T.join();
  S.Threads.clear();
}
