//===- core/Machine.h - The executable C semantics --------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small-step abstract machine: the paper's K semantics of C
/// rendered as a step function over the configuration. Two modes:
///
///  * strict (kcc): every rule carries its undefinedness side
///    conditions; the machine stops (gets stuck) and reports when a
///    program leaves the defined fragment. This is the paper's
///    semantics-based undefinedness checker.
///  * permissive: the rules compute what LP64 hardware would, using
///    each object's concrete address; undefined programs keep running
///    (or fault). Baseline analyzers attach monitors to this mode.
///
/// The technique toggles in MachineOptions exist so the ablation
/// benches can switch off each paper mechanism (sections 4.1-4.3)
/// independently and measure what stops being caught.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_MACHINE_H
#define CUNDEF_CORE_MACHINE_H

#include "core/Configuration.h"
#include "core/EvalOrder.h"
#include "core/Monitor.h"
#include "core/RuleSet.h"
#include "support/Hash.h"
#include "ub/Report.h"

#include <functional>
#include <memory>

namespace cundef {

/// Which of the paper's specification styles implements the checks for
/// division and dereference (section 4.5; ablation bench).
enum class RuleStyle : uint8_t {
  SideConditions,  ///< guards inside the positive rules (section 4.1)
  PrecedenceChain, ///< inclusion/exclusion negative rules (section 4.5.1)
  Declarative,     ///< monitors observing events (section 4.5.2)
};

struct MachineOptions {
  bool Strict = true;
  /// Section 4.2.1: track locsWrittenTo for unsequenced side effects.
  bool TrackSequencing = true;
  /// Section 4.2.2: track notWritable for const-correctness.
  bool TrackConst = true;
  /// Section 4.3.1: pointers are symbolic; cross-object relational
  /// comparison and subtraction are undefined. Off = concrete addresses.
  bool SymbolicPointers = true;
  /// Section 4.3.2: pointers in memory are subObject fragments. Off =
  /// raw address bytes.
  bool PointerBytes = true;
  /// Section 4.3.3: uninitialized bytes are unknown(N). Off = 0xCD.
  bool UnknownBytes = true;
  /// C11 6.5p7 effective-type (strict aliasing) checking.
  bool CheckEffectiveTypes = true;
  bool StopAtFirstUb = true;
  uint64_t StepLimit = 5'000'000;
  EvalOrderKind Order = EvalOrderKind::LeftToRight;
  uint32_t Seed = 1;
  unsigned MaxCallDepth = 200;
  RuleStyle Style = RuleStyle::SideConditions;
};

/// Stable FNV-1a digest over every field of \p M. Two MachineOptions
/// with equal fingerprints drive byte-identical machines over the same
/// AST, so the digest is a content address for the semantics half of a
/// search configuration (the result cache in driver/ResultCache.h and
/// the cross-program snapshot-sharing key both build on it). Every
/// field participates — adding a MachineOptions member without hashing
/// it here would silently alias distinct configurations.
inline uint64_t machineOptionsFingerprint(const MachineOptions &M) {
  Fnv1a H;
  H.u8(M.Strict);
  H.u8(M.TrackSequencing);
  H.u8(M.TrackConst);
  H.u8(M.SymbolicPointers);
  H.u8(M.PointerBytes);
  H.u8(M.UnknownBytes);
  H.u8(M.CheckEffectiveTypes);
  H.u8(M.StopAtFirstUb);
  H.u64(M.StepLimit);
  H.u8(static_cast<uint8_t>(M.Order));
  H.u32(M.Seed);
  H.u32(M.MaxCallDepth);
  H.u8(static_cast<uint8_t>(M.Style));
  return mix64(H.digest());
}

/// A resumable point-in-time copy of a machine's run state: the
/// configuration (cheap to copy — the mem cell is copy-on-write) plus
/// the chooser's decision trace and RNG stream. Captured at flippable
/// choice points by the evaluation-order search so children fork
/// mid-run instead of replaying the whole prefix from main()
/// (core/Search.h). Pending captures live in the scheduling layer's LRU
/// SnapshotCache (core/Scheduler.h): a capture the cache evicted simply
/// means that child replays — forking is never load-bearing.
/// Everything that determines future behavior lives in these two
/// members; rule chains and monitors are rebuilt/stateless (snapshots
/// are not taken under the stateful Declarative style).
struct MachineSnapshot {
  Configuration Conf;
  OrderChooser Chooser;
};

class Machine {
public:
  Machine(const AstContext &Ctx, MachineOptions Opts, UbSink &Sink);

  /// Fork construction: resumes \p Snap with \p Decisions as the replay
  /// vector (consumed from the snapshot's current depth onward). The
  /// resulting run is step-for-step identical to a fresh machine
  /// replaying \p Decisions from main() — same decision trace, same
  /// fingerprint stream, same verdict — it just skips re-executing the
  /// shared prefix. Start it with resume(), not run().
  Machine(const AstContext &Ctx, MachineOptions Opts, UbSink &Sink,
          const MachineSnapshot &Snap, std::vector<uint8_t> Decisions);

  /// Attaches a monitor (not owned). Monitors outlive the run.
  void addMonitor(ExecMonitor *Monitor) { Monitors.push_back(Monitor); }

  /// Initializes static storage and runs main() to completion (or until
  /// a stop condition). Returns the final status.
  RunStatus run();

  /// Continues a forked machine from its snapshot state to completion.
  /// (run() calls this too, after setup.)
  RunStatus resume();

  /// One small step. Returns false when the machine has stopped.
  bool step();

  /// Pins evaluation-order decisions for search replay.
  void setReplayDecisions(std::vector<uint8_t> Decisions) {
    Chooser.setReplay(std::move(Decisions));
  }
  const std::vector<std::pair<uint8_t, uint8_t>> &decisionTrace() const {
    return Chooser.trace();
  }

  /// Called after every evaluation-order choice point, once the chosen
  /// permutation is part of the configuration (so fingerprints taken
  /// inside the hook distinguish the alternatives). Returning false
  /// cancels the run (RunStatus::Cancelled) — the search uses this to
  /// abandon interleavings whose state another interleaving already
  /// reached.
  using ChoiceHook = std::function<bool(Machine &M)>;
  void setChoiceHook(ChoiceHook Hook) {
    OnChoice = std::move(Hook);
    Conf.K.enableTracking(); // a fingerprint consumer exists
  }

  /// Called immediately before a flippable (arity >= 2) choice point,
  /// while the configuration is still the pre-choice state. The hook
  /// may call captureChoiceSnapshot() to obtain a resumable snapshot of
  /// that state; the search forks children from these instead of
  /// replaying prefixes. \p Arity is the operand count about to be
  /// ordered. The current decision depth is decisionTrace().size().
  using BeforeChoiceHook = std::function<void(Machine &M, unsigned Arity)>;
  void setBeforeChoiceHook(BeforeChoiceHook Hook) {
    OnBeforeChoice = std::move(Hook);
    Conf.K.enableTracking();
  }

  /// Valid only inside a BeforeChoiceHook invocation: a snapshot that,
  /// forked with any replay vector extending the current trace,
  /// re-executes the in-flight step from its beginning (the popped
  /// expression item is restored and the step counter rewound), so the
  /// forked run is indistinguishable from a from-scratch replay.
  MachineSnapshot captureChoiceSnapshot() const;

  /// True while executing a builtin's synchronous call-back into the
  /// semantics (qsort/bsearch comparators). Snapshots taken there would
  /// lose the builtin's C++-side state and must not be captured; the
  /// search falls back to prefix replay for such choice points.
  bool inSyncCall() const { return SyncDepth > 0; }

  /// Polled every 256 steps; returning true cancels the run. This is
  /// the search's cancellation token: when one worker finds
  /// undefinedness, runs that can no longer matter stop mid-execution
  /// instead of completing.
  using CancelCheck = std::function<bool()>;
  void setCancelCheck(CancelCheck Check) { ShouldCancel = std::move(Check); }

  /// Fingerprint of the current configuration plus the chooser's RNG
  /// stream (the two together determine all future behavior).
  /// Incremental: O(state touched since the last fingerprint).
  uint64_t configFingerprint() const {
    Fnv1a H;
    H.u64(Conf.fingerprint());
    H.u32(Chooser.rngState());
    return H.digest();
  }

  /// The same fingerprint recomputed from scratch (no caches). Always
  /// equal to configFingerprint(); kept as the reference the
  /// incremental path is tested against, and as bench_search's
  /// PR-1-style full-rehash baseline.
  uint64_t configFingerprintFull() const {
    Fnv1a H;
    H.u64(Conf.fingerprintFull());
    H.u32(Chooser.rngState());
    return H.digest();
  }

  Configuration &config() { return Conf; }
  const Configuration &config() const { return Conf; }
  const MachineOptions &options() const { return Opts; }
  const AstContext &ast() const { return Ctx; }
  UbSink &sink() { return Sink; }

  //===--- Reporting (used by rules, chains, monitors, builtins) -------===//
  /// Reports an undefined behavior; in strict mode with StopAtFirstUb
  /// this also stops the machine.
  void flagUb(UbKind Kind, SourceLoc Loc);
  void flagUbCode(uint16_t CatalogId, SourceLoc Loc);
  /// Stops with a hardware fault (permissive mode).
  void fault(const char *Why, SourceLoc Loc);
  std::string currentFunctionName() const;

  //===--- Memory interface (also used by libc builtins) ---------------===//
  /// Reads a scalar through \p Ptr with every strict check; returns
  /// false if the read could not produce a value (UB reported).
  bool loadScalar(SymPointer Ptr, QualType Ty, SourceLoc Loc, Value &Out);
  /// Writes a scalar with every strict check. \p IsInit bypasses const
  /// and sequencing (object construction).
  bool storeScalar(SymPointer Ptr, QualType Ty, const Value &V,
                   SourceLoc Loc, bool IsInit);
  /// Aggregate (struct/union) load/store as raw bytes.
  bool loadAgg(SymPointer Ptr, QualType Ty, SourceLoc Loc, Value &Out);
  bool storeAgg(SymPointer Ptr, QualType Ty, const Value &V, SourceLoc Loc,
                bool IsInit);
  /// Allocates a heap object (malloc); returns its id.
  uint32_t allocHeap(uint64_t Size);
  /// The deref rule (paper 4.1.2): validates forming an lvalue of
  /// \p Pointee from pointer value \p P. Reports UB on failure.
  bool derefCheck(const Value &P, QualType Pointee, SourceLoc Loc);
  /// Pointer + Delta elements with the 6.5.6p8 checks.
  bool pointerAdd(const Value &P, int64_t DeltaElems, SourceLoc Loc,
                  Value &Out);
  /// Concrete address of a pointer (permissive semantics, %p, casts).
  uint64_t absAddr(SymPointer Ptr) const;
  /// Appends to the program's stdout.
  void writeOutput(const std::string &Text) { Conf.Output += Text; }
  /// Marks a sequence point (empties locsWrittenTo, notifies monitors).
  void seqPoint();
  /// The variadic tail of the innermost call (printf-style builtins).
  const std::vector<Value> &varArgs() const { return Conf.frame().VarArgs; }
  /// Registers const byte ranges of a newly created object.
  void protectConstRanges(uint32_t ObjId, QualType Ty, uint64_t Offset);
  /// Fills an object range with zero bytes.
  void zeroFill(uint32_t ObjId, uint64_t Offset, uint64_t Len);
  /// Ends a heap object's life through free(); full checks inside.
  void runFree(const Value &PtrVal, SourceLoc Loc);
  /// Conversion driven by value/type shapes (compound assignment and
  /// NoProto argument adaptation); applies UB checks (e.g. UB 26).
  Value convertForMachine(const Value &V, const Type *To, SourceLoc Loc);
  /// Raw byte copy with full checks (memcpy/memmove/realloc). Copies
  /// bytes verbatim, preserving unknowns and pointer fragments (paper
  /// 4.3.3: byte-wise struct copies must work). With \p CheckOverlap,
  /// overlapping ranges are UB 27.
  bool copyBytes(SymPointer Dst, SymPointer Src, uint64_t Len,
                 SourceLoc Loc, bool CheckOverlap);
  /// memset: writes \p Len concrete bytes with checks.
  bool setBytes(SymPointer Dst, uint8_t Value, uint64_t Len, SourceLoc Loc);
  /// Reads a NUL-terminated string (for strlen/printf %s/...); reports
  /// UB on unknown bytes or missing terminator. False on failure.
  bool readCString(SymPointer Ptr, std::string &Out, SourceLoc Loc);
  /// Runs a user function to completion from inside a builtin (the
  /// callback path of qsort/bsearch). The sub-execution uses the same
  /// configuration; returns false if it stopped (UB, fault, ...).
  bool callFunctionSync(const FunctionDecl *Fn, std::vector<Value> Args,
                        SourceLoc Loc, Value &Result);
  /// Resolves a pointer value to the function it designates (null when
  /// it does not designate one).
  const FunctionDecl *functionFor(const Value &V) const;

private:
  //===--- Program setup (Machine.cpp) ----------------------------------===//
  void initStaticStorage();
  uint32_t createObjectForDecl(const VarDecl *D, StorageKind Storage);
  void runStaticInitializer(const VarDecl *D, uint32_t ObjId);
  uint32_t functionObject(const FunctionDecl *F);
  uint32_t literalObject(const StringLitExpr *S);

  //===--- Step dispatch -------------------------------------------------===//
  void stepItem(KItem Item); // takes the popped top of k

  //===--- Expressions (RulesExpr.cpp) -----------------------------------===//
  void stepExpr(const Expr *E);
  void scheduleOperands(const Expr *Node,
                        std::vector<const Expr *> Operands);
  void stepEvalOperands(KItem Item);
  void finishOperands(KItem &Item);
  void finishUnary(const UnaryExpr *U, std::vector<Value> &Vals);
  void finishBinary(const BinaryExpr *B, std::vector<Value> &Vals);
  void finishAssign(const AssignExpr *A, std::vector<Value> &Vals);
  void finishCall(const CallExpr *C, std::vector<Value> &Vals);
  void finishIndex(const IndexExpr *I, std::vector<Value> &Vals);
  void finishMember(const MemberExpr *M, std::vector<Value> &Vals);
  void stepLvToRv(const Expr *Node);
  void stepCastApply(const Expr *Node);
  void stepLogicRhs(const Expr *Node);
  void stepLogicDone(const Expr *Node);
  void stepCondPick(const Expr *Node);
  /// Pops the top value, checking the missing-return-value rule.
  Value popValue(SourceLoc Loc);
  void pushValue(Value V) { Conf.Values.push_back(std::move(V)); }
  /// Applies unary inc/dec semantics (shared by the four operators).
  void applyIncDec(const UnaryExpr *U, const Value &Lv);
  /// The division rule in the configured style (section 4.5 ablation).
  bool divisionRule(BinaryOp Op, const Value &L, const Value &R,
                    const Type *ResultTy, SourceLoc Loc, Value &Out);

  //===--- Statements (RulesStmt.cpp) ------------------------------------===//
  void stepStmt(const Stmt *S);
  void enterBlock(const CompoundStmt *B);
  void leaveBlock(KItem &Item);
  void execDeclInit(const VarDecl *D);
  void pushInitStores(uint32_t ObjId, const VarDecl *D, QualType Ty,
                      uint64_t Offset, const Expr *Init);
  void stepStoreTo(KItem &Item);
  void stepInitVar(KItem &Item);
  void unwindBreak(SourceLoc Loc);
  void unwindContinue(SourceLoc Loc);
  void unwindReturn(bool HasValue, SourceLoc Loc);
  void performGoto(const GotoStmt *G);
  void performSwitchDispatch(const SwitchStmt *W, const Value &V);
  /// Pushes the continuations to start executing at \p Target, which is
  /// nested somewhere inside \p S. Returns true if found.
  bool pushPathTo(const Stmt *S, const Stmt *Target);
  static bool stmtContains(const Stmt *Haystack, const Stmt *Needle);

  //===--- Memory internals (RulesMem.cpp) --------------------------------===//
  struct ResolvedLoc {
    uint32_t Obj = 0;
    int64_t Offset = 0;
    bool Ok = false;
  };
  /// Strict resolution: the pointer must name a live object in range.
  ResolvedLoc resolveStrict(SymPointer Ptr, uint64_t Len, SourceLoc Loc,
                            bool ForWrite);
  /// Permissive resolution through concrete addresses.
  ResolvedLoc resolvePermissive(SymPointer Ptr, uint64_t Len,
                                SourceLoc Loc);
  std::vector<Byte> encodeValue(const Value &V, uint64_t Size) const;
  /// Decodes bytes read as type \p Ty; applies unknown/fragment rules.
  bool decodeBytes(const std::vector<Byte> &Bytes, QualType Ty,
                   SourceLoc Loc, Value &Out);
  uint8_t permissiveByteValue(const Byte &B, uint64_t Addr) const;
  bool sequencingReadCheck(uint32_t Obj, int64_t Off, uint64_t Len,
                           SourceLoc Loc);
  bool sequencingWriteCheck(uint32_t Obj, int64_t Off, uint64_t Len,
                            SourceLoc Loc);
  bool constWriteCheck(uint32_t Obj, int64_t Off, uint64_t Len,
                       SourceLoc Loc);
  bool effectiveTypeCheck(uint32_t Obj, int64_t Off, QualType Ty,
                          SourceLoc Loc, bool IsWrite);
  /// The declared type at (Obj, Off), walking arrays/records.
  const Type *layoutTypeAt(QualType DeclTy, uint64_t Off,
                           uint64_t Len) const;

  //===--- Rule chains (section 4.5.1) ------------------------------------===//
  void buildRuleChains();
  RuleChain DerefChain;
  RuleChain DivChain;
public:
  const RuleChain &derefChain() const { return DerefChain; }
  const RuleChain &divChain() const { return DivChain; }

private:
  const AstContext &Ctx;
  MachineOptions Opts;
  UbSink &Sink;
  Configuration Conf;
  OrderChooser Chooser;
  ChoiceHook OnChoice;
  BeforeChoiceHook OnBeforeChoice;
  CancelCheck ShouldCancel;
  /// The node whose operands are being ordered (set across a
  /// BeforeChoiceHook invocation; captureChoiceSnapshot restores it).
  const Expr *PendingChoiceNode = nullptr;
  /// Nesting depth of callFunctionSync (see inSyncCall).
  unsigned SyncDepth = 0;
  std::vector<ExecMonitor *> Monitors;
  /// Monitors the machine itself owns (the declarative style's checks).
  std::vector<std::unique_ptr<ExecMonitor>> OwnedMonitors;

  friend class DeclarativeSequencingMonitor;
};

} // namespace cundef

#endif // CUNDEF_CORE_MACHINE_H
