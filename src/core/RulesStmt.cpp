//===- core/RulesStmt.cpp - Statement rules ----------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include <cassert>

using namespace cundef;

void Machine::enterBlock(const CompoundStmt *B) {
  // Lifetime of every automatic object declared directly in the block
  // begins at block entry (C11 6.2.4p5) -- this is what makes jumps
  // into the middle of a block see storage (uninitialized).
  KItem Leave = KItem::forStmt(KKind::LeaveBlock, B);
  for (const Stmt *S : B->Body) {
    const auto *D = dynCast<DeclStmt>(S);
    if (!D)
      continue;
    for (const VarDecl *V : D->Decls) {
      if (V->Storage == StorageClass::Static ||
          V->Storage == StorageClass::Extern)
        continue; // static locals pre-created; extern aliases a global
      if (!V->Ty.Ty->isCompleteObjectType())
        continue; // sema already diagnosed
      uint32_t Id = createObjectForDecl(V, StorageKind::Auto);
      Conf.frame().Env[V->DeclId] = Id;
      Leave.ObjectsToKill.push_back(Id);
    }
  }
  Conf.K.push_back(std::move(Leave));
}

void Machine::leaveBlock(KItem &Item) {
  for (uint32_t Id : Item.ObjectsToKill)
    Conf.Mem.markDead(Id);
}

void Machine::stepStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Compound: {
    const auto *B = cast<CompoundStmt>(S);
    enterBlock(B);
    for (size_t I = B->Body.size(); I-- > 0;)
      Conf.K.push_back(KItem::stmt(B->Body[I]));
    return;
  }
  case StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    // Objects were created at block entry; declaration statements run
    // the initializers (each one is a full expression).
    for (size_t I = D->Decls.size(); I-- > 0;)
      if (D->Decls[I]->Init && D->Decls[I]->Storage != StorageClass::Static)
        execDeclInit(D->Decls[I]);
    return;
  }
  case StmtKind::Expr: {
    const auto *E = cast<ExprStmt>(S);
    if (!E->E)
      return;
    Conf.K.push_back(KItem::simple(KKind::SeqPoint));
    Conf.K.push_back(KItem::simple(KKind::Pop));
    Conf.K.push_back(KItem::expr(E->E));
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    Conf.K.push_back(KItem::forStmt(KKind::IfDecide, I));
    Conf.K.push_back(KItem::expr(I->Cond));
    return;
  }
  case StmtKind::While:
    Conf.K.push_back(KItem::forStmt(KKind::WhileTest, S));
    return;
  case StmtKind::Do:
    Conf.K.push_back(KItem::forStmt(KKind::DoTest, S));
    Conf.K.push_back(KItem::stmt(cast<DoStmt>(S)->Body));
    return;
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    // The for statement is a scope of its own (the init declaration).
    KItem Leave = KItem::forStmt(KKind::LeaveBlock, F);
    if (F->Init) {
      if (const auto *D = dynCast<DeclStmt>(F->Init)) {
        for (const VarDecl *V : D->Decls) {
          if (V->Storage == StorageClass::Static ||
              V->Storage == StorageClass::Extern)
            continue;
          if (!V->Ty.Ty->isCompleteObjectType())
            continue;
          uint32_t Id = createObjectForDecl(V, StorageKind::Auto);
          Conf.frame().Env[V->DeclId] = Id;
          Leave.ObjectsToKill.push_back(Id);
        }
      }
    }
    Conf.K.push_back(std::move(Leave));
    Conf.K.push_back(KItem::forStmt(KKind::ForTest, F));
    if (F->Init)
      Conf.K.push_back(KItem::stmt(F->Init));
    return;
  }
  case StmtKind::Switch: {
    const auto *W = cast<SwitchStmt>(S);
    Conf.K.push_back(KItem::forStmt(KKind::SwitchEnd, W));
    Conf.K.push_back(KItem::forStmt(KKind::SwitchDispatch, W));
    Conf.K.push_back(KItem::expr(W->Cond));
    return;
  }
  case StmtKind::Case:
    Conf.K.push_back(KItem::stmt(cast<CaseStmt>(S)->Sub));
    return;
  case StmtKind::Default:
    Conf.K.push_back(KItem::stmt(cast<DefaultStmt>(S)->Sub));
    return;
  case StmtKind::Break:
    unwindBreak(S->Loc);
    return;
  case StmtKind::Continue:
    unwindContinue(S->Loc);
    return;
  case StmtKind::Goto:
    performGoto(cast<GotoStmt>(S));
    return;
  case StmtKind::Label:
    Conf.K.push_back(KItem::stmt(cast<LabelStmt>(S)->Sub));
    return;
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    KItem Ret = KItem::forStmt(KKind::DoReturn, R);
    Ret.HasValue = R->Value != nullptr;
    Conf.K.push_back(Ret);
    if (R->Value)
      Conf.K.push_back(KItem::expr(R->Value));
    return;
  }
  }
  assert(false && "unhandled statement kind");
}

void Machine::execDeclInit(const VarDecl *D) {
  uint32_t Id = Conf.lookup(D->DeclId);
  if (!Id) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  Conf.K.push_back(KItem::simple(KKind::SeqPoint));
  pushInitStores(Id, D, D->Ty, 0, D->Init);
}

/// Pushes k items that evaluate \p Init and store it at (ObjId, Offset)
/// with type \p Ty. Aggregates are zero-filled first (C11 6.7.9p19 --
/// members without an explicit initializer get static-style
/// initialization), then element stores run in source order.
void Machine::pushInitStores(uint32_t ObjId, const VarDecl *D, QualType Ty,
                             uint64_t Offset, const Expr *Init) {
  const Type *T = Ty.Ty;
  if (const auto *List = dynCast<InitListExpr>(Init)) {
    if (T->isArray()) {
      uint64_t ElemSize = Ctx.Types.sizeOf(T->Pointee);
      // Zero-fill the whole array, then store elements back to front so
      // they execute front to back.
      zeroFill(ObjId, Offset, Ctx.Types.sizeOf(Ty));
      for (size_t I = List->Inits.size(); I-- > 0;)
        pushInitStores(ObjId, D, T->Pointee, Offset + I * ElemSize,
                       List->Inits[I]);
      return;
    }
    if (T->isRecord()) {
      zeroFill(ObjId, Offset, Ctx.Types.sizeOf(Ty));
      const RecordInfo *Record = T->Record;
      size_t Limit = std::min(List->Inits.size(), Record->Fields.size());
      if (Record->IsUnion)
        Limit = std::min<size_t>(Limit, 1);
      for (size_t I = Limit; I-- > 0;)
        pushInitStores(ObjId, D, Record->Fields[I].Ty,
                       Offset + Record->Fields[I].Offset, List->Inits[I]);
      return;
    }
    // Scalar with braces: exactly one element (checked by sema).
    if (!List->Inits.empty())
      pushInitStores(ObjId, D, Ty, Offset, List->Inits[0]);
    return;
  }
  // Character array initialized from a string literal.
  if (T->isArray() && isa<StringLitExpr>(Init)) {
    const auto *Str = cast<StringLitExpr>(Init);
    zeroFill(ObjId, Offset, Ctx.Types.sizeOf(Ty));
    MemObject *Obj = Conf.Mem.mutate(ObjId);
    uint64_t Limit = std::min<uint64_t>(Str->Bytes.size(),
                                        Ctx.Types.sizeOf(Ty));
    for (uint64_t I = 0; I < Limit; ++I)
      Obj->Bytes[Offset + I] =
          Byte::concrete(static_cast<uint8_t>(Str->Bytes[I]));
    return;
  }
  // Scalar (or whole-record copy) initializer expression.
  KItem Store = KItem::simple(KKind::StoreTo);
  Store.D = D;
  Store.Offset = Offset;
  Store.Ty = Ty;
  Store.E = Init;
  Conf.K.push_back(Store);
  Conf.K.push_back(KItem::expr(Init));
}

void Machine::stepStoreTo(KItem &Item) {
  Value V = popValue(Item.E ? Item.E->Loc : SourceLoc());
  if (Conf.Status != RunStatus::Running)
    return;
  uint32_t ObjId = Conf.lookup(Item.D->DeclId);
  if (!ObjId) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  SymPointer Ptr(ObjId, static_cast<int64_t>(Item.Offset));
  SourceLoc Loc = Item.E ? Item.E->Loc : SourceLoc();
  if (Item.Ty.Ty->isRecord())
    storeAgg(Ptr, Item.Ty, V, Loc, /*IsInit=*/true);
  else
    storeScalar(Ptr, Item.Ty, V, Loc, /*IsInit=*/true);
}

void Machine::stepInitVar(KItem &Item) {
  // Retained for symmetry; scalar initialization flows through StoreTo.
  (void)Item;
  Conf.Status = RunStatus::Internal;
}
