//===- core/Monitor.h - Execution monitors ---------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation points the machine raises while executing. Monitors are
/// the implementation vehicle for two things:
///
///  * the paper's *declarative specification* style (section 4.5.2):
///    negative "never happens" properties expressed over configuration
///    events rather than woven into the rules; and
///  * the baseline analysis tools (Valgrind-, CheckPointer-,
///    ValueAnalysis-style), which attach to the permissive machine.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_CORE_MONITOR_H
#define CUNDEF_CORE_MONITOR_H

#include "core/Value.h"
#include "mem/SymbolicMemory.h"

#include <memory>
#include <vector>

namespace cundef {

class Machine;

/// Receives machine events. Default implementations ignore everything,
/// so monitors override only what they watch.
class ExecMonitor {
public:
  virtual ~ExecMonitor() = default;

  /// An object was allocated (globals, locals, heap, literals).
  virtual void onAlloc(Machine &M, const MemObject &Obj) { (void)M; (void)Obj; }
  /// free() was applied to \p Ptr; \p Target is the object id it names
  /// (0 when it names none) and \p Valid whether the free was legal.
  virtual void onFree(Machine &M, SymPointer Ptr, uint32_t Target,
                      bool Valid) {
    (void)M; (void)Ptr; (void)Target; (void)Valid;
  }
  /// A scalar of type \p Ty is about to be read through \p Ptr.
  virtual void onRead(Machine &M, SymPointer Ptr, QualType Ty,
                      SourceLoc Loc) {
    (void)M; (void)Ptr; (void)Ty; (void)Loc;
  }
  /// \p V is about to be written through \p Ptr.
  virtual void onWrite(Machine &M, SymPointer Ptr, QualType Ty,
                       const Value &V, SourceLoc Loc) {
    (void)M; (void)Ptr; (void)Ty; (void)V; (void)Loc;
  }
  /// Integer division/remainder with divisor \p Divisor.
  virtual void onDivide(Machine &M, const Value &Divisor, SourceLoc Loc) {
    (void)M; (void)Divisor; (void)Loc;
  }
  /// Integer arithmetic finished with the given outcome flags.
  virtual void onArith(Machine &M, const ArithOutcome &Out, SourceLoc Loc) {
    (void)M; (void)Out; (void)Loc;
  }
  /// A call is about to enter \p Callee (null for builtins).
  virtual void onCall(Machine &M, const FunctionDecl *Callee,
                      const CallExpr *Site) {
    (void)M; (void)Callee; (void)Site;
  }
  /// A sequence point was crossed.
  virtual void onSeqPoint(Machine &M) { (void)M; }
  /// A dereference is forming an lvalue of type \p Pointee from \p P.
  virtual void onDeref(Machine &M, const Value &P, QualType Pointee,
                       SourceLoc Loc) {
    (void)M; (void)P; (void)Pointee; (void)Loc;
  }
};

/// Builds the monitors that implement the paper's declarative
/// specification style (section 4.5.2): negative "this configuration
/// never occurs" properties for division by zero, overflow and shift
/// ranges, invalid dereference, and unsequenced side effects.
std::vector<std::unique_ptr<ExecMonitor>> makeDeclarativeMonitors();

} // namespace cundef

#endif // CUNDEF_CORE_MONITOR_H
