//===- core/Search.cpp - Parallel search over evaluation orders --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Wave-synchronous parallel enumeration with fingerprint deduplication
// and fork-at-choice-point scheduling. Key invariants (docs/SEARCH.md
// has the full argument):
//
//  * Tree: a prefix's run executes its pinned decisions, then continues
//    with the policy default; its children flip one later flippable
//    choice point each. Every decision vector is reachable through
//    exactly one chain of prefixes, so enumeration is complete.
//  * Start-mode equivalence: a run may start by forking the snapshot
//    its parent captured at the flipped choice point, or by replaying
//    its prefix from main(). A snapshot restores the exact pre-step
//    configuration and chooser, so both modes execute the identical
//    step sequence from the divergence on — same trace, same
//    fingerprint stream, same verdict. Which mode runs is a pure
//    wall-clock concern (the equivalence suite asserts this).
//  * Dedup soundness: a state is inserted into the visited-set only
//    when every alternative branching off the path that reached it has
//    been scheduled (children are spawned from the full recorded trace
//    even for runs the dedup cancelled). Hence "fingerprint present"
//    implies "subtree scheduled", and cancelling the second visit of a
//    state loses nothing.
//  * Determinism: a run's outcome depends only on (prefix, visited-set
//    committed at the previous barrier); prefixes of one wave are
//    prefix-incomparable, so the canonical (lex) order is total and the
//    minimal UB prefix of the first undefined wave is independent of
//    thread count and scheduling. Skipping or cancelling runs that are
//    canonically larger than a found witness cannot change the result.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"

#include "core/Scheduler.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_set>

using namespace cundef;

namespace {

/// What a child needs to become a run: its pinned prefix, and (when its
/// parent's capture is still in the LRU cache) the handle of the
/// snapshot taken at its flipped choice point.
struct ChildSeed {
  std::vector<uint8_t> Pinned;
  uint64_t SnapId = 0;
};

/// One frontier entry and everything its run produced.
struct WorkItem {
  std::vector<uint8_t> Pinned;
  /// Snapshot-cache handle to fork from (0, or an entry the cache has
  /// since evicted: replay Pinned from main()).
  uint64_t SnapId = 0;

  // Outputs of the run.
  RunStatus Status = RunStatus::Running;
  bool UbFound = false;
  bool DedupAborted = false;
  bool Forked = false;
  std::vector<UbReport> Reports;
  /// (decision, arity) trace of the run (kept for child construction
  /// and CollectRuns).
  std::vector<std::pair<uint8_t, uint8_t>> Trace;
  /// (depth, fingerprint) pairs observed at flippable choice points at
  /// or beyond the divergence; committed to the visited-set at the
  /// barrier.
  std::vector<std::pair<size_t, uint64_t>> Visited;
  /// Snapshot-cache handles captured during the run, one per flippable
  /// choice point at or beyond the divergence (ascending depth; gaps
  /// where a zero-capacity cache or a sync call suppressed capture).
  std::vector<std::pair<size_t, uint64_t>> Snaps;
  /// Fingerprint at the divergence point (depth == Pinned.size()), used
  /// to group in-wave twins. Valid when HasDivergence.
  uint64_t DivergenceFp = 0;
  bool HasDivergence = false;
  /// Root only: program-visible results of the default-order run.
  std::string Output;
  int ExitCode = 0;
  /// Children seeds spawned from the recorded trace.
  std::vector<ChildSeed> Children;
};

bool lexLess(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(), B.end());
}

} // namespace

SearchResult OrderSearch::run() {
  // The work-stealing scheduler (core/Scheduler.h) is the default; the
  // wave engine below is the reference implementation its committed
  // outputs are tested against byte-for-byte.
  if (Opts.Sched == SchedKind::Stealing) {
    SearchScheduler::Config Cfg;
    Cfg.Jobs = Opts.Jobs;
    Cfg.SnapshotBudget = Opts.SnapshotBudget;
    SearchScheduler Scheduler(Cfg);
    size_t Prog = Scheduler.submit(Ctx, BaseOpts, Opts);
    Scheduler.runAll();
    return Scheduler.takeResult(Prog);
  }

  SearchResult Result;

  // Replay reproduces a Random-policy run only as its 0/1 flip summary,
  // not its Fisher-Yates stream: a child replaying a prefix leaves the
  // RNG behind the parent's position, so "same fingerprint => same
  // future" does not hold across the policy's own shuffles, and a
  // forked child's RNG position would differ from a replayed one's.
  // Dedup and snapshots are therefore gated to deterministic policies.
  const bool Dedup =
      Opts.Dedup && BaseOpts.Order != EvalOrderKind::Random;
  // Declarative-style monitors keep sequencing state outside the
  // configuration, which a snapshot cannot capture.
  const bool Snapshots = Opts.UseSnapshots &&
                         BaseOpts.Order != EvalOrderKind::Random &&
                         BaseOpts.Style != RuleStyle::Declarative;

  // LRU cache of choice-point snapshots (replaces the admission-only
  // budget: captures are always admitted, the oldest pending snapshot
  // is evicted instead, and its child replays).
  SnapshotCache Cache(Opts.SnapshotBudget);
  std::atomic<unsigned> Evictions{0};
  std::vector<WorkItem> Wave(1); // root: empty prefix = the policy order
  std::unordered_set<uint64_t> Committed;
  std::atomic<unsigned> RunsStarted{0};
  // Index (within the current sorted wave) of the canonically smallest
  // prefix known to be undefined; runs at larger indices cannot win and
  // are skipped or cancelled.
  std::atomic<size_t> BestIdx{SIZE_MAX};

  const unsigned Jobs =
      Opts.Jobs ? Opts.Jobs : std::max(1u, std::thread::hardware_concurrency());

  // Runs one frontier entry to completion (or cancellation) on the
  // calling thread. Pure function of (Item, Committed, BestIdx); the
  // only shared writes are the atomics.
  auto processItem = [&](WorkItem &Item, size_t MyIdx) {
    const size_t PinnedLen = Item.Pinned.size();
    UbSink Sink;
    std::unique_ptr<MachineSnapshot> Snap = Cache.take(Item.SnapId);
    std::unique_ptr<Machine> Run;
    if (Snapshots && Snap) {
      Run = std::make_unique<Machine>(Ctx, BaseOpts, Sink, *Snap,
                                      Item.Pinned);
      Item.Forked = true;
    } else {
      Run = std::make_unique<Machine>(Ctx, BaseOpts, Sink);
      Run->setReplayDecisions(Item.Pinned);
    }
    Machine &M = *Run;

    M.setCancelCheck(
        [&]() { return BestIdx.load(std::memory_order_relaxed) < MyIdx; });

    if (Snapshots)
      M.setBeforeChoiceHook([&](Machine &Mach, unsigned) {
        const size_t Depth = Mach.decisionTrace().size();
        if (Depth < PinnedLen || Mach.inSyncCall())
          return;
        uint64_t Id = Cache.insert(Mach.captureChoiceSnapshot(), &Evictions);
        if (Id)
          Item.Snaps.emplace_back(Depth, Id);
      });

    M.setChoiceHook([&](Machine &Mach) {
      if (BestIdx.load(std::memory_order_relaxed) < MyIdx)
        return false; // a canonically smaller witness exists
      const auto &Trace = Mach.decisionTrace();
      const size_t Depth = Trace.size();
      if (Depth < std::max<size_t>(PinnedLen, 1))
        return true; // still inside the parent's already-explored path
      if (Trace.back().second < 2)
        return true; // forced point: nothing branches here
      const uint64_t Fp = Opts.FullRehash ? Mach.configFingerprintFull()
                                          : Mach.configFingerprint();
      if (Depth == PinnedLen) {
        Item.DivergenceFp = Fp;
        Item.HasDivergence = true;
      }
      if (Dedup && Committed.count(searchVisitKey(Depth, Fp))) {
        Item.DedupAborted = true; // state already reached by an earlier
        return false;             // prefix: this subtree is redundant
      }
      Item.Visited.emplace_back(Depth, Fp);
      return true;
    });

    Item.Status = Item.Forked ? M.resume() : M.run();
    Item.Trace = M.decisionTrace();
    if (PinnedLen == 0) {
      Item.Output = M.config().Output;
      Item.ExitCode = M.config().ExitCode;
    }
    Item.UbFound = Item.Status == RunStatus::UbDetected || !Sink.empty();
    if (Item.UbFound) {
      Item.Reports = Sink.all();
      for (const auto &[Depth, Id] : Item.Snaps)
        Cache.drop(Id); // no subtree will be spawned
      Item.Snaps.clear();
      // CAS-min: record the smallest undefined index of this wave.
      size_t Seen = BestIdx.load(std::memory_order_relaxed);
      while (MyIdx < Seen &&
             !BestIdx.compare_exchange_weak(Seen, MyIdx,
                                            std::memory_order_relaxed))
        ;
      return;
    }

    // Spawn one child per flippable choice point at or beyond the
    // divergence — from the full recorded trace, even when the run was
    // cancelled by the dedup: alternatives branching off the cancelled
    // path before the duplicate state are not covered by the earlier
    // visit and must still be scheduled. Each child takes the snapshot
    // captured at its choice point (if one was) and will fork there
    // instead of replaying the shared prefix.
    size_t SnapIdx = 0;
    for (size_t D = PinnedLen; D < Item.Trace.size(); ++D) {
      while (SnapIdx < Item.Snaps.size() && Item.Snaps[SnapIdx].first < D)
        Cache.drop(Item.Snaps[SnapIdx++].second);
      if (Item.Trace[D].second < 2)
        continue;
      ChildSeed Seed;
      Seed.Pinned.reserve(D + 1);
      for (size_t I = 0; I < D; ++I)
        Seed.Pinned.push_back(Item.Trace[I].first);
      Seed.Pinned.push_back(Item.Trace[D].first ? 0 : 1);
      if (SnapIdx < Item.Snaps.size() && Item.Snaps[SnapIdx].first == D)
        Seed.SnapId = Item.Snaps[SnapIdx++].second;
      Item.Children.push_back(std::move(Seed));
    }
    while (SnapIdx < Item.Snaps.size())
      Cache.drop(Item.Snaps[SnapIdx++].second);
    Item.Snaps.clear();
  };

  // Appends CollectRuns records for a processed wave, in sorted wave
  // order (deterministic at Jobs=1).
  auto recordWave = [&](std::vector<WorkItem> &Wave) {
    if (!Opts.CollectRuns)
      return;
    for (WorkItem &Item : Wave) {
      if (Item.Status == RunStatus::Running)
        continue; // never ran
      SearchRunRecord Rec;
      Rec.Pinned = Item.Pinned;
      Rec.Trace = Item.Trace;
      Rec.FpStream.reserve(Item.Visited.size());
      for (const auto &[Depth, Fp] : Item.Visited)
        Rec.FpStream.emplace_back(Depth, Fp);
      Rec.Status = Item.Status;
      Rec.DedupAborted = Item.DedupAborted;
      Rec.Forked = Item.Forked;
      Result.Runs.push_back(std::move(Rec));
    }
  };

  while (!Wave.empty() && RunsStarted.load() < Opts.MaxRuns) {
    ++Result.Waves;
    Result.PeakFrontier = std::max(Result.PeakFrontier,
                                   static_cast<unsigned>(Wave.size()));
    std::sort(Wave.begin(), Wave.end(),
              [](const WorkItem &A, const WorkItem &B) {
                return lexLess(A.Pinned, B.Pinned);
              });
    const unsigned Budget = Opts.MaxRuns - RunsStarted.load();
    if (Wave.size() > Budget) {
      // Budget edge: everything cut here is an unexplored subtree the
      // caller must know about — a clean verdict is not exhaustive.
      Result.FrontierTruncated = true;
      Result.DroppedSubtrees +=
          static_cast<unsigned>(Wave.size() - Budget);
      for (size_t I = Budget; I < Wave.size(); ++I)
        Cache.drop(Wave[I].SnapId);
      Wave.resize(Budget);
    }
    BestIdx.store(SIZE_MAX, std::memory_order_relaxed);

    if (Jobs == 1 || Wave.size() == 1) {
      for (size_t I = 0; I < Wave.size(); ++I) {
        RunsStarted.fetch_add(1);
        processItem(Wave[I], I);
        if (BestIdx.load(std::memory_order_relaxed) != SIZE_MAX)
          break; // smaller indices all ran: the minimum is final
      }
    } else {
      std::atomic<size_t> Next{0};
      auto Worker = [&]() {
        for (;;) {
          size_t I = Next.fetch_add(1);
          if (I >= Wave.size())
            return;
          // Skip runs that can no longer produce the minimal witness.
          if (BestIdx.load(std::memory_order_relaxed) < I)
            continue;
          RunsStarted.fetch_add(1);
          processItem(Wave[I], I);
        }
      };
      std::vector<std::thread> Threads;
      const unsigned N = std::min<size_t>(Jobs, Wave.size());
      Threads.reserve(N);
      for (unsigned T = 0; T < N; ++T)
        Threads.emplace_back(Worker);
      for (std::thread &T : Threads)
        T.join();
    }

    for (WorkItem &Item : Wave) {
      if (Item.Forked)
        ++Result.ForkedRuns;
      if (Item.Pinned.empty() && Item.Status != RunStatus::Running) {
        Result.RootStatus = Item.Status;
        Result.RootOutput = std::move(Item.Output);
        Result.RootExitCode = Item.ExitCode;
      }
    }

    // ---- Barrier: aggregate deterministically (single-threaded). ----
    recordWave(Wave);
    const size_t Win = BestIdx.load(std::memory_order_relaxed);
    if (Win != SIZE_MAX) {
      WorkItem &Winner = Wave[Win];
      Result.UbFound = true;
      Result.Reports = std::move(Winner.Reports);
      Result.Witness = std::move(Winner.Pinned);
      Result.LastStatus = Winner.Status;
      Result.RunsExplored = RunsStarted.load();
      Result.SnapshotEvictions = Evictions.load(std::memory_order_relaxed);
      return Result;
    }

    // Group in-wave twins by divergence state: items whose divergence
    // fingerprints collide at equal depth share their entire subtree;
    // only the canonically smallest (= lowest index, the wave is
    // sorted) keeps its children.
    std::unordered_set<uint64_t> SeenDivergence;
    std::vector<WorkItem> NextWave;
    for (WorkItem &Item : Wave) {
      if (Item.Status == RunStatus::Running) {
        // Skipped after cancellation: never ran, subtree unexplored (no
        // UB wave reaches here, so this only happens on budget edges).
        Result.FrontierTruncated = true;
        ++Result.DroppedSubtrees;
        Cache.drop(Item.SnapId);
        continue;
      }
      if (Item.Status != RunStatus::Completed &&
          Item.Status != RunStatus::Cancelled)
        Result.LastStatus = Item.Status; // surface StepLimit/Internal/…
      if (Item.DedupAborted)
        ++Result.DedupHits;
      if (Dedup) {
        for (const auto &[Depth, Fp] : Item.Visited)
          Committed.insert(searchVisitKey(Depth, Fp));
        if (Item.HasDivergence) {
          uint64_t Key = searchVisitKey(Item.Pinned.size(), Item.DivergenceFp);
          if (!SeenDivergence.insert(Key).second) {
            ++Result.SubtreesPruned; // in-wave twin: drop its mirror
            for (const ChildSeed &Child : Item.Children) // subtree
              Cache.drop(Child.SnapId);
            continue;
          }
        }
      }
      for (ChildSeed &Child : Item.Children) {
        NextWave.emplace_back();
        NextWave.back().Pinned = std::move(Child.Pinned);
        NextWave.back().SnapId = Child.SnapId;
      }
    }
    Wave = std::move(NextWave);
  }

  if (!Wave.empty()) {
    // The budget ran out with children still unexplored.
    Result.FrontierTruncated = true;
    Result.DroppedSubtrees += static_cast<unsigned>(Wave.size());
  }
  Result.RunsExplored = RunsStarted.load();
  Result.SnapshotEvictions = Evictions.load(std::memory_order_relaxed);
  return Result;
}
