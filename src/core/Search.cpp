//===- core/Search.cpp - Parallel search over evaluation orders --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Wave-synchronous parallel prefix enumeration with fingerprint
// deduplication. Key invariants (docs/SEARCH.md has the full argument):
//
//  * Tree: a prefix's run replays its pinned decisions, then continues
//    with the policy default; its children flip one later flippable
//    choice point each. Every decision vector is reachable through
//    exactly one chain of prefixes, so enumeration is complete.
//  * Dedup soundness: a state is inserted into the visited-set only
//    when every alternative branching off the path that reached it has
//    been scheduled (children are spawned from the full recorded trace
//    even for runs the dedup cancelled). Hence "fingerprint present"
//    implies "subtree scheduled", and cancelling the second visit of a
//    state loses nothing.
//  * Determinism: a run's outcome depends only on (prefix, visited-set
//    committed at the previous barrier); prefixes of one wave are
//    prefix-incomparable, so the canonical (lex) order is total and the
//    minimal UB prefix of the first undefined wave is independent of
//    thread count and scheduling. Skipping or cancelling runs that are
//    canonically larger than a found witness cannot change the result.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_set>

using namespace cundef;

namespace {

/// Visited-set key: depth is mixed in so that equal states reached
/// after different numbers of choice points stay distinct (the chooser
/// consumes replay decisions positionally, so depth is part of the
/// machine's effective state).
uint64_t visitKey(size_t Depth, uint64_t Fp) {
  return Fp ^ (static_cast<uint64_t>(Depth) * 0x9e3779b97f4a7c15ull);
}

/// One frontier entry and everything its run produced.
struct WorkItem {
  std::vector<uint8_t> Pinned;

  // Outputs of the run.
  RunStatus Status = RunStatus::Running;
  bool UbFound = false;
  bool DedupAborted = false;
  std::vector<UbReport> Reports;
  /// (depth, fingerprint) pairs observed at flippable choice points at
  /// or beyond the divergence; committed to the visited-set at the
  /// barrier.
  std::vector<std::pair<size_t, uint64_t>> Visited;
  /// Fingerprint at the divergence point (depth == Pinned.size()), used
  /// to group in-wave twins. Valid when HasDivergence.
  uint64_t DivergenceFp = 0;
  bool HasDivergence = false;
  /// Children prefixes spawned from the recorded trace.
  std::vector<std::vector<uint8_t>> Children;
};

bool lexLess(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(), B.end());
}

} // namespace

SearchResult OrderSearch::run() {
  SearchResult Result;

  // Replay reproduces a Random-policy run only as its 0/1 flip summary,
  // not its Fisher-Yates stream: a child replaying a prefix leaves the
  // RNG behind the parent's position, so "same fingerprint => same
  // future" does not hold across the policy's own shuffles. Dedup is
  // therefore gated to the deterministic policies.
  const bool Dedup =
      Opts.Dedup && BaseOpts.Order != EvalOrderKind::Random;

  std::vector<WorkItem> Wave(1); // root: empty prefix = the policy order
  std::unordered_set<uint64_t> Committed;
  std::atomic<unsigned> RunsStarted{0};
  // Index (within the current sorted wave) of the canonically smallest
  // prefix known to be undefined; runs at larger indices cannot win and
  // are skipped or cancelled.
  std::atomic<size_t> BestIdx{SIZE_MAX};

  const unsigned Jobs = std::max(1u, Opts.Jobs);

  // Runs one frontier entry to completion (or cancellation) on the
  // calling thread. Pure function of (Item, Committed, BestIdx); the
  // only shared writes are the atomics.
  auto processItem = [&](WorkItem &Item, size_t MyIdx) {
    const size_t PinnedLen = Item.Pinned.size();
    UbSink Sink;
    Machine M(Ctx, BaseOpts, Sink);
    M.setReplayDecisions(Item.Pinned);

    M.setCancelCheck(
        [&]() { return BestIdx.load(std::memory_order_relaxed) < MyIdx; });

    M.setChoiceHook([&](Machine &Mach) {
      if (BestIdx.load(std::memory_order_relaxed) < MyIdx)
        return false; // a canonically smaller witness exists
      const auto &Trace = Mach.decisionTrace();
      const size_t Depth = Trace.size();
      if (Depth < std::max<size_t>(PinnedLen, 1))
        return true; // still inside the parent's already-explored path
      if (Trace.back().second < 2)
        return true; // forced point: nothing branches here
      const uint64_t Fp = Mach.configFingerprint();
      if (Depth == PinnedLen) {
        Item.DivergenceFp = Fp;
        Item.HasDivergence = true;
      }
      if (Dedup && Committed.count(visitKey(Depth, Fp))) {
        Item.DedupAborted = true; // state already reached by an earlier
        return false;             // prefix: this subtree is redundant
      }
      Item.Visited.emplace_back(Depth, Fp);
      return true;
    });

    Item.Status = M.run();
    Item.UbFound = Item.Status == RunStatus::UbDetected || !Sink.empty();
    if (Item.UbFound) {
      Item.Reports = Sink.all();
      // CAS-min: record the smallest undefined index of this wave.
      size_t Seen = BestIdx.load(std::memory_order_relaxed);
      while (MyIdx < Seen &&
             !BestIdx.compare_exchange_weak(Seen, MyIdx,
                                            std::memory_order_relaxed))
        ;
      return;
    }

    // Spawn one child per flippable choice point at or beyond the
    // divergence — from the full recorded trace, even when the run was
    // cancelled by the dedup: alternatives branching off the cancelled
    // path before the duplicate state are not covered by the earlier
    // visit and must still be scheduled.
    const auto &Trace = M.decisionTrace();
    for (size_t D = PinnedLen; D < Trace.size(); ++D) {
      if (Trace[D].second < 2)
        continue;
      std::vector<uint8_t> Child;
      Child.reserve(D + 1);
      for (size_t I = 0; I < D; ++I)
        Child.push_back(Trace[I].first);
      Child.push_back(Trace[D].first ? 0 : 1);
      Item.Children.push_back(std::move(Child));
    }
  };

  while (!Wave.empty() && RunsStarted.load() < Opts.MaxRuns) {
    ++Result.Waves;
    std::sort(Wave.begin(), Wave.end(),
              [](const WorkItem &A, const WorkItem &B) {
                return lexLess(A.Pinned, B.Pinned);
              });
    const unsigned Budget = Opts.MaxRuns - RunsStarted.load();
    if (Wave.size() > Budget)
      Wave.resize(Budget);
    BestIdx.store(SIZE_MAX, std::memory_order_relaxed);

    if (Jobs == 1 || Wave.size() == 1) {
      for (size_t I = 0; I < Wave.size(); ++I) {
        RunsStarted.fetch_add(1);
        processItem(Wave[I], I);
        if (BestIdx.load(std::memory_order_relaxed) != SIZE_MAX)
          break; // smaller indices all ran: the minimum is final
      }
    } else {
      std::atomic<size_t> Next{0};
      auto Worker = [&]() {
        for (;;) {
          size_t I = Next.fetch_add(1);
          if (I >= Wave.size())
            return;
          // Skip runs that can no longer produce the minimal witness.
          if (BestIdx.load(std::memory_order_relaxed) < I)
            continue;
          RunsStarted.fetch_add(1);
          processItem(Wave[I], I);
        }
      };
      std::vector<std::thread> Threads;
      const unsigned N = std::min<size_t>(Jobs, Wave.size());
      Threads.reserve(N);
      for (unsigned T = 0; T < N; ++T)
        Threads.emplace_back(Worker);
      for (std::thread &T : Threads)
        T.join();
    }

    // ---- Barrier: aggregate deterministically (single-threaded). ----
    const size_t Win = BestIdx.load(std::memory_order_relaxed);
    if (Win != SIZE_MAX) {
      WorkItem &Winner = Wave[Win];
      Result.UbFound = true;
      Result.Reports = std::move(Winner.Reports);
      Result.Witness = std::move(Winner.Pinned);
      Result.LastStatus = Winner.Status;
      Result.RunsExplored = RunsStarted.load();
      return Result;
    }

    // Group in-wave twins by divergence state: items whose divergence
    // fingerprints collide at equal depth share their entire subtree;
    // only the canonically smallest (= lowest index, the wave is
    // sorted) keeps its children.
    std::unordered_set<uint64_t> SeenDivergence;
    std::vector<WorkItem> NextWave;
    for (WorkItem &Item : Wave) {
      if (Item.Status == RunStatus::Running)
        continue; // skipped after cancellation: never ran (no UB wave
                  // reaches here, so this only happens on budget edges)
      if (Item.Status != RunStatus::Completed &&
          Item.Status != RunStatus::Cancelled)
        Result.LastStatus = Item.Status; // surface StepLimit/Internal/…
      if (Item.DedupAborted)
        ++Result.DedupHits;
      if (Dedup) {
        for (const auto &[Depth, Fp] : Item.Visited)
          Committed.insert(visitKey(Depth, Fp));
        if (Item.HasDivergence) {
          uint64_t Key = visitKey(Item.Pinned.size(), Item.DivergenceFp);
          if (!SeenDivergence.insert(Key).second) {
            ++Result.SubtreesPruned; // in-wave twin: drop its mirror
            continue;                // subtree
          }
        }
      }
      for (std::vector<uint8_t> &Child : Item.Children) {
        NextWave.emplace_back();
        NextWave.back().Pinned = std::move(Child);
      }
    }
    Wave = std::move(NextWave);
  }

  Result.RunsExplored = RunsStarted.load();
  return Result;
}
