//===- core/Search.cpp - Search over evaluation orders -----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"

using namespace cundef;

namespace {

/// One run with pinned decisions. Returns true when UB was found.
bool runOnce(const AstContext &Ctx, const MachineOptions &Opts,
             std::vector<uint8_t> Decisions, SearchResult &Result) {
  UbSink Sink;
  Machine M(Ctx, Opts, Sink);
  M.setReplayDecisions(Decisions);
  RunStatus Status = M.run();
  ++Result.RunsExplored;
  Result.LastStatus = Status;
  if (Status == RunStatus::UbDetected || !Sink.empty()) {
    Result.UbFound = true;
    Result.Reports = Sink.all();
    Result.Witness = std::move(Decisions);
    return true;
  }
  return false;
}

} // namespace

SearchResult OrderSearch::run() {
  SearchResult Result;

  // Baseline: the policy's own order.
  UbSink Sink;
  Machine Probe(Ctx, BaseOpts, Sink);
  RunStatus Status = Probe.run();
  ++Result.RunsExplored;
  Result.LastStatus = Status;
  if (Status == RunStatus::UbDetected || !Sink.empty()) {
    Result.UbFound = true;
    Result.Reports = Sink.all();
    return Result;
  }
  const auto BaselineTrace = Probe.decisionTrace();

  // Phase 1: single flips. Order-dependent undefinedness usually hinges
  // on one operand pair's direction, so each choice point is flipped
  // alone first; this finds the paper's (10/d) + setDenom(0) in O(n).
  for (size_t I = 0;
       I < BaselineTrace.size() && Result.RunsExplored < MaxRuns; ++I) {
    if (BaselineTrace[I].second < 2)
      continue;
    std::vector<uint8_t> Decisions(I + 1, 0);
    for (size_t J = 0; J <= I; ++J)
      Decisions[J] = BaselineTrace[J].first;
    Decisions[I] = Decisions[I] ? 0 : 1;
    if (runOnce(Ctx, BaseOpts, std::move(Decisions), Result))
      return Result;
  }

  // Phase 1b: pairs of flips (covers nested order dependences where an
  // outer and an inner operand order must both reverse).
  for (size_t I = 0;
       I < BaselineTrace.size() && Result.RunsExplored < MaxRuns; ++I) {
    if (BaselineTrace[I].second < 2)
      continue;
    for (size_t J = I + 1;
         J < BaselineTrace.size() && Result.RunsExplored < MaxRuns; ++J) {
      if (BaselineTrace[J].second < 2)
        continue;
      std::vector<uint8_t> Decisions(J + 1, 0);
      for (size_t K = 0; K <= J; ++K)
        Decisions[K] = BaselineTrace[K].first;
      Decisions[I] = Decisions[I] ? 0 : 1;
      Decisions[J] = Decisions[J] ? 0 : 1;
      if (runOnce(Ctx, BaseOpts, std::move(Decisions), Result))
        return Result;
    }
  }

  // Phase 2: systematic odometer over the full decision space (deepest
  // decision increments first), within the remaining budget.
  std::vector<uint8_t> Decisions;
  while (Result.RunsExplored < MaxRuns) {
    UbSink S;
    Machine M(Ctx, BaseOpts, S);
    M.setReplayDecisions(Decisions);
    RunStatus St = M.run();
    ++Result.RunsExplored;
    Result.LastStatus = St;
    if (St == RunStatus::UbDetected || !S.empty()) {
      Result.UbFound = true;
      Result.Reports = S.all();
      Result.Witness = Decisions;
      return Result;
    }
    const auto &Trace = M.decisionTrace();
    std::vector<uint8_t> Next;
    Next.reserve(Trace.size());
    for (const auto &[Decision, Arity] : Trace)
      Next.push_back(Decision);
    size_t Depth = Trace.size();
    bool Advanced = false;
    while (Depth > 0) {
      --Depth;
      if (Next[Depth] + 1 < Trace[Depth].second) {
        ++Next[Depth];
        Next.resize(Depth + 1);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      return Result; // every alternative explored
    Decisions = std::move(Next);
  }
  return Result;
}
