//===- core/RulesExpr.cpp - Expression rules ---------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Side conditions limiting the positive rules (paper section 4.1) live
// here: division, dereference, pointer arithmetic and comparison,
// overflow, shift ranges, and the use of indeterminate values.
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include "ast/AstPrinter.h"
#include "libc/Builtins.h"

#include <cassert>

using namespace cundef;

void Machine::stepExpr(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::IntLit:
    pushValue(Value::makeInt(E->Ty.Ty, cast<IntLitExpr>(E)->Value));
    return;
  case ExprKind::FloatLit:
    pushValue(Value::makeFloat(E->Ty.Ty, cast<FloatLitExpr>(E)->Value));
    return;
  case ExprKind::StringLit: {
    uint32_t Id = literalObject(cast<StringLitExpr>(E));
    pushValue(Value::makeLValue(SymPointer(Id, 0), E->Ty));
    return;
  }
  case ExprKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    if (Ref->Fn) {
      // A function designator: a pointer value typed with the function
      // type until FunctionDecay retypes it.
      uint32_t Id = functionObject(Ref->Fn);
      pushValue(Value::makePointer(Ref->Fn->FnTy, SymPointer(Id, 0)));
      return;
    }
    uint32_t Id = Conf.lookup(Ref->Var->DeclId);
    if (!Id) {
      Conf.Status = RunStatus::Internal;
      return;
    }
    pushValue(Value::makeLValue(SymPointer(Id, 0), Ref->Ty));
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    scheduleOperands(E, {U->Sub});
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->Op == BinaryOp::LogAnd || B->Op == BinaryOp::LogOr) {
      Conf.K.push_back(KItem::forExpr(KKind::LogicRhs, B));
      Conf.K.push_back(KItem::expr(B->Lhs));
      return;
    }
    if (B->Op == BinaryOp::Comma) {
      // lhs ; sequence point ; rhs  (value of lhs discarded unread)
      Conf.K.push_back(KItem::expr(B->Rhs));
      Conf.K.push_back(KItem::simple(KKind::SeqPoint));
      Conf.K.push_back(KItem::simple(KKind::Pop));
      Conf.K.push_back(KItem::expr(B->Lhs));
      return;
    }
    scheduleOperands(E, {B->Lhs, B->Rhs});
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    scheduleOperands(E, {A->Lhs, A->Rhs});
    return;
  }
  case ExprKind::Cond: {
    Conf.K.push_back(KItem::forExpr(KKind::CondPick, E));
    Conf.K.push_back(KItem::expr(cast<CondExpr>(E)->Cond));
    return;
  }
  case ExprKind::Cast:
  case ExprKind::ImplicitCast: {
    const Expr *Sub = E->Kind == ExprKind::Cast
                          ? cast<CastExpr>(E)->Sub
                          : cast<ImplicitCastExpr>(E)->Sub;
    CastKind CK = E->Kind == ExprKind::Cast
                      ? cast<CastExpr>(E)->CK
                      : cast<ImplicitCastExpr>(E)->CK;
    if (CK == CastKind::LValueToRValue) {
      Conf.K.push_back(KItem::forExpr(KKind::LvToRv, E));
      Conf.K.push_back(KItem::expr(Sub));
      return;
    }
    Conf.K.push_back(KItem::forExpr(KKind::CastApply, E));
    Conf.K.push_back(KItem::expr(Sub));
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<const Expr *> Operands;
    Operands.push_back(C->Callee);
    for (const Expr *Arg : C->Args)
      Operands.push_back(Arg);
    scheduleOperands(E, std::move(Operands));
    return;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    scheduleOperands(E, {M->Base});
    return;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    scheduleOperands(E, {I->Base, I->Index});
    return;
  }
  case ExprKind::Sizeof: {
    const auto *S = cast<SizeofExpr>(E);
    QualType Ty = S->ArgExpr ? S->ArgExpr->Ty : S->ArgTy;
    uint64_t Size = Ty.isNull() ? 0 : Ctx.Types.sizeOf(Ty);
    pushValue(Value::makeInt(E->Ty.Ty, Size));
    return;
  }
  case ExprKind::InitList:
    Conf.Status = RunStatus::Internal; // only valid inside initializers
    return;
  }
}

void Machine::scheduleOperands(const Expr *Node,
                               std::vector<const Expr *> Operands) {
  // Pre-choice hook: the configuration is still the pre-step state
  // (popping Node's expr item and entering this function had no other
  // effect), which is what makes captureChoiceSnapshot's rewind exact.
  if (OnBeforeChoice && Operands.size() >= 2 &&
      Conf.Status == RunStatus::Running) {
    PendingChoiceNode = Node;
    OnBeforeChoice(*this, static_cast<unsigned>(Operands.size()));
    PendingChoiceNode = nullptr;
  }
  KItem Item = KItem::forExpr(KKind::EvalOperands, Node);
  Item.Perm = Chooser.choose(static_cast<unsigned>(Operands.size()));
  Item.Results.resize(Operands.size());
  Item.Operands = std::move(Operands);
  Item.Idx = 0;
  stepEvalOperands(std::move(Item));
  // The chosen permutation is on the k cell now, so a fingerprint taken
  // by the hook sees (and distinguishes) the decision just made.
  if (OnChoice && Conf.Status == RunStatus::Running && !OnChoice(*this))
    Conf.Status = RunStatus::Cancelled;
}

void Machine::stepEvalOperands(KItem Item) {
  // Collect the value produced by the previously scheduled operand.
  if (Item.Idx > 0) {
    Value V = popValue(Item.E->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    Item.Results[Item.Perm[Item.Idx - 1]] = std::move(V);
  }
  if (Item.Idx < Item.Operands.size()) {
    const Expr *Next = Item.Operands[Item.Perm[Item.Idx]];
    ++Item.Idx;
    Conf.K.push_back(std::move(Item));
    Conf.K.push_back(KItem::expr(Next));
    return;
  }
  finishOperands(Item);
}

void Machine::finishOperands(KItem &Item) {
  switch (Item.E->Kind) {
  case ExprKind::Unary:
    finishUnary(cast<UnaryExpr>(Item.E), Item.Results);
    return;
  case ExprKind::Binary:
    finishBinary(cast<BinaryExpr>(Item.E), Item.Results);
    return;
  case ExprKind::Assign:
    finishAssign(cast<AssignExpr>(Item.E), Item.Results);
    return;
  case ExprKind::Call:
    finishCall(cast<CallExpr>(Item.E), Item.Results);
    return;
  case ExprKind::Index:
    finishIndex(cast<IndexExpr>(Item.E), Item.Results);
    return;
  case ExprKind::Member:
    finishMember(cast<MemberExpr>(Item.E), Item.Results);
    return;
  default:
    Conf.Status = RunStatus::Internal;
    return;
  }
}

/// Checks an operand that is about to be used as a value: opaque bytes
/// (unknown or pointer fragments read through character lvalues) may be
/// stored but not computed with (paper section 4.3.3).
static bool checkComputable(Machine &M, const Value &V, SourceLoc Loc) {
  if (!V.isOpaque())
    return true;
  M.flagUb(UbKind::ReadIndeterminateValue, Loc);
  return !M.options().Strict;
}

void Machine::finishUnary(const UnaryExpr *U, std::vector<Value> &Vals) {
  Value &Sub = Vals[0];
  switch (U->Op) {
  case UnaryOp::AddrOf: {
    if (Sub.isLValue()) {
      pushValue(Value::makePointer(U->Ty.Ty, Sub.Ptr));
      return;
    }
    if (Sub.isPointer()) { // &function
      pushValue(Value::makePointer(U->Ty.Ty, Sub.Ptr));
      return;
    }
    Conf.Status = RunStatus::Internal;
    return;
  }
  case UnaryOp::Deref: {
    if (!Sub.isPointer()) {
      Conf.Status = RunStatus::Internal;
      return;
    }
    QualType Pointee = Sub.Ty->Pointee;
    if (Pointee.Ty->isFunction()) {
      // *fp is again a function designator.
      pushValue(Value::makePointer(Pointee.Ty, Sub.Ptr));
      return;
    }
    if (!derefCheck(Sub, Pointee, U->Loc))
      return;
    if (Opts.Strict && Opts.SymbolicPointers && Sub.SubLen != 0 &&
        Sub.Ptr.Offset ==
            Sub.SubStart + static_cast<int64_t>(Sub.SubLen)) {
      flagUbCode(64, U->Loc); // deref one past the inner array
      return;
    }
    pushValue(Value::makeLValue(Sub.Ptr, Pointee));
    return;
  }
  case UnaryOp::Plus:
    if (!checkComputable(*this, Sub, U->Loc))
      return;
    pushValue(Sub);
    return;
  case UnaryOp::Minus: {
    if (!checkComputable(*this, Sub, U->Loc))
      return;
    if (Sub.isFloat()) {
      pushValue(Value::makeFloat(U->Ty.Ty, -Sub.F));
      return;
    }
    Value Zero = Value::makeInt(U->Ty.Ty, 0);
    ArithOutcome Out =
        evalIntBinary(BinaryOp::Sub, Zero, Sub, U->Ty.Ty, Ctx.Types);
    for (ExecMonitor *M : Monitors)
      M->onArith(*this, Out, U->Loc);
    if (Out.Overflow && Opts.Strict) {
      flagUb(UbKind::SignedOverflow, U->Loc);
      if (Opts.StopAtFirstUb)
        return;
    }
    pushValue(Out.V);
    return;
  }
  case UnaryOp::BitNot: {
    if (!checkComputable(*this, Sub, U->Loc))
      return;
    uint64_t Bits = ~Sub.asUnsigned(Ctx.Types);
    pushValue(Value::makeInt(U->Ty.Ty, truncateBits(Bits, U->Ty.Ty,
                                                    Ctx.Types)));
    return;
  }
  case UnaryOp::LogNot: {
    if (!checkComputable(*this, Sub, U->Loc))
      return;
    pushValue(Value::makeInt(U->Ty.Ty, Sub.truthy(Ctx.Types) ? 0 : 1));
    return;
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec:
    applyIncDec(U, Sub);
    return;
  }
}

void Machine::applyIncDec(const UnaryExpr *U, const Value &Lv) {
  if (!Lv.isLValue()) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  QualType Ty = Lv.lvalueType();
  Value Old;
  if (!loadScalar(Lv.Ptr, Ty, U->Loc, Old))
    return;
  if (!checkComputable(*this, Old, U->Loc))
    return;
  bool IsInc = U->Op == UnaryOp::PreInc || U->Op == UnaryOp::PostInc;
  bool IsPost = U->Op == UnaryOp::PostInc || U->Op == UnaryOp::PostDec;
  Value New;
  if (Old.isPointer()) {
    if (!pointerAdd(Old, IsInc ? 1 : -1, U->Loc, New))
      return;
  } else if (Old.isFloat()) {
    New = Value::makeFloat(Old.Ty, IsInc ? Old.F + 1.0 : Old.F - 1.0);
  } else {
    // Compute in the promoted type (so char/short never overflow), then
    // convert back; overflow in int-or-wider is UB 3.
    QualType Promoted = Ctx.Types.promote(QualType(Old.Ty));
    Value Wide = Value::makeInt(
        Promoted.Ty, truncateBits(Old.Bits, Old.Ty, Ctx.Types));
    if (!Old.Ty->isUnsignedInteger(Ctx.Types.config()))
      Wide = Value::makeInt(Promoted.Ty,
                            static_cast<uint64_t>(Old.asSigned(Ctx.Types)));
    Value One = Value::makeInt(Promoted.Ty, 1);
    ArithOutcome Out =
        evalIntBinary(IsInc ? BinaryOp::Add : BinaryOp::Sub, Wide, One,
                      Promoted.Ty, Ctx.Types);
    for (ExecMonitor *M : Monitors)
      M->onArith(*this, Out, U->Loc);
    if (Out.Overflow && Opts.Strict) {
      flagUb(UbKind::SignedOverflow, U->Loc);
      if (Opts.StopAtFirstUb)
        return;
    }
    New = Value::makeInt(Old.Ty,
                         truncateBits(Out.V.Bits, Old.Ty, Ctx.Types));
  }
  if (!storeScalar(Lv.Ptr, Ty, New, U->Loc, /*IsInit=*/false))
    return;
  pushValue(IsPost ? Old : New);
}

bool Machine::divisionRule(BinaryOp Op, const Value &L, const Value &R,
                           const Type *ResultTy, SourceLoc Loc, Value &Out) {
  for (ExecMonitor *M : Monitors)
    M->onDivide(*this, R, Loc);

  if (Opts.Style == RuleStyle::PrecedenceChain && Opts.Strict) {
    RuleContext RC;
    RC.Operand0 = L;
    RC.Operand1 = R;
    RC.Loc = Loc;
    RC.Node = nullptr;
    // The chain carries the result type through Operand0's type slot;
    // rules read machine state directly.
    const char *Applied = DivChain.apply(*this, RC);
    (void)Applied;
    if (!RC.ProducedResult)
      return false; // a negative rule reported undefinedness
    Out = RC.Result;
    return true;
  }

  bool DivisorZero = R.asUnsigned(Ctx.Types) == 0;
  if (DivisorZero) {
    if (Opts.Strict && Opts.Style != RuleStyle::Declarative) {
      flagUb(Op == BinaryOp::Div ? UbKind::DivisionByZero
                                 : UbKind::ModuloByZero,
             Loc);
      return false;
    }
    if (Opts.Strict && Conf.Status != RunStatus::Running)
      return false; // a declarative monitor already stopped us
    // Modelled hardware (ARM-style) yields 0 rather than trapping.
    Out = Value::makeInt(ResultTy, 0);
    return true;
  }
  ArithOutcome Res = evalIntBinary(Op, L, R, ResultTy, Ctx.Types);
  for (ExecMonitor *M : Monitors)
    M->onArith(*this, Res, Loc);
  if (Res.Overflow && Opts.Strict && Opts.Style != RuleStyle::Declarative) {
    flagUb(UbKind::SignedOverflow, Loc);
    return false;
  }
  if (Opts.Strict && Conf.Status != RunStatus::Running)
    return false;
  Out = Res.V;
  return true;
}

void Machine::finishBinary(const BinaryExpr *B, std::vector<Value> &Vals) {
  Value &L = Vals[0];
  Value &R = Vals[1];
  if (!checkComputable(*this, L, B->Loc) ||
      !checkComputable(*this, R, B->Loc))
    return;

  // Pointer arithmetic and comparison (paper section 4.3.1).
  if (L.isPointer() || R.isPointer()) {
    switch (B->Op) {
    case BinaryOp::Add: {
      const Value &P = L.isPointer() ? L : R;
      const Value &I = L.isPointer() ? R : L;
      Value Out;
      if (!pointerAdd(P, I.asSigned(Ctx.Types), B->Loc, Out))
        return;
      pushValue(Out);
      return;
    }
    case BinaryOp::Sub: {
      if (L.isPointer() && !R.isPointer()) {
        Value Out;
        if (!pointerAdd(L, -R.asSigned(Ctx.Types), B->Loc, Out))
          return;
        pushValue(Out);
        return;
      }
      // Pointer difference.
      uint64_t ElemSize = 1;
      if (L.Ty->Pointee.Ty && L.Ty->Pointee.Ty->isCompleteObjectType())
        ElemSize = Ctx.Types.sizeOf(L.Ty->Pointee);
      if (Opts.Strict && Opts.SymbolicPointers) {
        if (L.Ptr.FromInteger || R.Ptr.FromInteger ||
            L.Ptr.Base != R.Ptr.Base || L.Ptr.isNull()) {
          flagUb(UbKind::PointerSubDifferentObjects, B->Loc);
          return;
        }
        const MemObject *Obj = Conf.Mem.find(L.Ptr.Base);
        if (Obj && !Obj->isAlive()) {
          flagUbCode(53, B->Loc); // value of dangling pointer used
          return;
        }
        int64_t Diff = (L.Ptr.Offset - R.Ptr.Offset) /
                       static_cast<int64_t>(ElemSize);
        pushValue(Value::makeInt(B->Ty.Ty,
                                 static_cast<uint64_t>(Diff)));
        return;
      }
      int64_t Diff = static_cast<int64_t>(absAddr(L.Ptr)) -
                     static_cast<int64_t>(absAddr(R.Ptr));
      pushValue(Value::makeInt(B->Ty.Ty,
                               static_cast<uint64_t>(
                                   Diff / static_cast<int64_t>(ElemSize))));
      return;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Equal;
      if (Opts.Strict && Opts.SymbolicPointers)
        Equal = L.Ptr == R.Ptr;
      else
        Equal = absAddr(L.Ptr) == absAddr(R.Ptr);
      bool Result = B->Op == BinaryOp::Eq ? Equal : !Equal;
      pushValue(Value::makeInt(B->Ty.Ty, Result ? 1 : 0));
      return;
    }
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: {
      if (Opts.Strict && Opts.SymbolicPointers) {
        // Only pointers into the same object are ordered (6.5.8p5);
        // this is the paper's &a < &b example.
        if (L.Ptr.isNull() || R.Ptr.isNull() || L.Ptr.FromInteger ||
            R.Ptr.FromInteger || L.Ptr.Base != R.Ptr.Base) {
          flagUb(UbKind::PointerCompareDifferentObjects, B->Loc);
          return;
        }
        const MemObject *Obj = Conf.Mem.find(L.Ptr.Base);
        if (Obj && !Obj->isAlive()) {
          flagUbCode(53, B->Loc);
          return;
        }
        int64_t A = L.Ptr.Offset, Bo = R.Ptr.Offset;
        bool Result = B->Op == BinaryOp::Lt   ? A < Bo
                      : B->Op == BinaryOp::Gt ? A > Bo
                      : B->Op == BinaryOp::Le ? A <= Bo
                                              : A >= Bo;
        pushValue(Value::makeInt(B->Ty.Ty, Result ? 1 : 0));
        return;
      }
      uint64_t A = absAddr(L.Ptr), Bo = absAddr(R.Ptr);
      bool Result = B->Op == BinaryOp::Lt   ? A < Bo
                    : B->Op == BinaryOp::Gt ? A > Bo
                    : B->Op == BinaryOp::Le ? A <= Bo
                                            : A >= Bo;
      pushValue(Value::makeInt(B->Ty.Ty, Result ? 1 : 0));
      return;
    }
    default:
      Conf.Status = RunStatus::Internal;
      return;
    }
  }

  if (L.isFloat() || R.isFloat()) {
    pushValue(evalFloatBinary(B->Op, L, R, B->Ty.Ty, Ctx.Types));
    return;
  }

  // Integer arithmetic.
  if (B->Op == BinaryOp::Div || B->Op == BinaryOp::Rem) {
    Value Out;
    if (!divisionRule(B->Op, L, R, B->Ty.Ty, B->Loc, Out))
      return;
    pushValue(Out);
    return;
  }
  ArithOutcome Out = evalIntBinary(B->Op, L, R, B->Ty.Ty, Ctx.Types);
  for (ExecMonitor *M : Monitors)
    M->onArith(*this, Out, B->Loc);
  if (Opts.Strict && Opts.Style != RuleStyle::Declarative) {
    if (Out.Overflow) {
      flagUb(UbKind::SignedOverflow, B->Loc);
      return;
    }
    if (Out.ShiftNegCount) {
      flagUb(UbKind::NegativeShiftCount, B->Loc);
      return;
    }
    if (Out.ShiftTooWide) {
      flagUb(UbKind::ShiftExponentOutOfRange, B->Loc);
      return;
    }
    if (Out.ShiftOfNeg) {
      flagUb(UbKind::ShiftOfNegative, B->Loc);
      return;
    }
  }
  if (Opts.Strict && Conf.Status != RunStatus::Running)
    return; // declarative monitor stopped us
  pushValue(Out.V);
}

void Machine::finishAssign(const AssignExpr *A, std::vector<Value> &Vals) {
  Value &Target = Vals[0];
  Value &Rhs = Vals[1];
  if (!Target.isLValue()) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  QualType LhsTy = Target.lvalueType();

  if (A->Op == AssignOp::Assign) {
    bool Ok = LhsTy.Ty->isRecord()
                  ? storeAgg(Target.Ptr, LhsTy, Rhs, A->Loc, false)
                  : storeScalar(Target.Ptr, LhsTy, Rhs, A->Loc, false);
    if (!Ok)
      return;
    Value Result = Rhs;
    Result.Ty = A->Ty.Ty;
    pushValue(std::move(Result));
    return;
  }

  // Compound assignment: read, compute in ComputeTy, convert back.
  Value Old;
  if (!loadScalar(Target.Ptr, LhsTy, A->Loc, Old))
    return;
  if (!checkComputable(*this, Old, A->Loc) ||
      !checkComputable(*this, Rhs, A->Loc))
    return;
  BinaryOp Op = compoundOpOf(A->Op);
  Value New;
  if (Old.isPointer()) {
    if (!pointerAdd(Old, Op == BinaryOp::Add ? Rhs.asSigned(Ctx.Types)
                                             : -Rhs.asSigned(Ctx.Types),
                    A->Loc, New))
      return;
  } else {
    Value Wide = convertForMachine(Old, A->ComputeTy.Ty, A->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
    if (Wide.isFloat() || Rhs.isFloat()) {
      New = evalFloatBinary(Op, Wide, Rhs, A->ComputeTy.Ty, Ctx.Types);
    } else if (Op == BinaryOp::Div || Op == BinaryOp::Rem) {
      if (!divisionRule(Op, Wide, Rhs, A->ComputeTy.Ty, A->Loc, New))
        return;
    } else {
      ArithOutcome Out =
          evalIntBinary(Op, Wide, Rhs, A->ComputeTy.Ty, Ctx.Types);
      for (ExecMonitor *M : Monitors)
        M->onArith(*this, Out, A->Loc);
      if (Opts.Strict && Opts.Style != RuleStyle::Declarative &&
          (Out.Overflow || Out.ShiftTooWide || Out.ShiftNegCount ||
           Out.ShiftOfNeg)) {
        flagUb(Out.Overflow ? UbKind::SignedOverflow
               : Out.ShiftNegCount
                   ? UbKind::NegativeShiftCount
                   : Out.ShiftTooWide ? UbKind::ShiftExponentOutOfRange
                                      : UbKind::ShiftOfNegative,
               A->Loc);
        return;
      }
      if (Opts.Strict && Conf.Status != RunStatus::Running)
        return;
      New = Out.V;
    }
    New = convertForMachine(New, LhsTy.Ty, A->Loc);
    if (Conf.Status != RunStatus::Running)
      return;
  }
  if (!storeScalar(Target.Ptr, LhsTy, New, A->Loc, false))
    return;
  Value Result = New;
  Result.Ty = A->Ty.Ty;
  pushValue(std::move(Result));
}

void Machine::finishIndex(const IndexExpr *I, std::vector<Value> &Vals) {
  Value &Base = Vals[0];
  Value &Idx = Vals[1];
  if (!Base.isPointer() || !Idx.isInt()) {
    if (!checkComputable(*this, Base, I->Loc) ||
        !checkComputable(*this, Idx, I->Loc))
      return;
    Conf.Status = RunStatus::Internal;
    return;
  }
  Value Moved;
  if (!pointerAdd(Base, Idx.asSigned(Ctx.Types), I->Loc, Moved))
    return;
  // Forming an lvalue exactly one past the decayed inner array: the
  // enclosing object may continue, but the access is out of the
  // subscripted array's range (catalog row 64).
  if (Opts.Strict && Opts.SymbolicPointers && Moved.SubLen != 0 &&
      Moved.Ptr.Offset ==
          Moved.SubStart + static_cast<int64_t>(Moved.SubLen)) {
    flagUbCode(64, I->Loc);
    return;
  }
  pushValue(Value::makeLValue(Moved.Ptr, I->Ty));
}

void Machine::finishMember(const MemberExpr *M, std::vector<Value> &Vals) {
  Value &Base = Vals[0];
  const Type *RecordTy = nullptr;
  SymPointer Ptr;
  if (M->IsArrow) {
    if (!Base.isPointer()) {
      Conf.Status = RunStatus::Internal;
      return;
    }
    RecordTy = Base.Ty->Pointee.Ty;
    if (!derefCheck(Base, Base.Ty->Pointee, M->Loc))
      return;
    Ptr = Base.Ptr;
  } else if (Base.isLValue()) {
    RecordTy = Base.Ty;
    Ptr = Base.Ptr;
  } else if (Base.isAgg()) {
    // Member of a struct rvalue (e.g. f().x): slice the bytes.
    RecordTy = Base.Ty;
    const FieldInfo &Field = RecordTy->Record->Fields[M->FieldIdx];
    uint64_t Size = Ctx.Types.sizeOf(Field.Ty);
    std::vector<Byte> Bytes(
        Base.AggBytes.begin() + static_cast<long>(Field.Offset),
        Base.AggBytes.begin() + static_cast<long>(Field.Offset + Size));
    Value Out;
    if (!decodeBytes(Bytes, Field.Ty, M->Loc, Out))
      return;
    pushValue(std::move(Out));
    return;
  } else {
    Conf.Status = RunStatus::Internal;
    return;
  }
  const FieldInfo &Field = RecordTy->Record->Fields[M->FieldIdx];
  Ptr.Offset += static_cast<int64_t>(Field.Offset);
  pushValue(Value::makeLValue(Ptr, M->Ty));
}

void Machine::stepLvToRv(const Expr *Node) {
  Value Lv = popValue(Node->Loc);
  if (Conf.Status != RunStatus::Running)
    return;
  if (!Lv.isLValue()) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  QualType Ty = Lv.lvalueType();
  Value Out;
  bool Ok = Ty.Ty->isRecord() ? loadAgg(Lv.Ptr, Ty, Node->Loc, Out)
                              : loadScalar(Lv.Ptr, Ty, Node->Loc, Out);
  if (!Ok)
    return;
  pushValue(std::move(Out));
}

void Machine::stepCastApply(const Expr *Node) {
  CastKind CK = Node->Kind == ExprKind::Cast
                    ? cast<CastExpr>(Node)->CK
                    : cast<ImplicitCastExpr>(Node)->CK;
  Value V = popValue(Node->Loc);
  if (Conf.Status != RunStatus::Running)
    return;
  switch (CK) {
  case CastKind::ToVoid:
    pushValue(Value::empty());
    return;
  case CastKind::ArrayDecay: {
    if (!V.isLValue()) {
      Conf.Status = RunStatus::Internal;
      return;
    }
    Value P = Value::makePointer(Node->Ty.Ty, V.Ptr);
    // Remember the decayed array's window: indexing beyond it is
    // undefined even inside a larger object (C11 6.5.6p8, row 64).
    if (V.Ty && V.Ty->isArray() && V.Ty->ArraySizeKnown) {
      P.SubStart = V.Ptr.Offset;
      P.SubLen = Ctx.Types.sizeOf(QualType(V.Ty));
    }
    pushValue(P);
    return;
  }
  case CastKind::FunctionDecay: {
    pushValue(Value::makePointer(Node->Ty.Ty, V.Ptr));
    return;
  }
  case CastKind::PointerToInt: {
    uint64_t Raw = V.isPointer() ? absAddr(V.Ptr) : 0;
    pushValue(Value::makeInt(Node->Ty.Ty,
                             truncateBits(Raw, Node->Ty.Ty, Ctx.Types)));
    return;
  }
  default: {
    if (V.isOpaque()) {
      // Conversions use the value: indeterminate operands are UB.
      flagUb(UbKind::ReadIndeterminateValue, Node->Loc);
      if (Opts.Strict && Opts.StopAtFirstUb)
        return;
      V = Value::makeInt(Ctx.Types.ucharTy(),
                         permissiveByteValue(V.Payload, 0));
    }
    ConvOutcome Out = convertScalar(V, Node->Ty.Ty, CK, Ctx.Types);
    if (Out.FloatToIntOverflow && Opts.Strict) {
      flagUb(UbKind::FloatToIntOverflow, Node->Loc);
      if (Opts.StopAtFirstUb)
        return;
    }
    pushValue(Out.V);
    return;
  }
  }
}

void Machine::stepLogicRhs(const Expr *Node) {
  const auto *B = cast<BinaryExpr>(Node);
  Value L = popValue(Node->Loc);
  if (Conf.Status != RunStatus::Running)
    return;
  if (!checkComputable(*this, L, B->Lhs->Loc))
    return;
  bool Truth = L.truthy(Ctx.Types);
  bool IsAnd = B->Op == BinaryOp::LogAnd;
  if ((IsAnd && !Truth) || (!IsAnd && Truth)) {
    pushValue(Value::makeInt(B->Ty.Ty, Truth ? 1 : 0));
    return;
  }
  // Sequence point between the operands (C11 6.5.13/6.5.14).
  Conf.K.push_back(KItem::forExpr(KKind::LogicDone, B));
  Conf.K.push_back(KItem::expr(B->Rhs));
  seqPoint();
}

void Machine::stepLogicDone(const Expr *Node) {
  const auto *B = cast<BinaryExpr>(Node);
  Value R = popValue(Node->Loc);
  if (Conf.Status != RunStatus::Running)
    return;
  if (!checkComputable(*this, R, B->Rhs->Loc))
    return;
  pushValue(Value::makeInt(B->Ty.Ty, R.truthy(Ctx.Types) ? 1 : 0));
}

void Machine::stepCondPick(const Expr *Node) {
  const auto *C = cast<CondExpr>(Node);
  Value V = popValue(Node->Loc);
  if (Conf.Status != RunStatus::Running)
    return;
  if (!checkComputable(*this, V, C->Cond->Loc))
    return;
  seqPoint();
  Conf.K.push_back(KItem::expr(V.truthy(Ctx.Types) ? C->Then : C->Else));
}

void Machine::finishCall(const CallExpr *C, std::vector<Value> &Vals) {
  Value &CalleeV = Vals[0];
  if (!CalleeV.isPointer()) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  if (CalleeV.Ptr.isNull() || CalleeV.Ptr.FromInteger) {
    flagUb(UbKind::DerefNullPointer, C->Loc);
    if (Opts.Strict && Opts.StopAtFirstUb)
      return;
    fault("call through invalid function pointer", C->Loc);
    return;
  }
  auto FnIt = Conf.FuncByObject.find(CalleeV.Ptr.Base);
  if (FnIt == Conf.FuncByObject.end()) {
    // Calling through a pointer to a non-function object.
    flagUb(UbKind::CallTypeMismatch, C->Loc);
    if (Opts.Strict && Opts.StopAtFirstUb)
      return;
    fault("call through non-function pointer", C->Loc);
    return;
  }
  const FunctionDecl *Fn = FnIt->second;
  for (ExecMonitor *M : Monitors)
    M->onCall(*this, Fn, C);

  std::vector<Value> Args(Vals.begin() + 1, Vals.end());
  seqPoint(); // sequence point after designator and argument evaluation

  if (Fn->BuiltinId) {
    Value Result;
    if (!runBuiltin(*this, Fn->BuiltinId, Args, C, Result))
      return; // builtin reported UB / stopped the machine
    pushValue(std::move(Result));
    return;
  }
  if (!Fn->Body) {
    // No definition anywhere: undefined reference (catalog row 161).
    flagUbCode(161, C->Loc);
    if (Opts.Strict && Opts.StopAtFirstUb)
      return;
    pushValue(Value::makeInt(Ctx.Types.intTy(), 0));
    return;
  }

  // Call-site / definition compatibility (UB 22, paper section 2.7's
  // LLVM example is the same idea).
  const Type *SiteTy = C->Callee->Ty.Ty->isPointer()
                           ? C->Callee->Ty.Ty->Pointee.Ty
                           : C->Callee->Ty.Ty;
  if (SiteTy && !SiteTy->NoProto &&
      !Ctx.Types.compatible(QualType(SiteTy), QualType(Fn->FnTy))) {
    flagUb(UbKind::CallTypeMismatch, C->Loc);
    if (Opts.Strict && Opts.StopAtFirstUb)
      return;
  }
  if (SiteTy && SiteTy->NoProto) {
    // Unchecked call: the definition's expectations are checked now.
    if (!Fn->FnTy->Variadic && Args.size() != Fn->Params.size()) {
      flagUb(UbKind::CallArityMismatch, C->Loc);
      if (Opts.Strict && Opts.StopAtFirstUb)
        return;
    }
  }
  if (Conf.CallStack.size() >= Opts.MaxCallDepth) {
    flagUb(UbKind::RecursionLimitExceeded, C->Loc);
    if (Opts.Strict && Opts.StopAtFirstUb)
      return;
    fault("stack overflow", C->Loc);
    return;
  }

  Frame NewFrame;
  NewFrame.Fn = Fn;
  NewFrame.CallLoc = C->Loc;
  KItem Ret = KItem::simple(KKind::CallReturn);
  Ret.Callee = Fn;

  size_t NumParams = Fn->Params.size();
  for (size_t I = 0; I < NumParams; ++I) {
    const VarDecl *Param = Fn->Params[I];
    uint32_t Id = createObjectForDecl(Param, StorageKind::Auto);
    NewFrame.Env[Param->DeclId] = Id;
    NewFrame.ParamObjects.push_back(Id);
    Ret.ObjectsToKill.push_back(Id);
    if (I < Args.size()) {
      Value Arg = convertForMachine(Args[I], Param->Ty.Ty, C->Loc);
      if (Conf.Status != RunStatus::Running)
        return;
      if (Param->Ty.Ty->isRecord())
        storeAgg(SymPointer(Id, 0), Param->Ty, Arg, C->Loc, true);
      else
        storeScalar(SymPointer(Id, 0), Param->Ty, Arg, C->Loc, true);
    }
    // else: parameter left indeterminate (arity UB already flagged)
  }
  for (size_t I = NumParams; I < Args.size(); ++I)
    NewFrame.VarArgs.push_back(Args[I]);

  Conf.CallStack.push_back(std::move(NewFrame));
  seqPoint(); // sequence point before the actual call (C11 6.5.2.2p10)
  Conf.K.push_back(std::move(Ret));
  Conf.K.push_back(KItem::stmt(Fn->Body));
}
