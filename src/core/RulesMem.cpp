//===- core/RulesMem.cpp - Memory access rules --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// This file is the heart of the paper's techniques:
//  * the deref-safest rule with liveness and bounds side conditions
//    (section 4.1.2),
//  * the locsWrittenTo sequencing checks (4.2.1) and notWritable const
//    checks (4.2.2),
//  * symbolic pointer arithmetic and comparison (4.3.1), subObject
//    pointer fragmentation (4.3.2), and unknown bytes (4.3.3).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include <cassert>
#include <cstring>

using namespace cundef;

uint64_t Machine::absAddr(SymPointer Ptr) const {
  if (Ptr.FromInteger)
    return Ptr.RawInt + static_cast<uint64_t>(Ptr.Offset);
  if (Ptr.Base == 0)
    return static_cast<uint64_t>(Ptr.Offset);
  const MemObject *Obj = Conf.Mem.find(Ptr.Base);
  if (!Obj)
    return 0;
  return Obj->ConcreteAddr + static_cast<uint64_t>(Ptr.Offset);
}

//===----------------------------------------------------------------------===//
// Dereference rule (paper 4.1.2, all three formulations)
//===----------------------------------------------------------------------===//

bool Machine::derefCheck(const Value &P, QualType Pointee, SourceLoc Loc) {
  assert(P.isPointer() && "derefCheck needs a pointer");
  for (ExecMonitor *M : Monitors)
    M->onDeref(*this, P, Pointee, Loc);

  if (!Opts.Strict)
    return true; // the permissive machine checks at access time

  if (Opts.Style == RuleStyle::PrecedenceChain) {
    RuleContext RC;
    RC.Operand0 = P;
    RC.Loc = Loc;
    const char *Applied = DerefChain.apply(*this, RC);
    (void)Applied;
    return RC.ProducedResult;
  }
  if (Opts.Style == RuleStyle::Declarative) {
    // A monitor performed the checks via the event above.
    return Conf.Status == RunStatus::Running;
  }

  // deref-safest (side-condition style).
  if (Pointee.Ty->isVoid()) {
    flagUb(UbKind::DerefVoidPointer, Loc);
    return false;
  }
  if (P.Ptr.isNull()) {
    flagUb(UbKind::DerefNullPointer, Loc);
    return false;
  }
  if (P.Ptr.FromInteger) {
    flagUb(UbKind::DerefDanglingPointer, Loc);
    return false;
  }
  const MemObject *Obj = Conf.Mem.find(P.Ptr.Base);
  if (!Obj) {
    flagUb(UbKind::DerefDanglingPointer, Loc);
    return false;
  }
  if (Obj->State == ObjectState::Freed) {
    flagUb(UbKind::UseAfterFree, Loc);
    return false;
  }
  if (Obj->State == ObjectState::Dead) {
    flagUb(Obj->Storage == StorageKind::Auto ? UbKind::AccessDeadObject
                                             : UbKind::AccessDeadObject,
           Loc);
    return false;
  }
  uint64_t Len = Pointee.Ty->isCompleteObjectType()
                     ? Ctx.Types.sizeOf(Pointee)
                     : 1;
  if (P.Ptr.Offset < 0 ||
      static_cast<uint64_t>(P.Ptr.Offset) + Len > Obj->Size) {
    // A zero-size object holds nothing at all: any dereference is the
    // zero-size-allocation row (38), not a one-past-the-end access.
    flagUb(Obj->Size == 0 ? UbKind::ZeroSizeAllocationUse
           : static_cast<uint64_t>(P.Ptr.Offset) == Obj->Size
               ? UbKind::DerefOnePastEnd
               : UbKind::ReadOutOfBounds,
           Loc);
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Pointer arithmetic (paper 4.3.1; C11 6.5.6p8)
//===----------------------------------------------------------------------===//

bool Machine::pointerAdd(const Value &P, int64_t DeltaElems, SourceLoc Loc,
                         Value &Out) {
  assert(P.isPointer() && "pointerAdd needs a pointer");
  uint64_t ElemSize = 1;
  if (P.Ty->Pointee.Ty && P.Ty->Pointee.Ty->isCompleteObjectType())
    ElemSize = Ctx.Types.sizeOf(P.Ty->Pointee);
  int64_t DeltaBytes = DeltaElems * static_cast<int64_t>(ElemSize);

  if (P.Ptr.isNull()) {
    if (DeltaElems == 0) {
      Out = P;
      return true;
    }
    if (Opts.Strict && Opts.SymbolicPointers) {
      flagUb(UbKind::NullPointerArithmetic, Loc);
      return false;
    }
    Out = Value::makePointer(
        P.Ty, SymPointer::fromInteger(static_cast<uint64_t>(DeltaBytes)));
    return true;
  }
  if (P.Ptr.FromInteger) {
    SymPointer Moved = P.Ptr;
    Moved.Offset += DeltaBytes;
    Out = Value::makePointer(P.Ty, Moved);
    return true;
  }
  const MemObject *Obj = Conf.Mem.find(P.Ptr.Base);
  if (Opts.Strict && Opts.SymbolicPointers) {
    if (!Obj) {
      flagUb(UbKind::DerefDanglingPointer, Loc);
      return false;
    }
    if (!Obj->isAlive()) {
      // Using the value of a pointer whose object's lifetime ended.
      flagUbCode(53, Loc);
      return false;
    }
    int64_t NewOffset = P.Ptr.Offset + DeltaBytes;
    if (NewOffset < 0 ||
        static_cast<uint64_t>(NewOffset) > Obj->Size) {
      // One past the end is allowed; beyond is UB 13.
      flagUb(UbKind::PointerArithOutOfBounds, Loc);
      return false;
    }
    if (P.SubLen != 0 &&
        (NewOffset < P.SubStart ||
         NewOffset > P.SubStart + static_cast<int64_t>(P.SubLen))) {
      // Beyond the decayed inner array, though the enclosing object is
      // accessible (catalog row 64).
      flagUbCode(64, Loc);
      return false;
    }
  }
  SymPointer Moved = P.Ptr;
  Moved.Offset += DeltaBytes;
  Out = Value::makePointer(P.Ty, Moved);
  Out.SubStart = P.SubStart;
  Out.SubLen = P.SubLen;
  return true;
}

//===----------------------------------------------------------------------===//
// Resolution
//===----------------------------------------------------------------------===//

Machine::ResolvedLoc Machine::resolveStrict(SymPointer Ptr, uint64_t Len,
                                            SourceLoc Loc, bool ForWrite) {
  ResolvedLoc R;
  if (Ptr.isNull()) {
    flagUb(UbKind::DerefNullPointer, Loc);
    return R;
  }
  if (Ptr.FromInteger) {
    flagUb(UbKind::DerefDanglingPointer, Loc);
    return R;
  }
  switch (Conf.Mem.probe(Ptr.Base, Ptr.Offset, Len)) {
  case MemStatus::Ok:
    R.Obj = Ptr.Base;
    R.Offset = Ptr.Offset;
    R.Ok = true;
    return R;
  case MemStatus::NoObject:
    flagUb(UbKind::DerefDanglingPointer, Loc);
    return R;
  case MemStatus::Freed:
    flagUb(UbKind::UseAfterFree, Loc);
    return R;
  case MemStatus::Dead:
    flagUb(UbKind::AccessDeadObject, Loc);
    return R;
  case MemStatus::OutOfBounds: {
    const MemObject *Obj = Conf.Mem.find(Ptr.Base);
    if (Obj && Obj->Size == 0)
      flagUb(UbKind::ZeroSizeAllocationUse, Loc);
    else if (Obj && Ptr.Offset >= 0 &&
             static_cast<uint64_t>(Ptr.Offset) == Obj->Size)
      flagUb(UbKind::DerefOnePastEnd, Loc);
    else
      flagUb(ForWrite ? UbKind::WriteOutOfBounds : UbKind::ReadOutOfBounds,
             Loc);
    return R;
  }
  }
  return R;
}

Machine::ResolvedLoc Machine::resolvePermissive(SymPointer Ptr, uint64_t Len,
                                                SourceLoc Loc) {
  ResolvedLoc R;
  // In-bounds access to a (possibly dead) object: direct.
  if (!Ptr.FromInteger && Ptr.Base != 0) {
    const MemObject *Obj = Conf.Mem.find(Ptr.Base);
    if (Obj && Ptr.Offset >= 0 &&
        static_cast<uint64_t>(Ptr.Offset) + Len <= Obj->Size) {
      R.Obj = Ptr.Base;
      R.Offset = Ptr.Offset;
      R.Ok = true;
      return R;
    }
  }
  // Hardware semantics: chase the concrete address wherever it lands.
  uint64_t Addr = absAddr(Ptr);
  int64_t Offset = 0;
  uint32_t Obj = Conf.Mem.findByAddress(Addr, Offset);
  if (!Obj || static_cast<uint64_t>(Offset) + Len >
                  Conf.Mem.find(Obj)->Size) {
    fault("segmentation fault", Loc);
    return R;
  }
  R.Obj = Obj;
  R.Offset = Offset;
  R.Ok = true;
  return R;
}

//===----------------------------------------------------------------------===//
// Sequencing, const, and effective-type side conditions
//===----------------------------------------------------------------------===//

bool Machine::sequencingReadCheck(uint32_t Obj, int64_t Off, uint64_t Len,
                                  SourceLoc Loc) {
  if (!Opts.Strict || !Opts.TrackSequencing ||
      Opts.Style == RuleStyle::Declarative)
    return true;
  for (uint64_t I = 0; I < Len; ++I) {
    if (Conf.LocsWrittenTo.count({Obj, Off + static_cast<int64_t>(I)})) {
      flagUb(UbKind::UnsequencedSideEffect, Loc);
      return false;
    }
  }
  return true;
}

bool Machine::sequencingWriteCheck(uint32_t Obj, int64_t Off, uint64_t Len,
                                   SourceLoc Loc) {
  if (!Opts.Strict || !Opts.TrackSequencing ||
      Opts.Style == RuleStyle::Declarative) {
    return true;
  }
  for (uint64_t I = 0; I < Len; ++I) {
    if (Conf.LocsWrittenTo.count({Obj, Off + static_cast<int64_t>(I)})) {
      flagUb(UbKind::UnsequencedSideEffect, Loc);
      return false;
    }
  }
  for (uint64_t I = 0; I < Len; ++I)
    Conf.LocsWrittenTo.insert({Obj, Off + static_cast<int64_t>(I)});
  return true;
}

bool Machine::constWriteCheck(uint32_t Obj, int64_t Off, uint64_t Len,
                              SourceLoc Loc) {
  if (!Opts.Strict || !Opts.TrackConst)
    return true;
  for (uint64_t I = 0; I < Len; ++I) {
    if (Conf.NotWritable.count({Obj, Off + static_cast<int64_t>(I)})) {
      const MemObject *Object = Conf.Mem.find(Obj);
      flagUb(Object && Object->Storage == StorageKind::Literal
                 ? UbKind::ModifyStringLiteral
                 : UbKind::WriteThroughConstPointer,
             Loc);
      return false;
    }
  }
  return true;
}

const Type *Machine::layoutTypeAt(QualType DeclTy, uint64_t Off,
                                  uint64_t Len) const {
  const Type *T = DeclTy.Ty;
  if (!T)
    return nullptr;
  if (T->isScalar())
    return (Off == 0 && Len == Ctx.Types.sizeOf(DeclTy)) ? T : nullptr;
  if (T->isArray()) {
    uint64_t ElemSize = Ctx.Types.sizeOf(T->Pointee);
    if (ElemSize == 0)
      return nullptr;
    return layoutTypeAt(T->Pointee, Off % ElemSize, Len);
  }
  if (T->Kind == TypeKind::Union)
    return T; // any member type may alias a union
  if (T->Kind == TypeKind::Struct) {
    for (const FieldInfo &Field : T->Record->Fields) {
      uint64_t FieldSize = Ctx.Types.sizeOf(Field.Ty);
      if (Off >= Field.Offset && Off + Len <= Field.Offset + FieldSize)
        return layoutTypeAt(Field.Ty, Off - Field.Offset, Len);
    }
    return nullptr;
  }
  return nullptr;
}

/// Integer types of the same size whose signedness differs may alias
/// (C11 6.5p7, third bullet).
static bool sameSizeIntegers(const Type *A, const Type *B,
                             const TypeContext &Types) {
  return A->isIntegral() && B->isIntegral() &&
         Types.sizeOf(QualType(A)) == Types.sizeOf(QualType(B));
}

bool Machine::effectiveTypeCheck(uint32_t Obj, int64_t Off, QualType Ty,
                                 SourceLoc Loc, bool IsWrite) {
  if (!Opts.Strict || !Opts.CheckEffectiveTypes)
    return true;
  const Type *Access = Ty.Ty;
  if (Access->isCharacter())
    return true; // character-type access is always allowed
  const MemObject *Object = Conf.Mem.find(Obj);
  if (!Object)
    return true;
  if (Object->Storage == StorageKind::Heap) {
    uint64_t Len = Ctx.Types.sizeOf(QualType(Access));
    if (IsWrite) {
      // A non-character write re-types the region it covers
      // (C11 6.5p6): clear any overlapping records, then set ours.
      auto It = Conf.HeapEffectiveTy.lower_bound({Obj, 0});
      while (It != Conf.HeapEffectiveTy.end() && It->first.first == Obj) {
        int64_t RegionOff = It->first.second;
        uint64_t RegionLen = Ctx.Types.sizeOf(QualType(It->second));
        bool Overlaps = RegionOff < Off + static_cast<int64_t>(Len) &&
                        Off < RegionOff + static_cast<int64_t>(RegionLen);
        if (Overlaps)
          It = Conf.HeapEffectiveTy.erase(It);
        else
          ++It;
      }
      Conf.HeapEffectiveTy[{Obj, Off}] = Access;
      return true;
    }
    auto It = Conf.HeapEffectiveTy.find({Obj, Off});
    if (It == Conf.HeapEffectiveTy.end())
      return true; // untyped (or byte-copied) storage: allowed
    const Type *Eff = It->second;
    if (Eff == Access || sameSizeIntegers(Eff, Access, Ctx.Types) ||
        Ctx.Types.compatible(QualType(Eff), QualType(Access)))
      return true;
    flagUb(UbKind::StrictAliasingViolation, Loc);
    return false;
  }
  if (Object->DeclTy.isNull())
    return true;
  uint64_t Len = Ctx.Types.sizeOf(Ty);
  const Type *Declared = layoutTypeAt(Object->DeclTy, static_cast<uint64_t>(Off),
                                      Len);
  if (!Declared) {
    flagUb(UbKind::StrictAliasingViolation, Loc);
    return false;
  }
  if (Declared->Kind == TypeKind::Union)
    return true;
  if (Declared == Access || sameSizeIntegers(Declared, Access, Ctx.Types) ||
      Ctx.Types.compatible(QualType(Declared), QualType(Access)))
    return true;
  flagUb(UbKind::StrictAliasingViolation, Loc);
  return false;
}

//===----------------------------------------------------------------------===//
// Encoding and decoding (paper 4.3.2 / 4.3.3)
//===----------------------------------------------------------------------===//

uint8_t Machine::permissiveByteValue(const Byte &B, uint64_t Addr) const {
  switch (B.K) {
  case Byte::Kind::Concrete:
    return B.Value;
  case Byte::Kind::Unknown:
    // Deterministic garbage: a hash of the address, so reruns agree.
    return static_cast<uint8_t>((Addr * 2654435761u) >> 13);
  case Byte::Kind::PtrFrag: {
    uint64_t Raw = absAddr(B.Ptr);
    return static_cast<uint8_t>(Raw >> (8 * B.FragIndex));
  }
  }
  return 0;
}

std::vector<Byte> Machine::encodeValue(const Value &V, uint64_t Size) const {
  std::vector<Byte> Bytes(Size, Byte::concrete(0));
  switch (V.K) {
  case Value::Kind::Int: {
    uint64_t Bits = V.Bits;
    for (uint64_t I = 0; I < Size; ++I)
      Bytes[I] = Byte::concrete(static_cast<uint8_t>(Bits >> (8 * I)));
    return Bytes;
  }
  case Value::Kind::Float: {
    if (Size == 4) {
      float F = static_cast<float>(V.F);
      uint32_t Bits;
      std::memcpy(&Bits, &F, 4);
      for (uint64_t I = 0; I < 4; ++I)
        Bytes[I] = Byte::concrete(static_cast<uint8_t>(Bits >> (8 * I)));
    } else {
      uint64_t Bits;
      std::memcpy(&Bits, &V.F, 8);
      for (uint64_t I = 0; I < Size && I < 8; ++I)
        Bytes[I] = Byte::concrete(static_cast<uint8_t>(Bits >> (8 * I)));
    }
    return Bytes;
  }
  case Value::Kind::Pointer: {
    if (V.Ptr.isNull())
      return Bytes; // all zero
    if (!Opts.PointerBytes || V.Ptr.FromInteger) {
      uint64_t Raw = absAddr(V.Ptr);
      for (uint64_t I = 0; I < Size; ++I)
        Bytes[I] = Byte::concrete(static_cast<uint8_t>(Raw >> (8 * I)));
      return Bytes;
    }
    // subObject fragmentation: the pointer can only be reassembled from
    // the complete, ordered set of its bytes.
    for (uint64_t I = 0; I < Size; ++I)
      Bytes[I] = Byte::ptrFrag(V.Ptr, static_cast<uint8_t>(I),
                               static_cast<uint8_t>(Size));
    return Bytes;
  }
  case Value::Kind::Opaque:
    Bytes[0] = V.Payload;
    return Bytes;
  case Value::Kind::Agg: {
    for (uint64_t I = 0; I < Size && I < V.AggBytes.size(); ++I)
      Bytes[I] = V.AggBytes[I];
    return Bytes;
  }
  case Value::Kind::Empty:
  case Value::Kind::LVal:
    break;
  }
  return Bytes;
}

bool Machine::decodeBytes(const std::vector<Byte> &Bytes, QualType Ty,
                          SourceLoc Loc, Value &Out) {
  const Type *T = Ty.Ty;
  if (T->isRecord() || T->isArray()) {
    Out = Value::makeAgg(T, Bytes);
    return true;
  }
  uint64_t Size = Bytes.size();

  bool AnyUnknown = false, AnyFrag = false, AllConcrete = true;
  for (const Byte &B : Bytes) {
    AnyUnknown |= B.isUnknown();
    AnyFrag |= B.isPtrFrag();
    AllConcrete &= B.isConcrete();
  }

  // Whole-pointer reconstruction (paper 4.3.2).
  if (AnyFrag && !AnyUnknown) {
    bool Complete = Bytes.size() == Bytes[0].FragCount;
    for (uint64_t I = 0; Complete && I < Size; ++I)
      Complete = Bytes[I].isPtrFrag() && Bytes[I].FragIndex == I &&
                 Bytes[I].Ptr == Bytes[0].Ptr;
    if (Complete) {
      if (T->isPointer()) {
        Out = Value::makePointer(T, Bytes[0].Ptr);
        return true;
      }
      // Reading pointer bytes through a non-pointer, non-character
      // lvalue: strict machines reject (effective type checks usually
      // fire first); permissive machines see the raw address.
      if (Opts.Strict) {
        flagUb(UbKind::ReadIndeterminateValue, Loc);
        return false;
      }
      uint64_t Raw = absAddr(Bytes[0].Ptr);
      Out = Value::makeInt(T, truncateBits(Raw, T, Ctx.Types));
      return true;
    }
  }

  // Character reads may carry any byte opaquely (paper 4.3.3: the
  // unsigned-character exemption).
  if (Size == 1 && (AnyUnknown || AnyFrag)) {
    if (!Opts.Strict || !Opts.UnknownBytes) {
      Out = Value::makeInt(T, permissiveByteValue(Bytes[0], 0));
      return true;
    }
    if (T->Kind == TypeKind::UChar ||
        (T->Kind == TypeKind::Char && !Ctx.Types.config().CharIsSigned)) {
      Out = Value::makeOpaque(T, Bytes[0]);
      return true;
    }
    flagUb(UbKind::ReadIndeterminateValue, Loc);
    return false;
  }

  if (AnyUnknown || AnyFrag) {
    if (Opts.Strict && Opts.UnknownBytes) {
      flagUb(UbKind::ReadIndeterminateValue, Loc);
      return false;
    }
    // Permissive: deterministic garbage per byte.
    uint64_t Bits = 0;
    for (uint64_t I = 0; I < Size && I < 8; ++I)
      Bits |= static_cast<uint64_t>(permissiveByteValue(Bytes[I], I))
              << (8 * I);
    if (T->isFloating()) {
      Out = Value::makeFloat(T, 0.0);
      return true;
    }
    if (T->isPointer()) {
      Out = Value::makePointer(T, SymPointer::fromInteger(Bits));
      return true;
    }
    Out = Value::makeInt(T, truncateBits(Bits, T, Ctx.Types));
    return true;
  }

  // All concrete.
  uint64_t Bits = 0;
  for (uint64_t I = 0; I < Size && I < 8; ++I)
    Bits |= static_cast<uint64_t>(Bytes[I].Value) << (8 * I);
  if (T->isFloating()) {
    double D;
    if (Ctx.Types.sizeOf(QualType(T)) == 4) {
      float F;
      uint32_t B32 = static_cast<uint32_t>(Bits);
      std::memcpy(&F, &B32, 4);
      D = F;
    } else {
      std::memcpy(&D, &Bits, 8);
    }
    Out = Value::makeFloat(T, D);
    return true;
  }
  if (T->isPointer()) {
    Out = Value::makePointer(T, Bits == 0 ? SymPointer::null()
                                          : SymPointer::fromInteger(Bits));
    return true;
  }
  Out = Value::makeInt(T, truncateBits(Bits, T, Ctx.Types));
  return true;
}

//===----------------------------------------------------------------------===//
// Load / store
//===----------------------------------------------------------------------===//

bool Machine::loadScalar(SymPointer Ptr, QualType Ty, SourceLoc Loc,
                         Value &Out) {
  for (ExecMonitor *M : Monitors)
    M->onRead(*this, Ptr, Ty, Loc);
  if (Opts.Strict && Opts.Style == RuleStyle::Declarative &&
      Conf.Status != RunStatus::Running)
    return false;
  uint64_t Len = Ctx.Types.sizeOf(Ty);
  ResolvedLoc R = Opts.Strict ? resolveStrict(Ptr, Len, Loc, false)
                              : resolvePermissive(Ptr, Len, Loc);
  if (!R.Ok)
    return false;
  if (!sequencingReadCheck(R.Obj, R.Offset, Len, Loc))
    return false;
  if (!effectiveTypeCheck(R.Obj, R.Offset, Ty, Loc, /*IsWrite=*/false))
    return false;
  std::vector<Byte> Bytes(Len);
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.readByte(R.Obj, R.Offset + static_cast<int64_t>(I), Bytes[I]);
  if (!Opts.Strict) {
    // Attach addresses for deterministic garbage.
    const MemObject *Obj = Conf.Mem.find(R.Obj);
    uint64_t Base = Obj->ConcreteAddr + static_cast<uint64_t>(R.Offset);
    for (uint64_t I = 0; I < Len; ++I)
      if (Bytes[I].isUnknown())
        Bytes[I] = Byte::concrete(permissiveByteValue(Bytes[I], Base + I));
  }
  return decodeBytes(Bytes, Ty, Loc, Out);
}

bool Machine::storeScalar(SymPointer Ptr, QualType Ty, const Value &V,
                          SourceLoc Loc, bool IsInit) {
  for (ExecMonitor *M : Monitors)
    M->onWrite(*this, Ptr, Ty, V, Loc);
  if (Opts.Strict && Opts.Style == RuleStyle::Declarative &&
      Conf.Status != RunStatus::Running)
    return false;
  uint64_t Len = Ctx.Types.sizeOf(Ty);
  ResolvedLoc R = Opts.Strict ? resolveStrict(Ptr, Len, Loc, true)
                              : resolvePermissive(Ptr, Len, Loc);
  if (!R.Ok)
    return false;
  if (!IsInit) {
    if (!constWriteCheck(R.Obj, R.Offset, Len, Loc))
      return false;
    if (!sequencingWriteCheck(R.Obj, R.Offset, Len, Loc))
      return false;
    if (!effectiveTypeCheck(R.Obj, R.Offset, Ty, Loc, /*IsWrite=*/true))
      return false;
  }
  std::vector<Byte> Bytes = encodeValue(V, Len);
  if (!Opts.UnknownBytes) {
    for (Byte &B : Bytes)
      if (B.isUnknown())
        B = Byte::concrete(0xCD);
  }
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.writeByte(R.Obj, R.Offset + static_cast<int64_t>(I), Bytes[I]);
  return true;
}

bool Machine::loadAgg(SymPointer Ptr, QualType Ty, SourceLoc Loc,
                      Value &Out) {
  for (ExecMonitor *M : Monitors)
    M->onRead(*this, Ptr, Ty, Loc);
  uint64_t Len = Ctx.Types.sizeOf(Ty);
  ResolvedLoc R = Opts.Strict ? resolveStrict(Ptr, Len, Loc, false)
                              : resolvePermissive(Ptr, Len, Loc);
  if (!R.Ok)
    return false;
  if (!sequencingReadCheck(R.Obj, R.Offset, Len, Loc))
    return false;
  // Copying a whole object copies unknown bytes and padding without
  // error (paper 4.3.3).
  std::vector<Byte> Bytes(Len);
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.readByte(R.Obj, R.Offset + static_cast<int64_t>(I), Bytes[I]);
  Out = Value::makeAgg(Ty.Ty, std::move(Bytes));
  return true;
}

bool Machine::storeAgg(SymPointer Ptr, QualType Ty, const Value &V,
                       SourceLoc Loc, bool IsInit) {
  for (ExecMonitor *M : Monitors)
    M->onWrite(*this, Ptr, Ty, V, Loc);
  uint64_t Len = Ctx.Types.sizeOf(Ty);
  ResolvedLoc R = Opts.Strict ? resolveStrict(Ptr, Len, Loc, true)
                              : resolvePermissive(Ptr, Len, Loc);
  if (!R.Ok)
    return false;
  if (!IsInit) {
    if (!constWriteCheck(R.Obj, R.Offset, Len, Loc))
      return false;
    if (!sequencingWriteCheck(R.Obj, R.Offset, Len, Loc))
      return false;
  }
  std::vector<Byte> Bytes = encodeValue(V, Len);
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.writeByte(R.Obj, R.Offset + static_cast<int64_t>(I), Bytes[I]);
  return true;
}

uint32_t Machine::allocHeap(uint64_t Size) {
  // The modelled heap refuses absurd requests (real malloc returns
  // NULL); 16 MiB is far beyond anything the corpora allocate.
  if (Size > (1ull << 24))
    return 0;
  uint32_t Id = Conf.Mem.create(StorageKind::Heap, Size, QualType(),
                                NoSymbol);
  for (ExecMonitor *M : Monitors)
    M->onAlloc(*this, *Conf.Mem.find(Id));
  return Id;
}

void Machine::runFree(const Value &PtrVal, SourceLoc Loc) {
  if (!PtrVal.isPointer()) {
    Conf.Status = RunStatus::Internal;
    return;
  }
  SymPointer Ptr = PtrVal.Ptr;
  if (Ptr.isNull())
    return; // free(NULL) is a no-op (C11 7.22.3.3p2)

  uint32_t Target = 0;
  bool Valid = false;
  UbKind Kind = UbKind::FreeInvalidPointer;
  if (!Ptr.FromInteger) {
    const MemObject *Obj = Conf.Mem.find(Ptr.Base);
    if (Obj) {
      Target = Ptr.Base;
      if (Obj->Storage != StorageKind::Heap) {
        Kind = UbKind::FreeInvalidPointer;
      } else if (Obj->State == ObjectState::Freed) {
        Kind = UbKind::DoubleFree;
      } else if (Ptr.Offset != 0) {
        Kind = UbKind::FreeInvalidPointer; // not the start of the block
      } else {
        Valid = true;
      }
    }
  }
  for (ExecMonitor *M : Monitors)
    M->onFree(*this, Ptr, Target, Valid);
  if (!Valid) {
    if (Opts.Strict) {
      flagUb(Kind, Loc);
      return;
    }
    // Modelled libc: an invalid free corrupts silently; keep running.
    return;
  }
  Conf.Mem.markFreed(Target);
}

Value Machine::convertForMachine(const Value &V, const Type *To,
                                 SourceLoc Loc) {
  if (V.Ty == To || !To)
    return V;
  if (V.isAgg() || V.isEmpty() || V.isLValue())
    return V;
  if (V.isOpaque()) {
    if (To->isCharacter())
      return V; // still an opaque byte under a character type
    flagUb(UbKind::ReadIndeterminateValue, Loc);
    return Value::makeInt(To, 0);
  }
  CastKind CK;
  if (To->isBool())
    CK = CastKind::ToBool;
  else if (V.isInt() && To->isIntegral())
    CK = CastKind::IntegralCast;
  else if (V.isInt() && To->isFloating())
    CK = CastKind::IntToFloat;
  else if (V.isFloat() && To->isIntegral())
    CK = CastKind::FloatToInt;
  else if (V.isFloat() && To->isFloating())
    CK = CastKind::FloatCast;
  else if (V.isPointer() && To->isPointer())
    CK = CastKind::PointerCast;
  else if (V.isInt() && To->isPointer())
    CK = CastKind::IntToPointer;
  else if (V.isPointer() && To->isIntegral()) {
    return Value::makeInt(To, truncateBits(absAddr(V.Ptr), To, Ctx.Types));
  } else {
    // A shape mismatch a NoProto call cannot reconcile (UB 22).
    flagUb(UbKind::CallTypeMismatch, Loc);
    return Value::makeInt(Ctx.Types.intTy(), 0);
  }
  ConvOutcome Out = convertScalar(V, To, CK, Ctx.Types);
  if (Out.FloatToIntOverflow && Opts.Strict)
    flagUb(UbKind::FloatToIntOverflow, Loc);
  return Out.V;
}

//===----------------------------------------------------------------------===//
// Rule chains (paper section 4.5.1)
//===----------------------------------------------------------------------===//

void Machine::buildRuleChains() {
  // Division: the positive rule first, negative refinements after.
  // Chains are applied newest-first, so the negative rules win -- the
  // paper's "later rules must be applied before earlier rules".
  DivChain.add("div-int", [](Machine &M, RuleContext &RC) {
    const TypeContext &Types = M.ast().Types;
    const Type *Ty = RC.Operand0.Ty;
    ArithOutcome Out = evalIntBinary(BinaryOp::Div, RC.Operand0,
                                     RC.Operand1, Ty, Types);
    RC.Result = Out.V;
    RC.ProducedResult = true;
    return true;
  });
  DivChain.add("div-overflow", [](Machine &M, RuleContext &RC) {
    const TypeContext &Types = M.ast().Types;
    if (RC.Operand0.Ty->isUnsignedInteger(Types.config()))
      return false;
    if (RC.Operand1.asUnsigned(Types) == 0)
      return false; // let div-by-zero match
    if (!(RC.Operand0.asSigned(Types) == Types.minValueOf(RC.Operand0.Ty) &&
          RC.Operand1.asSigned(Types) == -1))
      return false;
    M.flagUb(UbKind::SignedOverflow, RC.Loc);
    return true;
  });
  DivChain.add("div-by-zero", [](Machine &M, RuleContext &RC) {
    const TypeContext &Types = M.ast().Types;
    if (RC.Operand1.asUnsigned(Types) != 0)
      return false;
    M.flagUb(UbKind::DivisionByZero, RC.Loc);
    return true;
  });

  // Dereference: the plain deref rule first (the paper's deref), then
  // the refinements; registration order is bounds < lifetime < forged <
  // null < void so that application order is void, null, forged,
  // lifetime, bounds, deref.
  DerefChain.add("deref", [](Machine &M, RuleContext &RC) {
    (void)M;
    RC.ProducedResult = true; // [L] : T
    return true;
  });
  DerefChain.add("deref-neg-bounds", [](Machine &M, RuleContext &RC) {
    const MemObject *Obj = M.config().Mem.find(RC.Operand0.Ptr.Base);
    if (!Obj)
      return false;
    QualType Pointee = RC.Operand0.Ty->Pointee;
    uint64_t Len = Pointee.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Pointee)
                       : 1;
    int64_t Off = RC.Operand0.Ptr.Offset;
    if (Off >= 0 && static_cast<uint64_t>(Off) + Len <= Obj->Size)
      return false;
    M.flagUb(Obj->Size == 0 ? UbKind::ZeroSizeAllocationUse
             : static_cast<uint64_t>(Off) == Obj->Size
                 ? UbKind::DerefOnePastEnd
                 : UbKind::ReadOutOfBounds,
             RC.Loc);
    return true;
  });
  DerefChain.add("deref-neg-lifetime", [](Machine &M, RuleContext &RC) {
    if (RC.Operand0.Ptr.Base == 0)
      return false; // null/forged handled by later (earlier-applied) rules
    const MemObject *Obj = M.config().Mem.find(RC.Operand0.Ptr.Base);
    if (!Obj) {
      M.flagUb(UbKind::DerefDanglingPointer, RC.Loc);
      return true;
    }
    if (Obj->State == ObjectState::Freed) {
      M.flagUb(UbKind::UseAfterFree, RC.Loc);
      return true;
    }
    if (Obj->State == ObjectState::Dead) {
      M.flagUb(UbKind::AccessDeadObject, RC.Loc);
      return true;
    }
    return false;
  });
  DerefChain.add("deref-neg-forged", [](Machine &M, RuleContext &RC) {
    if (!RC.Operand0.Ptr.FromInteger)
      return false;
    M.flagUb(UbKind::DerefDanglingPointer, RC.Loc);
    return true;
  });
  DerefChain.add("deref-neg-null", [](Machine &M, RuleContext &RC) {
    if (!RC.Operand0.Ptr.isNull())
      return false;
    M.flagUb(UbKind::DerefNullPointer, RC.Loc);
    return true;
  });
  DerefChain.add("deref-neg-void", [](Machine &M, RuleContext &RC) {
    if (!RC.Operand0.Ty->Pointee.Ty ||
        !RC.Operand0.Ty->Pointee.Ty->isVoid())
      return false;
    M.flagUb(UbKind::DerefVoidPointer, RC.Loc);
    return true;
  });
}

//===----------------------------------------------------------------------===//
// Raw byte helpers for the library builtins
//===----------------------------------------------------------------------===//

bool Machine::copyBytes(SymPointer Dst, SymPointer Src, uint64_t Len,
                        SourceLoc Loc, bool CheckOverlap) {
  if (Len == 0)
    return true;
  ResolvedLoc SrcR = Opts.Strict ? resolveStrict(Src, Len, Loc, false)
                                 : resolvePermissive(Src, Len, Loc);
  if (!SrcR.Ok)
    return false;
  ResolvedLoc DstR = Opts.Strict ? resolveStrict(Dst, Len, Loc, true)
                                 : resolvePermissive(Dst, Len, Loc);
  if (!DstR.Ok)
    return false;
  if (CheckOverlap && Opts.Strict && SrcR.Obj == DstR.Obj) {
    int64_t A = SrcR.Offset, B = DstR.Offset;
    int64_t L = static_cast<int64_t>(Len);
    if (A < B + L && B < A + L) {
      flagUb(UbKind::MemcpyOverlap, Loc);
      return false;
    }
  }
  if (!constWriteCheck(DstR.Obj, DstR.Offset, Len, Loc))
    return false;
  if (!sequencingWriteCheck(DstR.Obj, DstR.Offset, Len, Loc))
    return false;
  // Copy through a temporary so overlapping memmove behaves.
  std::vector<Byte> Buffer(Len);
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.readByte(SrcR.Obj, SrcR.Offset + static_cast<int64_t>(I),
                      Buffer[I]);
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.writeByte(DstR.Obj, DstR.Offset + static_cast<int64_t>(I),
                       Buffer[I]);
  return true;
}

bool Machine::setBytes(SymPointer Dst, uint8_t Value, uint64_t Len,
                       SourceLoc Loc) {
  if (Len == 0)
    return true;
  ResolvedLoc R = Opts.Strict ? resolveStrict(Dst, Len, Loc, true)
                              : resolvePermissive(Dst, Len, Loc);
  if (!R.Ok)
    return false;
  if (!constWriteCheck(R.Obj, R.Offset, Len, Loc))
    return false;
  if (!sequencingWriteCheck(R.Obj, R.Offset, Len, Loc))
    return false;
  for (uint64_t I = 0; I < Len; ++I)
    Conf.Mem.writeByte(R.Obj, R.Offset + static_cast<int64_t>(I),
                       Byte::concrete(Value));
  return true;
}

bool Machine::readCString(SymPointer Ptr, std::string &Out, SourceLoc Loc) {
  Out.clear();
  for (uint64_t I = 0;; ++I) {
    SymPointer At = Ptr;
    At.Offset += static_cast<int64_t>(I);
    ResolvedLoc R = Opts.Strict ? resolveStrict(At, 1, Loc, false)
                                : resolvePermissive(At, 1, Loc);
    if (!R.Ok) {
      // Walking off the end of the object: the argument was not a
      // string (UB 33) -- already reported as an out-of-bounds read.
      return false;
    }
    Byte B;
    Conf.Mem.readByte(R.Obj, R.Offset, B);
    if (Opts.Strict && Opts.UnknownBytes && !B.isConcrete()) {
      flagUb(UbKind::ReadIndeterminateValue, Loc);
      return false;
    }
    uint8_t Ch = B.isConcrete()
                     ? B.Value
                     : permissiveByteValue(
                           B, absAddr(At));
    if (Ch == 0)
      return true;
    Out += static_cast<char>(Ch);
    if (I > (1u << 20)) { // defensive bound
      flagUb(UbKind::StringFunctionBadArgument, Loc);
      return false;
    }
  }
}
