//===- core/Value.cpp - Runtime values --------------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Value.h"

#include "support/Strings.h"

#include <cassert>
#include <cmath>

using namespace cundef;

uint64_t cundef::truncateBits(uint64_t Bits, const Type *Ty,
                              const TypeContext &Types) {
  unsigned Width = Types.bitWidthOf(Ty);
  if (Width >= 64)
    return Bits;
  return Bits & ((1ull << Width) - 1);
}

int64_t Value::asSigned(const TypeContext &Types) const {
  assert(isInt() && "asSigned on non-integer value");
  unsigned Width = Types.bitWidthOf(Ty);
  if (Width >= 64)
    return static_cast<int64_t>(Bits);
  uint64_t Mask = (1ull << Width) - 1;
  uint64_t Raw = Bits & Mask;
  if (!Ty->isUnsignedInteger(Types.config()) && (Raw >> (Width - 1)) != 0)
    Raw |= ~Mask;
  return static_cast<int64_t>(Raw);
}

uint64_t Value::asUnsigned(const TypeContext &Types) const {
  assert(isInt() && "asUnsigned on non-integer value");
  return truncateBits(Bits, Ty, Types);
}

bool Value::truthy(const TypeContext &Types) const {
  switch (K) {
  case Kind::Int:
    return asUnsigned(Types) != 0;
  case Kind::Float:
    return F != 0.0;
  case Kind::Pointer:
    return !Ptr.isNull() || (Ptr.FromInteger && Ptr.RawInt != 0);
  default:
    return false;
  }
}

std::string Value::str(const TypeContext &Types,
                       const StringInterner &Interner) const {
  switch (K) {
  case Kind::Empty:
    return MissingReturn ? "<missing return value>" : "<void>";
  case Kind::Int:
    return strFormat("%lld : %s", (long long)asSigned(Types),
                     Types.typeName(QualType(Ty), Interner).c_str());
  case Kind::Float:
    return strFormat("%g : %s", F,
                     Types.typeName(QualType(Ty), Interner).c_str());
  case Kind::Pointer:
    if (Ptr.isNull())
      return "NULL : " + Types.typeName(QualType(Ty), Interner);
    if (Ptr.FromInteger)
      return strFormat("int(%llu) : %s", (unsigned long long)Ptr.RawInt,
                       Types.typeName(QualType(Ty), Interner).c_str());
    return strFormat("sym(%u)+%lld : %s", Ptr.Base, (long long)Ptr.Offset,
                     Types.typeName(QualType(Ty), Interner).c_str());
  case Kind::LVal:
    return strFormat("[sym(%u)+%lld] : %s", Ptr.Base, (long long)Ptr.Offset,
                     Types.typeName(lvalueType(), Interner).c_str());
  case Kind::Opaque:
    return "<opaque byte>";
  case Kind::Agg:
    return strFormat("<aggregate of %zu bytes> : %s", AggBytes.size(),
                     Types.typeName(QualType(Ty), Interner).c_str());
  }
  return "<?>";
}

/// Performs a signed operation in __int128 and reports overflow against
/// the result type's range.
static ArithOutcome signedOp(BinaryOp Op, int64_t A, int64_t B,
                             const Type *Ty, const TypeContext &Types) {
  ArithOutcome Out;
  __int128 Wide;
  switch (Op) {
  case BinaryOp::Add: Wide = (__int128)A + B; break;
  case BinaryOp::Sub: Wide = (__int128)A - B; break;
  case BinaryOp::Mul: Wide = (__int128)A * B; break;
  case BinaryOp::Div:
    if (B == 0) {
      Out.DivZero = true;
      Out.V = Value::makeInt(Ty, 0);
      return Out;
    }
    Wide = (__int128)A / B; // INT_MIN / -1 overflows; caught below
    break;
  case BinaryOp::Rem:
    if (B == 0) {
      Out.DivZero = true;
      Out.V = Value::makeInt(Ty, 0);
      return Out;
    }
    if (A == INT64_MIN && B == -1)
      Wide = (__int128)INT64_MAX + 1; // force the overflow report
    else
      Wide = (__int128)A % B;
    break;
  default:
    Wide = 0;
    break;
  }
  __int128 Min = Types.minValueOf(Ty);
  __int128 Max = static_cast<__int128>(Types.maxValueOf(Ty));
  if (Wide < Min || Wide > Max)
    Out.Overflow = true;
  Out.V = Value::makeInt(
      Ty, truncateBits(static_cast<uint64_t>(static_cast<int64_t>(Wide)), Ty,
                       Types));
  return Out;
}

ArithOutcome cundef::evalIntBinary(BinaryOp Op, const Value &L,
                                   const Value &R, const Type *ResultTy,
                                   const TypeContext &Types) {
  ArithOutcome Out;
  const TargetConfig &Config = Types.config();
  const Type *IntTy = Types.intTy();

  // Comparisons produce int regardless of operand type.
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Result;
    if (L.Ty->isUnsignedInteger(Config)) {
      uint64_t A = L.asUnsigned(Types), B = R.asUnsigned(Types);
      Result = Op == BinaryOp::Lt   ? A < B
               : Op == BinaryOp::Gt ? A > B
               : Op == BinaryOp::Le ? A <= B
               : Op == BinaryOp::Ge ? A >= B
               : Op == BinaryOp::Eq ? A == B
                                    : A != B;
    } else {
      int64_t A = L.asSigned(Types), B = R.asSigned(Types);
      Result = Op == BinaryOp::Lt   ? A < B
               : Op == BinaryOp::Gt ? A > B
               : Op == BinaryOp::Le ? A <= B
               : Op == BinaryOp::Ge ? A >= B
               : Op == BinaryOp::Eq ? A == B
                                    : A != B;
    }
    Out.V = Value::makeInt(IntTy, Result ? 1 : 0);
    return Out;
  }
  default:
    break;
  }

  // Shifts: count checked against the width of the (promoted) left
  // operand (C11 6.5.7p3-4).
  if (Op == BinaryOp::Shl || Op == BinaryOp::Shr) {
    unsigned Width = Types.bitWidthOf(ResultTy);
    int64_t Count = R.Ty->isUnsignedInteger(Config)
                        ? static_cast<int64_t>(R.asUnsigned(Types))
                        : R.asSigned(Types);
    if (Count < 0) {
      Out.ShiftNegCount = true;
      Count = 0;
    } else if (static_cast<uint64_t>(Count) >= Width) {
      Out.ShiftTooWide = true;
      Count = 0;
    }
    if (ResultTy->isUnsignedInteger(Config)) {
      uint64_t A = L.asUnsigned(Types);
      uint64_t Result = Op == BinaryOp::Shl ? (A << Count) : (A >> Count);
      Out.V = Value::makeInt(ResultTy, truncateBits(Result, ResultTy, Types));
      return Out;
    }
    int64_t A = L.asSigned(Types);
    if (Op == BinaryOp::Shl) {
      if (A < 0)
        Out.ShiftOfNeg = true;
      __int128 Wide = (__int128)A << Count;
      if (Wide > (__int128)Types.maxValueOf(ResultTy))
        Out.ShiftOfNeg = true; // value not representable (C11 6.5.7p4)
      Out.V = Value::makeInt(
          ResultTy,
          truncateBits(static_cast<uint64_t>(static_cast<int64_t>(Wide)),
                       ResultTy, Types));
      return Out;
    }
    // Right shift of negative values is implementation-defined; we use
    // an arithmetic shift when the target says so.
    int64_t Result;
    if (A < 0 && !Config.ArithmeticRightShift)
      Result = static_cast<int64_t>(L.asUnsigned(Types) >>
                                    static_cast<uint64_t>(Count));
    else
      Result = A >> Count;
    Out.V = Value::makeInt(
        ResultTy, truncateBits(static_cast<uint64_t>(Result), ResultTy,
                               Types));
    return Out;
  }

  if (ResultTy->isUnsignedInteger(Config)) {
    // Unsigned arithmetic wraps; only division by zero is undefined.
    uint64_t A = L.asUnsigned(Types), B = R.asUnsigned(Types);
    uint64_t Result = 0;
    switch (Op) {
    case BinaryOp::Add: Result = A + B; break;
    case BinaryOp::Sub: Result = A - B; break;
    case BinaryOp::Mul: Result = A * B; break;
    case BinaryOp::Div:
      if (B == 0) {
        Out.DivZero = true;
        break;
      }
      Result = A / B;
      break;
    case BinaryOp::Rem:
      if (B == 0) {
        Out.DivZero = true;
        break;
      }
      Result = A % B;
      break;
    case BinaryOp::BitAnd: Result = A & B; break;
    case BinaryOp::BitXor: Result = A ^ B; break;
    case BinaryOp::BitOr:  Result = A | B; break;
    default: assert(false && "unhandled unsigned integer operator");
    }
    Out.V = Value::makeInt(ResultTy, truncateBits(Result, ResultTy, Types));
    return Out;
  }

  switch (Op) {
  case BinaryOp::BitAnd:
  case BinaryOp::BitXor:
  case BinaryOp::BitOr: {
    uint64_t A = L.asUnsigned(Types), B = R.asUnsigned(Types);
    uint64_t Result = Op == BinaryOp::BitAnd   ? (A & B)
                      : Op == BinaryOp::BitXor ? (A ^ B)
                                               : (A | B);
    Out.V = Value::makeInt(ResultTy, truncateBits(Result, ResultTy, Types));
    return Out;
  }
  default:
    return signedOp(Op, L.asSigned(Types), R.asSigned(Types), ResultTy,
                    Types);
  }
}

Value cundef::evalFloatBinary(BinaryOp Op, const Value &L, const Value &R,
                              const Type *ResultTy,
                              const TypeContext &Types) {
  double A = L.F, B = R.F;
  switch (Op) {
  case BinaryOp::Add: return Value::makeFloat(ResultTy, A + B);
  case BinaryOp::Sub: return Value::makeFloat(ResultTy, A - B);
  case BinaryOp::Mul: return Value::makeFloat(ResultTy, A * B);
  case BinaryOp::Div: return Value::makeFloat(ResultTy, A / B);
  case BinaryOp::Lt:  return Value::makeInt(Types.intTy(), A < B);
  case BinaryOp::Gt:  return Value::makeInt(Types.intTy(), A > B);
  case BinaryOp::Le:  return Value::makeInt(Types.intTy(), A <= B);
  case BinaryOp::Ge:  return Value::makeInt(Types.intTy(), A >= B);
  case BinaryOp::Eq:  return Value::makeInt(Types.intTy(), A == B);
  case BinaryOp::Ne:  return Value::makeInt(Types.intTy(), A != B);
  default:
    assert(false && "unhandled floating operator");
    return Value::makeFloat(ResultTy, 0.0);
  }
}

ConvOutcome cundef::convertScalar(const Value &V, const Type *To,
                                  CastKind CK, const TypeContext &Types) {
  ConvOutcome Out;
  switch (CK) {
  case CastKind::ToVoid:
    Out.V = Value::empty();
    return Out;
  case CastKind::ToBool: {
    bool Truth = V.truthy(Types);
    Out.V = Value::makeInt(Types.boolTy(), Truth ? 1 : 0);
    return Out;
  }
  case CastKind::IntegralCast: {
    // Out-of-range conversion to a signed type is implementation-
    // defined (C11 6.3.1.3p3); ours truncates two's complement.
    Out.V = Value::makeInt(To, truncateBits(V.Bits, To, Types));
    return Out;
  }
  case CastKind::IntToFloat: {
    double D = V.Ty->isUnsignedInteger(Types.config())
                   ? static_cast<double>(V.asUnsigned(Types))
                   : static_cast<double>(V.asSigned(Types));
    Out.V = Value::makeFloat(To, D);
    return Out;
  }
  case CastKind::FloatToInt: {
    double D = V.F;
    double Min = static_cast<double>(Types.minValueOf(To));
    double Max = To->isUnsignedInteger(Types.config())
                     ? static_cast<double>(Types.maxValueOf(To))
                     : static_cast<double>(
                           static_cast<int64_t>(Types.maxValueOf(To)));
    if (std::isnan(D) || D <= Min - 1.0 || D >= Max + 1.0)
      Out.FloatToIntOverflow = true; // UB 26 (C11 6.3.1.4p1)
    int64_t I = Out.FloatToIntOverflow ? 0 : static_cast<int64_t>(D);
    Out.V = Value::makeInt(To, truncateBits(static_cast<uint64_t>(I), To,
                                            Types));
    return Out;
  }
  case CastKind::FloatCast: {
    double D = V.F;
    if (To->Kind == TypeKind::Float)
      D = static_cast<float>(D);
    Out.V = Value::makeFloat(To, D);
    return Out;
  }
  case CastKind::PointerCast:
  case CastKind::NullToPointer: {
    if (V.isPointer()) {
      Out.V = Value::makePointer(To, V.Ptr);
      return Out;
    }
    // Null pointer constant: integer zero.
    Out.V = Value::makePointer(To, SymPointer::null());
    return Out;
  }
  case CastKind::IntToPointer: {
    uint64_t Raw = V.asUnsigned(Types);
    Out.V = Value::makePointer(To, Raw == 0 ? SymPointer::null()
                                            : SymPointer::fromInteger(Raw));
    return Out;
  }
  case CastKind::PointerToInt: {
    // The concrete address is attached by the machine (it knows the
    // memory); this fallback covers forged and null pointers.
    uint64_t Raw = V.Ptr.FromInteger
                       ? V.Ptr.RawInt + static_cast<uint64_t>(V.Ptr.Offset)
                       : 0;
    Out.V = Value::makeInt(To, truncateBits(Raw, To, Types));
    return Out;
  }
  case CastKind::LValueToRValue:
  case CastKind::ArrayDecay:
  case CastKind::FunctionDecay:
    assert(false && "handled by the machine, not convertScalar");
    return Out;
  }
  return Out;
}
