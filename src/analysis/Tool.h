//===- analysis/Tool.h - Analysis tool interface ----------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four analysis tools the paper's evaluation compares (section 5):
///
///  * kcc            -- the strict semantics (this project's core),
///  * MemGrind       -- a Valgrind/Memcheck-style dynamic binary
///                      instrumentation model: shadow state over heap
///                      allocations and definedness, on the permissive
///                      (concrete) machine,
///  * PtrCheck       -- a CheckPointer-style pointer-safety instrumenter:
///                      per-pointer provenance and bounds for all storage,
///  * ValueAnalysis  -- a Frama-C-Value-style analyzer run in its
///                      "C interpreter" mode (the paper's footnote 10).
///
/// Each tool returns structured findings; the suite runners score them
/// against the expected verdicts to regenerate Figures 2 and 3.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_ANALYSIS_TOOL_H
#define CUNDEF_ANALYSIS_TOOL_H

#include "core/Machine.h"
#include "driver/Driver.h"
#include "ub/Report.h"

#include <memory>
#include <string>

namespace cundef {

enum class ToolKind : uint8_t { Kcc, MemGrind, PtrCheck, ValueAnalysis };

const char *toolName(ToolKind Kind);

/// What a tool said about one program.
struct ToolResult {
  bool CompileOk = true;
  std::vector<UbReport> Findings;
  RunStatus Status = RunStatus::Completed;
  int ExitCode = 0;
  std::string Output;
  double Micros = 0.0;

  bool flagged() const { return !Findings.empty(); }
  bool flaggedKind(UbKind Kind) const {
    for (const UbReport &R : Findings)
      if (R.Kind == Kind)
        return true;
    return false;
  }
};

class Tool {
public:
  virtual ~Tool() = default;

  /// Analyzes one program (compiles and, for the dynamic tools, runs it).
  virtual ToolResult analyze(const std::string &Source,
                             const std::string &Name) = 0;
  virtual const char *name() const = 0;

  /// \p SearchJobs: worker threads for kcc's evaluation-order search,
  /// 0 = auto-detect hardware concurrency (the baselines execute one
  /// concrete run and ignore it).
  static std::unique_ptr<Tool> create(ToolKind Kind,
                                      TargetConfig Target =
                                          TargetConfig::lp64(),
                                      unsigned SearchJobs = 1);
};

/// Shared implementation for the monitor-based baselines: compile with
/// the common frontend, run the permissive machine with the monitor
/// attached, collect the monitor's findings. A hardware fault counts as
/// a detection when \p ReportFaults (the modelled tools all report
/// crashes of their target).
class MonitorTool : public Tool {
public:
  explicit MonitorTool(TargetConfig Target) : Target(Target) {}

  ToolResult analyze(const std::string &Source,
                     const std::string &Name) override;

protected:
  /// Creates this tool's monitor; findings go into \p Sink.
  virtual std::unique_ptr<ExecMonitor> makeMonitor(UbSink &Sink) = 0;
  virtual bool reportFaults() const { return true; }

  TargetConfig Target;
};

} // namespace cundef

#endif // CUNDEF_ANALYSIS_TOOL_H
