//===- analysis/ValueAnalysis.cpp - Frama-C-Value-style baseline ----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueAnalysis.h"

#include "support/Strings.h"

using namespace cundef;

namespace {

class ValueAnalysisMonitor : public ExecMonitor {
public:
  explicit ValueAnalysisMonitor(UbSink &Sink) : Sink(Sink) {}

  void onDivide(Machine &M, const Value &Divisor, SourceLoc Loc) override {
    if (Divisor.isInt() && Divisor.asUnsigned(M.ast().Types) == 0)
      report(M, UbKind::DivisionByZero, "division by zero", Loc);
  }

  void onArith(Machine &M, const ArithOutcome &Out, SourceLoc Loc) override {
    if (Out.Overflow)
      report(M, UbKind::SignedOverflow, "signed overflow", Loc);
    else if (Out.ShiftNegCount)
      report(M, UbKind::NegativeShiftCount, "negative shift count", Loc);
    else if (Out.ShiftTooWide)
      report(M, UbKind::ShiftExponentOutOfRange, "invalid shift count",
             Loc);
    else if (Out.ShiftOfNeg)
      report(M, UbKind::ShiftOfNegative, "left shift of negative value",
             Loc);
  }

  void onRead(Machine &M, SymPointer Ptr, QualType Ty,
              SourceLoc Loc) override {
    checkValidity(M, Ptr, Ty, Loc, /*IsWrite=*/false);
    checkInitialization(M, Ptr, Ty, Loc);
  }

  void onWrite(Machine &M, SymPointer Ptr, QualType Ty, const Value &V,
               SourceLoc Loc) override {
    (void)V;
    checkValidity(M, Ptr, Ty, Loc, /*IsWrite=*/true);
  }

  void onFree(Machine &M, SymPointer Ptr, uint32_t Target,
              bool Valid) override {
    (void)Ptr;
    if (Valid)
      return;
    const MemObject *Obj = Target ? M.config().Mem.find(Target) : nullptr;
    if (Obj && Obj->State == ObjectState::Freed)
      report(M, UbKind::DoubleFree, "double free", SourceLoc());
    else
      report(M, UbKind::FreeInvalidPointer,
             "free() of a non-allocated address", SourceLoc());
  }

  void onCall(Machine &M, const FunctionDecl *Callee,
              const CallExpr *Site) override {
    if (!Callee || Callee->BuiltinId || !Site)
      return;
    const Type *SiteTy = Site->Callee->Ty.Ty->isPointer()
                             ? Site->Callee->Ty.Ty->Pointee.Ty
                             : Site->Callee->Ty.Ty;
    if (!SiteTy)
      return;
    if (!SiteTy->NoProto &&
        !M.ast().Types.compatible(QualType(SiteTy),
                                  QualType(Callee->FnTy))) {
      report(M, UbKind::CallTypeMismatch,
             "function pointer type incompatible with callee", Site->Loc);
      return;
    }
    if (SiteTy->NoProto && !Callee->FnTy->Variadic &&
        Site->Args.size() != Callee->Params.size())
      report(M, UbKind::CallArityMismatch,
             "wrong number of arguments for callee", Site->Loc);
  }

private:
  void report(Machine &M, UbKind Kind, const char *Detail, SourceLoc Loc) {
    Sink.report(UbReport(Kind, strFormat("ValueAnalysis: alarm: %s", Detail),
                         M.currentFunctionName(), Loc));
  }

  /// Validity of the accessed lvalue (\valid in ACSL terms): every
  /// storage kind, bounds and lifetime included.
  void checkValidity(Machine &M, SymPointer Ptr, QualType Ty, SourceLoc Loc,
                     bool IsWrite) {
    if (Ptr.isNull()) {
      report(M, UbKind::DerefNullPointer, "invalid memory access (null)",
             Loc);
      return;
    }
    if (Ptr.FromInteger) {
      report(M, UbKind::DerefDanglingPointer,
             "access through absolute address", Loc);
      return;
    }
    const MemObject *Obj = M.config().Mem.find(Ptr.Base);
    if (!Obj)
      return;
    if (Obj->State == ObjectState::Freed) {
      report(M, UbKind::UseAfterFree, "access to freed allocation", Loc);
      return;
    }
    if (Obj->State == ObjectState::Dead) {
      report(M, UbKind::AccessDeadObject,
             "access to local whose block was exited", Loc);
      return;
    }
    uint64_t Len = Ty.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Ty)
                       : 1;
    if (Ptr.Offset < 0 ||
        static_cast<uint64_t>(Ptr.Offset) + Len > Obj->Size)
      report(M, IsWrite ? UbKind::WriteOutOfBounds
                        : UbKind::ReadOutOfBounds,
             "access out of the valid range", Loc);
  }

  /// Initialization tracking (singleton domains make this exact).
  void checkInitialization(Machine &M, SymPointer Ptr, QualType Ty,
                           SourceLoc Loc) {
    const Type *T = Ty.Ty;
    if (!T || !T->isScalar())
      return;
    if (Ptr.FromInteger || Ptr.Base == 0)
      return;
    const MemObject *Obj = M.config().Mem.find(Ptr.Base);
    if (!Obj)
      return;
    uint64_t Len = M.ast().Types.sizeOf(Ty);
    if (Ptr.Offset < 0 ||
        static_cast<uint64_t>(Ptr.Offset) + Len > Obj->Size)
      return;
    for (uint64_t I = 0; I < Len; ++I) {
      const Byte &B = Obj->Bytes[static_cast<uint64_t>(Ptr.Offset) + I];
      if (B.isUnknown()) {
        report(M, UbKind::ReadIndeterminateValue,
               "read of uninitialized lvalue", Loc);
        return;
      }
    }
  }

  UbSink &Sink;
};

} // namespace

std::unique_ptr<ExecMonitor> ValueAnalysis::makeMonitor(UbSink &Sink) {
  return std::make_unique<ValueAnalysisMonitor>(Sink);
}
