//===- analysis/MemGrind.cpp - Valgrind/Memcheck-style baseline ----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemGrind.h"

#include "support/Strings.h"

using namespace cundef;

namespace {

class MemGrindMonitor : public ExecMonitor {
public:
  explicit MemGrindMonitor(UbSink &Sink) : Sink(Sink) {}

  void onRead(Machine &M, SymPointer Ptr, QualType Ty,
              SourceLoc Loc) override {
    checkAccess(M, Ptr, Ty, Loc, /*IsWrite=*/false);
    checkDefinedness(M, Ptr, Ty, Loc);
  }

  void onWrite(Machine &M, SymPointer Ptr, QualType Ty, const Value &V,
               SourceLoc Loc) override {
    (void)V;
    checkAccess(M, Ptr, Ty, Loc, /*IsWrite=*/true);
  }

  void onFree(Machine &M, SymPointer Ptr, uint32_t Target,
              bool Valid) override {
    (void)Ptr;
    if (Valid)
      return;
    const MemObject *Obj = Target ? M.config().Mem.find(Target) : nullptr;
    if (Obj && Obj->State == ObjectState::Freed)
      report(M, UbKind::DoubleFree, "block already freed", SourceLoc());
    else
      report(M, UbKind::FreeInvalidPointer,
             "free() of address not at start of a malloc'd block",
             SourceLoc());
  }

  void onCall(Machine &M, const FunctionDecl *Callee,
              const CallExpr *Site) override {
    if (!Callee || Callee->BuiltinId || !Site)
      return;
    const Type *SiteTy = Site->Callee->Ty.Ty->isPointer()
                             ? Site->Callee->Ty.Ty->Pointee.Ty
                             : Site->Callee->Ty.Ty;
    if (!SiteTy)
      return;
    if (!SiteTy->NoProto &&
        !M.ast().Types.compatible(QualType(SiteTy),
                                  QualType(Callee->FnTy))) {
      report(M, UbKind::CallTypeMismatch,
             "jump to function with mismatched frame layout", Site->Loc);
      return;
    }
    if (SiteTy->NoProto && !Callee->FnTy->Variadic &&
        Site->Args.size() != Callee->Params.size())
      report(M, UbKind::CallArityMismatch,
             "call passes the wrong number of arguments", Site->Loc);
  }

private:
  void report(Machine &M, UbKind Kind, const char *Detail, SourceLoc Loc) {
    Sink.report(UbReport(Kind, strFormat("MemGrind: %s", Detail),
                         M.currentFunctionName(), Loc));
  }

  /// Heap-only addressability: Memcheck's shadow covers allocations,
  /// not stack frames.
  void checkAccess(Machine &M, SymPointer Ptr, QualType Ty, SourceLoc Loc,
                   bool IsWrite) {
    const char *What = IsWrite ? "Invalid write" : "Invalid read";
    if (Ptr.FromInteger) {
      // A wild address: only flagged when it hits no mapped memory
      // (otherwise real hardware silently succeeds and so does
      // Memcheck if the address lands in a live allocation).
      int64_t Off = 0;
      if (!M.config().Mem.findByAddress(M.absAddr(Ptr), Off))
        report(M, IsWrite ? UbKind::WriteOutOfBounds
                          : UbKind::ReadOutOfBounds,
               What, Loc);
      return;
    }
    if (Ptr.Base == 0)
      return; // null deref faults; the fault is reported separately
    const MemObject *Obj = M.config().Mem.find(Ptr.Base);
    if (!Obj)
      return;
    if (Obj->Storage != StorageKind::Heap)
      return; // stack/global accesses are plain memory to Memcheck
    uint64_t Len = Ty.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Ty)
                       : 1;
    if (Obj->State == ObjectState::Freed) {
      report(M, UbKind::UseAfterFree, "use of freed heap block", Loc);
      return;
    }
    if (Ptr.Offset < 0 ||
        static_cast<uint64_t>(Ptr.Offset) + Len > Obj->Size)
      report(M, IsWrite ? UbKind::WriteOutOfBounds
                        : UbKind::ReadOutOfBounds,
             "access beyond the end of a heap block (redzone)", Loc);
  }

  /// Definedness: reads of uninitialized scalars. Character-typed
  /// accesses model Memcheck's copy-tolerance (definedness bits are
  /// propagated, not reported, on byte moves).
  void checkDefinedness(Machine &M, SymPointer Ptr, QualType Ty,
                        SourceLoc Loc) {
    const Type *T = Ty.Ty;
    if (!T || !T->isScalar() || T->isCharacter())
      return;
    if (Ptr.FromInteger || Ptr.Base == 0)
      return;
    const MemObject *Obj = M.config().Mem.find(Ptr.Base);
    if (!Obj)
      return;
    uint64_t Len = M.ast().Types.sizeOf(Ty);
    if (Ptr.Offset < 0 ||
        static_cast<uint64_t>(Ptr.Offset) + Len > Obj->Size)
      return;
    for (uint64_t I = 0; I < Len; ++I) {
      const Byte &B = Obj->Bytes[static_cast<uint64_t>(Ptr.Offset) + I];
      if (B.isUnknown()) {
        report(M, UbKind::ReadIndeterminateValue,
               "use of uninitialised value", Loc);
        return;
      }
    }
  }

  UbSink &Sink;
};

} // namespace

std::unique_ptr<ExecMonitor> MemGrind::makeMonitor(UbSink &Sink) {
  return std::make_unique<MemGrindMonitor>(Sink);
}
