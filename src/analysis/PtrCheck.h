//===- analysis/PtrCheck.h - CheckPointer-style baseline ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of source-instrumentation pointer checking a la Semantic
/// Designs' CheckPointer, substituting for the paper's second baseline.
/// Every pointer carries provenance metadata, so accesses to stack,
/// global, and heap objects are all bounds- and lifetime-checked --
/// unlike MemGrind. It tracks no definedness bits (uninitialized
/// *integers* pass through silently; uninitialized *pointers* surface
/// as garbage-address dereferences, which is why the real tool caught
/// about a third of the uninitialized-memory tests), and it knows
/// nothing about division or overflow.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_ANALYSIS_PTRCHECK_H
#define CUNDEF_ANALYSIS_PTRCHECK_H

#include "analysis/Tool.h"

namespace cundef {

class PtrCheck : public MonitorTool {
public:
  explicit PtrCheck(TargetConfig Target) : MonitorTool(Target) {}
  const char *name() const override { return "PtrCheck"; }

protected:
  std::unique_ptr<ExecMonitor> makeMonitor(UbSink &Sink) override;
};

} // namespace cundef

#endif // CUNDEF_ANALYSIS_PTRCHECK_H
