//===- analysis/PtrCheck.cpp - CheckPointer-style baseline ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "analysis/PtrCheck.h"

#include "support/Strings.h"

using namespace cundef;

namespace {

class PtrCheckMonitor : public ExecMonitor {
public:
  explicit PtrCheckMonitor(UbSink &Sink) : Sink(Sink) {}

  void onRead(Machine &M, SymPointer Ptr, QualType Ty,
              SourceLoc Loc) override {
    checkAccess(M, Ptr, Ty, Loc, /*IsWrite=*/false);
  }
  void onWrite(Machine &M, SymPointer Ptr, QualType Ty, const Value &V,
               SourceLoc Loc) override {
    (void)V;
    checkAccess(M, Ptr, Ty, Loc, /*IsWrite=*/true);
  }

  void onFree(Machine &M, SymPointer Ptr, uint32_t Target,
              bool Valid) override {
    (void)Ptr;
    if (Valid)
      return;
    const MemObject *Obj = Target ? M.config().Mem.find(Target) : nullptr;
    if (Obj && Obj->State == ObjectState::Freed)
      report(M, UbKind::DoubleFree, "pointer freed twice", SourceLoc());
    else
      report(M, UbKind::FreeInvalidPointer,
             "free() argument lacks allocation metadata", SourceLoc());
  }

  void onCall(Machine &M, const FunctionDecl *Callee,
              const CallExpr *Site) override {
    if (!Callee || Callee->BuiltinId || !Site)
      return;
    const Type *SiteTy = Site->Callee->Ty.Ty->isPointer()
                             ? Site->Callee->Ty.Ty->Pointee.Ty
                             : Site->Callee->Ty.Ty;
    if (!SiteTy)
      return;
    if (!SiteTy->NoProto &&
        !M.ast().Types.compatible(QualType(SiteTy),
                                  QualType(Callee->FnTy))) {
      report(M, UbKind::CallTypeMismatch,
             "indirect call signature does not match target", Site->Loc);
      return;
    }
    if (SiteTy->NoProto && !Callee->FnTy->Variadic &&
        Site->Args.size() != Callee->Params.size())
      report(M, UbKind::CallArityMismatch,
             "argument count differs from the function definition",
             Site->Loc);
  }

private:
  void report(Machine &M, UbKind Kind, const char *Detail, SourceLoc Loc) {
    Sink.report(UbReport(Kind, strFormat("PtrCheck: %s", Detail),
                         M.currentFunctionName(), Loc));
  }

  /// Full-provenance access check: every object kind, bounds and
  /// lifetime, null and forged pointers.
  void checkAccess(Machine &M, SymPointer Ptr, QualType Ty, SourceLoc Loc,
                   bool IsWrite) {
    if (Ptr.isNull()) {
      report(M, UbKind::DerefNullPointer, "null pointer dereference", Loc);
      return;
    }
    if (Ptr.FromInteger) {
      report(M, UbKind::DerefDanglingPointer,
             "pointer has no tracking metadata (forged or uninitialized)",
             Loc);
      return;
    }
    const MemObject *Obj = M.config().Mem.find(Ptr.Base);
    if (!Obj)
      return;
    if (Obj->State == ObjectState::Freed) {
      report(M, UbKind::UseAfterFree, "access to freed object", Loc);
      return;
    }
    if (Obj->State == ObjectState::Dead) {
      report(M, UbKind::AccessDeadObject,
             "access to object whose scope was exited", Loc);
      return;
    }
    uint64_t Len = Ty.Ty->isCompleteObjectType()
                       ? M.ast().Types.sizeOf(Ty)
                       : 1;
    if (Ptr.Offset < 0 ||
        static_cast<uint64_t>(Ptr.Offset) + Len > Obj->Size)
      report(M, IsWrite ? UbKind::WriteOutOfBounds
                        : UbKind::ReadOutOfBounds,
             "access outside the bounds of the pointed-to object", Loc);
  }

  UbSink &Sink;
};

} // namespace

std::unique_ptr<ExecMonitor> PtrCheck::makeMonitor(UbSink &Sink) {
  return std::make_unique<PtrCheckMonitor>(Sink);
}
