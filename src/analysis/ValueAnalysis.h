//===- analysis/ValueAnalysis.h - Frama-C-Value-style baseline ---*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of Frama-C's Value Analysis plugin run in "C interpreter"
/// mode, which is exactly how the paper benchmarked it (footnote 10).
/// In interpreter mode the abstract domains carry singleton values, so
/// the analysis behaves as a checking interpreter over concrete
/// executions. Its alarm set covers arithmetic (division by zero,
/// signed overflow, shifts, float-to-int), memory validity (null,
/// dangling, bounds, lifetime -- for every storage kind, unlike
/// MemGrind), initialization, free() validity, and call compatibility.
///
/// What it deliberately lacks -- and what separates it from kcc on the
/// broad suite (Figure 3) -- are the semantics-level mechanisms of the
/// paper's section 4: sequencing (locsWrittenTo), const tracking
/// (notWritable), symbolic pointer comparability, subObject pointer
/// bytes, effective-type (aliasing) checks, and evaluation-order search.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_ANALYSIS_VALUEANALYSIS_H
#define CUNDEF_ANALYSIS_VALUEANALYSIS_H

#include "analysis/Tool.h"

namespace cundef {

class ValueAnalysis : public MonitorTool {
public:
  explicit ValueAnalysis(TargetConfig Target) : MonitorTool(Target) {}
  const char *name() const override { return "ValueAnalysis"; }

protected:
  std::unique_ptr<ExecMonitor> makeMonitor(UbSink &Sink) override;
};

} // namespace cundef

#endif // CUNDEF_ANALYSIS_VALUEANALYSIS_H
