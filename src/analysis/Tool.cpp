//===- analysis/Tool.cpp - Analysis tool interface -----------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "analysis/Tool.h"

#include "analysis/MemGrind.h"
#include "analysis/PtrCheck.h"
#include "analysis/ValueAnalysis.h"

#include <chrono>

using namespace cundef;

const char *cundef::toolName(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::Kcc:           return "kcc";
  case ToolKind::MemGrind:      return "MemGrind";
  case ToolKind::PtrCheck:      return "PtrCheck";
  case ToolKind::ValueAnalysis: return "ValueAnalysis";
  }
  return "?";
}

namespace {

/// kcc: the strict semantics with static checks and order search.
class KccTool : public Tool {
public:
  explicit KccTool(TargetConfig Target, unsigned SearchJobs = 1) {
    Drv = std::make_unique<Driver>(AnalysisRequest::Builder()
                                       .target(Target)
                                       .strict(true)
                                       .staticChecks(true)
                                       .searchRuns(8)
                                       .searchJobs(SearchJobs)
                                       .buildOrDie());
  }

  ToolResult analyze(const std::string &Source,
                     const std::string &Name) override {
    auto Start = std::chrono::steady_clock::now();
    DriverOutcome Outcome = Drv->runSource(Source, Name);
    auto End = std::chrono::steady_clock::now();
    ToolResult Result;
    Result.CompileOk = Outcome.CompileOk;
    Result.Findings = Outcome.StaticUb;
    Result.Findings.insert(Result.Findings.end(), Outcome.DynamicUb.begin(),
                           Outcome.DynamicUb.end());
    Result.Status = Outcome.Status;
    Result.ExitCode = Outcome.ExitCode;
    Result.Output = Outcome.Output;
    Result.Micros = std::chrono::duration<double, std::micro>(End - Start)
                        .count();
    return Result;
  }
  const char *name() const override { return "kcc"; }

private:
  std::unique_ptr<Driver> Drv;
};

} // namespace

ToolResult MonitorTool::analyze(const std::string &Source,
                                const std::string &Name) {
  auto Start = std::chrono::steady_clock::now();
  ToolResult Result;

  Driver Drv(AnalysisRequest::Builder()
                 .target(Target)
                 .staticChecks(false)
                 .buildOrDie());
  Driver::Compiled C = Drv.compile(Source, Name);
  if (!C->ok()) {
    Result.CompileOk = false;
    Result.Status = RunStatus::Internal;
    return Result;
  }

  UbSink MonitorSink;   // the tool's findings
  UbSink MachineSink;   // the machine's own reports (discarded)
  MachineOptions MOpts;
  MOpts.Strict = false;
  Machine M(C->ast(), MOpts, MachineSink);
  std::unique_ptr<ExecMonitor> Monitor = makeMonitor(MonitorSink);
  M.addMonitor(Monitor.get());
  Result.Status = M.run();
  Result.ExitCode = M.config().ExitCode;
  Result.Output = M.config().Output;
  Result.Findings = MonitorSink.all();

  if (Result.Status == RunStatus::Fault && reportFaults() &&
      Result.Findings.empty()) {
    // The target crashed under the tool: every modelled tool reports it.
    Result.Findings.emplace_back(UbKind::DerefDanglingPointer,
                                 "target program received SIGSEGV",
                                 "<signal>", SourceLoc());
  }
  auto End = std::chrono::steady_clock::now();
  Result.Micros =
      std::chrono::duration<double, std::micro>(End - Start).count();
  return Result;
}

std::unique_ptr<Tool> Tool::create(ToolKind Kind, TargetConfig Target,
                                   unsigned SearchJobs) {
  switch (Kind) {
  case ToolKind::Kcc:
    return std::make_unique<KccTool>(Target, SearchJobs);
  case ToolKind::MemGrind:
    return std::make_unique<MemGrind>(Target);
  case ToolKind::PtrCheck:
    return std::make_unique<PtrCheck>(Target);
  case ToolKind::ValueAnalysis:
    return std::make_unique<ValueAnalysis>(Target);
  }
  return nullptr;
}
