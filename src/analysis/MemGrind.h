//===- analysis/MemGrind.h - Valgrind/Memcheck-style baseline ----*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of dynamic binary instrumentation a la Valgrind's Memcheck,
/// substituting for the paper's Valgrind baseline (Figure 2/3). The
/// mechanisms determine its profile:
///
///  * shadow state exists only for *heap* allocations (redzones), so
///    out-of-bounds accesses to stack or global arrays that land in
///    neighboring memory are invisible -- exactly why Valgrind scores
///    below 100% on the invalid-pointer class;
///  * definedness tracking flags reads of uninitialized scalars (but
///    copying bytes around, as Memcheck permits, is not flagged);
///  * free() arguments are validated against the allocation table;
///  * calls are verified against the callee (Valgrind sees wild jumps);
///  * it has no notion of division by zero or signed overflow: those
///    rows are 0% by construction, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_ANALYSIS_MEMGRIND_H
#define CUNDEF_ANALYSIS_MEMGRIND_H

#include "analysis/Tool.h"

namespace cundef {

class MemGrind : public MonitorTool {
public:
  explicit MemGrind(TargetConfig Target) : MonitorTool(Target) {}
  const char *name() const override { return "MemGrind"; }

protected:
  std::unique_ptr<ExecMonitor> makeMonitor(UbSink &Sink) override;
};

} // namespace cundef

#endif // CUNDEF_ANALYSIS_MEMGRIND_H
