//===- libc/Builtins.cpp - Library function semantics -------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "libc/Builtins.h"

#include "core/Machine.h"
#include "support/Strings.h"

#include <map>

using namespace cundef;

void cundef::assignBuiltinIds(AstContext &Ctx) {
  static const std::map<std::string, BuiltinId> Names = {
      {"malloc", BuiltinMalloc},   {"calloc", BuiltinCalloc},
      {"realloc", BuiltinRealloc}, {"free", BuiltinFree},
      {"memcpy", BuiltinMemcpy},   {"memmove", BuiltinMemmove},
      {"memset", BuiltinMemset},   {"memcmp", BuiltinMemcmp},
      {"strlen", BuiltinStrlen},   {"strcpy", BuiltinStrcpy},
      {"strncpy", BuiltinStrncpy}, {"strcmp", BuiltinStrcmp},
      {"strncmp", BuiltinStrncmp}, {"strchr", BuiltinStrchr},
      {"strcat", BuiltinStrcat},   {"printf", BuiltinPrintf},
      {"putchar", BuiltinPutchar}, {"puts", BuiltinPuts},
      {"abort", BuiltinAbort},     {"exit", BuiltinExit},
      {"abs", BuiltinAbs},         {"labs", BuiltinLabs},
      {"rand", BuiltinRand},       {"srand", BuiltinSrand},
      {"atoi", BuiltinAtoi},       {"qsort", BuiltinQsort},
      {"bsearch", BuiltinBsearch}, {"__cundef_va_arg", BuiltinVaArg},
      {"sprintf", BuiltinSprintf}, {"snprintf", BuiltinSnprintf},
  };
  for (FunctionDecl *F : Ctx.TU.Functions) {
    if (F->Body)
      continue; // a user definition shadows the library
    auto It = Names.find(Ctx.Interner.str(F->Name));
    if (It != Names.end())
      F->BuiltinId = It->second;
  }
}

namespace {

/// Convenience wrapper around the machine for the implementations.
struct BuiltinCtx {
  Machine &M;
  std::vector<Value> &Args;
  const CallExpr *Site;
  SourceLoc Loc;

  const TypeContext &types() const { return M.ast().Types; }
  TypeContext &mutableTypes() {
    // getPointer uniques types; logically const but requires mutation.
    return const_cast<TypeContext &>(M.ast().Types);
  }
  const Type *intTy() const { return types().intTy(); }
  const Type *sizeTy() const { return types().sizeTy(); }
  const Type *charPtrTy() {
    return mutableTypes().getPointer(QualType(types().charTy()));
  }
  const Type *voidPtrTy() {
    return mutableTypes().getPointer(QualType(types().voidTy()));
  }

  bool wantArgs(size_t N) {
    if (Args.size() >= N)
      return true;
    M.flagUb(UbKind::CallArityMismatch, Loc);
    return false;
  }
  uint64_t argUInt(size_t I) {
    return Args[I].isInt() ? Args[I].asUnsigned(types()) : 0;
  }
  int64_t argInt(size_t I) {
    return Args[I].isInt() ? Args[I].asSigned(types()) : 0;
  }
  bool argPointer(size_t I, SymPointer &Out) {
    if (I < Args.size() && Args[I].isPointer()) {
      Out = Args[I].Ptr;
      return true;
    }
    M.flagUb(UbKind::StringFunctionBadArgument, Loc);
    return false;
  }
};

Value makeNullPtr(BuiltinCtx &C) {
  return Value::makePointer(C.voidPtrTy(), SymPointer::null());
}

bool builtinMalloc(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(1))
    return false;
  uint64_t Size = C.argUInt(0);
  uint32_t Id = C.M.allocHeap(Size);
  Result = Id ? Value::makePointer(C.voidPtrTy(), SymPointer(Id, 0))
              : makeNullPtr(C);
  return true;
}

bool builtinCalloc(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(2))
    return false;
  uint64_t N = C.argUInt(0), Sz = C.argUInt(1);
  if (Sz != 0 && N > UINT64_MAX / Sz) {
    Result = makeNullPtr(C);
    return true; // multiplication overflow: calloc returns NULL
  }
  uint32_t Id = C.M.allocHeap(N * Sz);
  if (!Id) {
    Result = makeNullPtr(C);
    return true;
  }
  C.M.zeroFill(Id, 0, N * Sz);
  Result = Value::makePointer(C.voidPtrTy(), SymPointer(Id, 0));
  return true;
}

bool doRealloc(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(2))
    return false;
  if (!C.Args[0].isPointer()) {
    C.M.flagUb(UbKind::ReallocInvalidPointer, C.Loc);
    return false;
  }
  SymPointer P = C.Args[0].Ptr;
  uint64_t NewSize = C.argUInt(1);
  if (P.isNull()) {
    uint32_t Id = C.M.allocHeap(NewSize);
    Result = Value::makePointer(C.voidPtrTy(), SymPointer(Id, 0));
    return true;
  }
  const MemObject *Obj =
      P.FromInteger ? nullptr : C.M.config().Mem.find(P.Base);
  bool Valid = Obj && Obj->Storage == StorageKind::Heap &&
               Obj->State == ObjectState::Alive && P.Offset == 0;
  if (!Valid) {
    if (C.M.options().Strict) {
      C.M.flagUb(UbKind::ReallocInvalidPointer, C.Loc);
      return false;
    }
    Result = makeNullPtr(C);
    return true;
  }
  uint64_t OldSize = Obj->Size;
  uint32_t NewId = C.M.allocHeap(NewSize);
  if (!NewId) {
    Result = makeNullPtr(C);
    return true;
  }
  uint64_t CopyLen = std::min(OldSize, NewSize);
  if (CopyLen)
    C.M.copyBytes(SymPointer(NewId, 0), P, CopyLen, C.Loc,
                  /*CheckOverlap=*/false);
  C.M.config().Mem.markFreed(P.Base);
  Result = Value::makePointer(C.voidPtrTy(), SymPointer(NewId, 0));
  return true;
}

bool builtinFree(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(1))
    return false;
  C.M.runFree(C.Args[0], C.Loc);
  Result = Value::empty();
  return C.M.config().Status == RunStatus::Running;
}

bool builtinMemcpy(BuiltinCtx &C, Value &Result, bool CheckOverlap) {
  if (!C.wantArgs(3))
    return false;
  SymPointer Dst, Src;
  if (!C.argPointer(0, Dst) || !C.argPointer(1, Src))
    return false;
  uint64_t Len = C.argUInt(2);
  if (!C.M.copyBytes(Dst, Src, Len, C.Loc, CheckOverlap))
    return false;
  Result = C.Args[0];
  return true;
}

bool builtinMemset(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(3))
    return false;
  SymPointer Dst;
  if (!C.argPointer(0, Dst))
    return false;
  if (!C.M.setBytes(Dst, static_cast<uint8_t>(C.argUInt(1)), C.argUInt(2),
                    C.Loc))
    return false;
  Result = C.Args[0];
  return true;
}

bool builtinMemcmp(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(3))
    return false;
  SymPointer A, B;
  if (!C.argPointer(0, A) || !C.argPointer(1, B))
    return false;
  uint64_t Len = C.argUInt(2);
  int Cmp = 0;
  for (uint64_t I = 0; I < Len; ++I) {
    SymPointer Pa = A, Pb = B;
    Pa.Offset += static_cast<int64_t>(I);
    Pb.Offset += static_cast<int64_t>(I);
    Value Va, Vb;
    QualType UChar(C.types().ucharTy());
    if (!C.M.loadScalar(Pa, UChar, C.Loc, Va) ||
        !C.M.loadScalar(Pb, UChar, C.Loc, Vb))
      return false;
    if (Va.isOpaque() || Vb.isOpaque()) {
      C.M.flagUb(UbKind::ReadIndeterminateValue, C.Loc);
      if (C.M.options().Strict)
        return false;
      continue;
    }
    uint8_t Ba = static_cast<uint8_t>(Va.asUnsigned(C.types()));
    uint8_t Bb = static_cast<uint8_t>(Vb.asUnsigned(C.types()));
    if (Ba != Bb) {
      Cmp = Ba < Bb ? -1 : 1;
      break;
    }
  }
  Result = Value::makeInt(C.intTy(), static_cast<uint64_t>(Cmp));
  return true;
}

bool builtinStrlen(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(1))
    return false;
  SymPointer S;
  if (!C.argPointer(0, S))
    return false;
  std::string Str;
  if (!C.M.readCString(S, Str, C.Loc))
    return false;
  Result = Value::makeInt(C.sizeTy(), Str.size());
  return true;
}

bool builtinStrcpy(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(2))
    return false;
  SymPointer Dst, Src;
  if (!C.argPointer(0, Dst) || !C.argPointer(1, Src))
    return false;
  std::string Str;
  if (!C.M.readCString(Src, Str, C.Loc))
    return false;
  for (uint64_t I = 0; I <= Str.size(); ++I) {
    SymPointer At = Dst;
    At.Offset += static_cast<int64_t>(I);
    uint8_t Ch = I < Str.size() ? static_cast<uint8_t>(Str[I]) : 0;
    if (!C.M.setBytes(At, Ch, 1, C.Loc))
      return false;
  }
  Result = C.Args[0];
  return true;
}

bool builtinStrncpy(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(3))
    return false;
  SymPointer Dst, Src;
  if (!C.argPointer(0, Dst) || !C.argPointer(1, Src))
    return false;
  uint64_t N = C.argUInt(2);
  std::string Str;
  if (!C.M.readCString(Src, Str, C.Loc))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    SymPointer At = Dst;
    At.Offset += static_cast<int64_t>(I);
    uint8_t Ch = I < Str.size() ? static_cast<uint8_t>(Str[I]) : 0;
    if (!C.M.setBytes(At, Ch, 1, C.Loc))
      return false;
  }
  Result = C.Args[0];
  return true;
}

bool builtinStrcmp(BuiltinCtx &C, Value &Result, bool Bounded) {
  size_t Needed = Bounded ? 3 : 2;
  if (!C.wantArgs(Needed))
    return false;
  SymPointer A, B;
  if (!C.argPointer(0, A) || !C.argPointer(1, B))
    return false;
  uint64_t Limit = Bounded ? C.argUInt(2) : UINT64_MAX;
  std::string Sa, Sb;
  if (!C.M.readCString(A, Sa, C.Loc) || !C.M.readCString(B, Sb, C.Loc))
    return false;
  if (Bounded) {
    Sa = Sa.substr(0, Limit);
    Sb = Sb.substr(0, Limit);
  }
  int Cmp = Sa.compare(Sb);
  Result = Value::makeInt(C.intTy(),
                          static_cast<uint64_t>(Cmp < 0 ? -1 : Cmp > 0 ? 1 : 0));
  return true;
}

bool builtinStrchr(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(2))
    return false;
  SymPointer S;
  if (!C.argPointer(0, S))
    return false;
  int Wanted = static_cast<int>(C.argInt(1)) & 0xff;
  std::string Str;
  if (!C.M.readCString(S, Str, C.Loc))
    return false;
  // The result points into the argument string but with a plain char*
  // type -- the paper's const-laundering example (section 4.2.2).
  for (size_t I = 0; I <= Str.size(); ++I) {
    int Ch = I < Str.size() ? static_cast<unsigned char>(Str[I]) : 0;
    if (Ch == Wanted) {
      SymPointer At = S;
      At.Offset += static_cast<int64_t>(I);
      Result = Value::makePointer(C.charPtrTy(), At);
      return true;
    }
  }
  Result = Value::makePointer(C.charPtrTy(), SymPointer::null());
  return true;
}

bool builtinStrcat(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(2))
    return false;
  SymPointer Dst, Src;
  if (!C.argPointer(0, Dst) || !C.argPointer(1, Src))
    return false;
  std::string Head, Tail;
  if (!C.M.readCString(Dst, Head, C.Loc) ||
      !C.M.readCString(Src, Tail, C.Loc))
    return false;
  for (uint64_t I = 0; I <= Tail.size(); ++I) {
    SymPointer At = Dst;
    At.Offset += static_cast<int64_t>(Head.size() + I);
    uint8_t Ch = I < Tail.size() ? static_cast<uint8_t>(Tail[I]) : 0;
    if (!C.M.setBytes(At, Ch, 1, C.Loc))
      return false;
  }
  Result = C.Args[0];
  return true;
}

/// The printf formatting core, shared by printf/sprintf/snprintf:
/// renders the conversion of Fmt against the arguments starting at
/// C.Args[FirstArg] into \p Out, checking argument types against the
/// conversion specifications (UB 34/72/73).
bool formatPrintf(BuiltinCtx &C, SymPointer FmtPtr, size_t FirstArg,
                  std::string &Out) {
  std::string Fmt;
  if (!C.M.readCString(FmtPtr, Fmt, C.Loc))
    return false;

  const TypeContext &Types = C.types();
  size_t ArgIdx = FirstArg;
  auto NextArg = [&](Value &V) -> bool {
    if (ArgIdx >= C.Args.size()) {
      C.M.flagUbCode(72, C.Loc); // no corresponding argument
      return false;
    }
    V = C.Args[ArgIdx++];
    return true;
  };

  for (size_t I = 0; I < Fmt.size(); ++I) {
    char Ch = Fmt[I];
    if (Ch != '%') {
      Out += Ch;
      continue;
    }
    // Collect the conversion specification.
    std::string Spec = "%";
    ++I;
    while (I < Fmt.size() &&
           (std::string("-+ #0123456789.*").find(Fmt[I]) !=
            std::string::npos)) {
      if (Fmt[I] == '*') {
        Value W;
        if (!NextArg(W))
          return false;
        Spec += strFormat("%lld", (long long)W.asSigned(Types));
      } else {
        Spec += Fmt[I];
      }
      ++I;
    }
    int Longs = 0;
    bool SizeT = false;
    while (I < Fmt.size() && (Fmt[I] == 'l' || Fmt[I] == 'z' ||
                              Fmt[I] == 'h')) {
      if (Fmt[I] == 'l')
        ++Longs;
      if (Fmt[I] == 'z')
        SizeT = true;
      ++I;
    }
    if (I >= Fmt.size()) {
      C.M.flagUbCode(204, C.Loc); // malformed conversion
      return false;
    }
    char Conv = Fmt[I];
    switch (Conv) {
    case '%':
      Out += '%';
      break;
    case 'd':
    case 'i': {
      Value V;
      if (!NextArg(V))
        return false;
      if (!V.isInt()) {
        C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
        return false;
      }
      Out += strFormat((Spec + "lld").c_str(), (long long)V.asSigned(Types));
      break;
    }
    case 'u':
    case 'x':
    case 'X':
    case 'o': {
      Value V;
      if (!NextArg(V))
        return false;
      if (!V.isInt()) {
        C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
        return false;
      }
      std::string Full = Spec + "ll" + Conv;
      Out += strFormat(Full.c_str(),
                       (unsigned long long)V.asUnsigned(Types));
      break;
    }
    case 'c': {
      Value V;
      if (!NextArg(V))
        return false;
      if (!V.isInt()) {
        C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
        return false;
      }
      Out += static_cast<char>(V.asUnsigned(Types) & 0xff);
      break;
    }
    case 'f':
    case 'g':
    case 'e': {
      Value V;
      if (!NextArg(V))
        return false;
      if (!V.isFloat()) {
        C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
        return false;
      }
      std::string Full = Spec + Conv;
      Out += strFormat(Full.c_str(), V.F);
      break;
    }
    case 's': {
      Value V;
      if (!NextArg(V))
        return false;
      if (!V.isPointer()) {
        C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
        return false;
      }
      std::string Str;
      if (!C.M.readCString(V.Ptr, Str, C.Loc))
        return false;
      Out += Str;
      break;
    }
    case 'p': {
      Value V;
      if (!NextArg(V))
        return false;
      if (!V.isPointer()) {
        C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
        return false;
      }
      Out += strFormat("0x%llx", (unsigned long long)C.M.absAddr(V.Ptr));
      break;
    }
    default:
      C.M.flagUbCode(204, C.Loc); // invalid conversion specifier
      return false;
    }
    (void)Longs;
    (void)SizeT;
  }
  return true;
}

bool builtinPrintf(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(1))
    return false;
  SymPointer FmtPtr;
  if (!C.argPointer(0, FmtPtr))
    return false;
  std::string Out;
  if (!formatPrintf(C, FmtPtr, 1, Out))
    return false;
  C.M.writeOutput(Out);
  Result = Value::makeInt(C.intTy(), Out.size());
  return true;
}

/// sprintf/snprintf: format into a caller buffer. sprintf's writes are
/// bounds-checked like any other store, so overflowing the destination
/// is caught (the classic CWE-787 via sprintf). snprintf truncates and
/// returns the untruncated length (C11 7.21.6.5).
bool builtinSprintf(BuiltinCtx &C, Value &Result, bool Bounded) {
  size_t FmtIdx = Bounded ? 2 : 1;
  if (!C.wantArgs(FmtIdx + 1))
    return false;
  SymPointer Dst, FmtPtr;
  if (!C.argPointer(0, Dst) || !C.argPointer(FmtIdx, FmtPtr))
    return false;
  uint64_t Limit = Bounded ? C.argUInt(1) : UINT64_MAX;
  std::string Out;
  if (!formatPrintf(C, FmtPtr, FmtIdx + 1, Out))
    return false;
  uint64_t Write = Out.size();
  if (Bounded && Limit == 0) {
    Result = Value::makeInt(C.intTy(), Out.size());
    return true;
  }
  if (Bounded && Write > Limit - 1)
    Write = Limit - 1;
  for (uint64_t I = 0; I <= Write; ++I) {
    SymPointer At = Dst;
    At.Offset += static_cast<int64_t>(I);
    uint8_t Ch = I < Write ? static_cast<uint8_t>(Out[I]) : 0;
    if (!C.M.setBytes(At, Ch, 1, C.Loc))
      return false;
  }
  Result = Value::makeInt(C.intTy(), Out.size());
  return true;
}

bool builtinAbs(BuiltinCtx &C, Value &Result, bool Long) {
  if (!C.wantArgs(1))
    return false;
  int64_t V = C.argInt(0);
  const Type *Ty = Long ? C.types().longTy() : C.intTy();
  int64_t Min = C.types().minValueOf(Ty);
  if (V == Min) {
    // abs(INT_MIN) overflows (C11 7.22.6.1p2).
    C.M.flagUb(UbKind::SignedOverflow, C.Loc);
    if (C.M.options().Strict)
      return false;
  }
  Result = Value::makeInt(Ty, static_cast<uint64_t>(V < 0 ? -V : V));
  return true;
}

bool builtinAtoi(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(1))
    return false;
  SymPointer S;
  if (!C.argPointer(0, S))
    return false;
  std::string Str;
  if (!C.M.readCString(S, Str, C.Loc))
    return false;
  Result = Value::makeInt(C.intTy(),
                          static_cast<uint64_t>(std::atoll(Str.c_str())));
  return true;
}

/// __cundef_va_arg(index): materializes the index-th variadic argument
/// of the innermost call into a fresh cell whose effective type is the
/// argument's actual (default-promoted) type, and returns its address.
/// va_arg's cast then reads it: an incompatible type trips the
/// effective-type rule (C11 7.16.1.1p2, catalog row 95); walking past
/// the last argument is row 98.
bool builtinVaArg(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(1))
    return false;
  int64_t Index = C.argInt(0);
  const std::vector<Value> &Tail = C.M.varArgs();
  if (Index < 0 || static_cast<uint64_t>(Index) >= Tail.size()) {
    C.M.flagUbCode(98, C.Loc); // no next argument
    return false;
  }
  const Value &Arg = Tail[static_cast<size_t>(Index)];
  const Type *Ty = Arg.Ty;
  if (!Ty) {
    C.M.flagUb(UbKind::VaArgTypeMismatch, C.Loc);
    return false;
  }
  uint64_t Size = C.types().sizeOf(QualType(Ty));
  uint32_t Cell = C.M.allocHeap(Size);
  if (!Cell)
    return false;
  if (!C.M.storeScalar(SymPointer(Cell, 0), QualType(Ty), Arg, C.Loc,
                       /*IsInit=*/true))
    return false;
  C.M.config().HeapEffectiveTy[{Cell, 0}] = Ty;
  Result = Value::makePointer(C.voidPtrTy(), SymPointer(Cell, 0));
  return true;
}

/// Shared comparator invocation for qsort/bsearch: calls back into the
/// user's function with two element pointers (catalog rows 93/94/140
/// are about misusing exactly this interface).
bool callComparator(BuiltinCtx &C, const FunctionDecl *Cmp, SymPointer A,
                    SymPointer B, int &Out) {
  const Type *ConstVoidPtr = C.mutableTypes().getPointer(
      QualType(C.types().voidTy(), QualConst));
  std::vector<Value> Args;
  Args.push_back(Value::makePointer(ConstVoidPtr, A));
  Args.push_back(Value::makePointer(ConstVoidPtr, B));
  Value R;
  if (!C.M.callFunctionSync(Cmp, std::move(Args), C.Loc, R))
    return false;
  if (!R.isInt()) {
    C.M.flagUb(UbKind::CallTypeMismatch, C.Loc);
    return false;
  }
  Out = static_cast<int>(R.asSigned(C.types()));
  return true;
}

bool builtinQsort(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(4))
    return false;
  SymPointer Base;
  if (!C.argPointer(0, Base))
    return false;
  uint64_t Count = C.argUInt(1);
  uint64_t Size = C.argUInt(2);
  const FunctionDecl *Cmp = C.M.functionFor(C.Args[3]);
  if (!Cmp || !Cmp->Body) {
    C.M.flagUb(UbKind::CallTypeMismatch, C.Loc);
    return false;
  }
  if (Size == 0 || Count <= 1) {
    Result = Value::empty();
    return true;
  }
  // Scratch storage for swaps (modelled internal buffer).
  uint32_t Scratch = C.M.allocHeap(Size);
  if (!Scratch) {
    C.M.flagUbCode(70, C.Loc); // absurd element size
    return false;
  }
  auto ElemAt = [&](uint64_t I) {
    SymPointer P = Base;
    P.Offset += static_cast<int64_t>(I * Size);
    return P;
  };
  // Insertion sort: quadratic but oblivious to comparator quality,
  // which keeps inconsistent comparators (row 93) from corrupting the
  // machine itself.
  for (uint64_t I = 1; I < Count; ++I) {
    for (uint64_t J = I; J > 0; --J) {
      int Order = 0;
      if (!callComparator(C, Cmp, ElemAt(J - 1), ElemAt(J), Order))
        return false;
      if (Order <= 0)
        break;
      if (!C.M.copyBytes(SymPointer(Scratch, 0), ElemAt(J - 1), Size, C.Loc,
                         false) ||
          !C.M.copyBytes(ElemAt(J - 1), ElemAt(J), Size, C.Loc, false) ||
          !C.M.copyBytes(ElemAt(J), SymPointer(Scratch, 0), Size, C.Loc,
                         false))
        return false;
      // Swaps within one call are internally sequenced.
      C.M.seqPoint();
    }
  }
  C.M.config().Mem.markFreed(Scratch);
  Result = Value::empty();
  return true;
}

bool builtinBsearch(BuiltinCtx &C, Value &Result) {
  if (!C.wantArgs(5))
    return false;
  SymPointer Key, Base;
  if (!C.argPointer(0, Key) || !C.argPointer(1, Base))
    return false;
  uint64_t Count = C.argUInt(2);
  uint64_t Size = C.argUInt(3);
  const FunctionDecl *Cmp = C.M.functionFor(C.Args[4]);
  if (!Cmp || !Cmp->Body) {
    C.M.flagUb(UbKind::CallTypeMismatch, C.Loc);
    return false;
  }
  uint64_t Lo = 0, Hi = Count;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    SymPointer At = Base;
    At.Offset += static_cast<int64_t>(Mid * Size);
    int Order = 0;
    if (!callComparator(C, Cmp, Key, At, Order))
      return false;
    if (Order == 0) {
      Result = Value::makePointer(C.voidPtrTy(), At);
      return true;
    }
    if (Order < 0)
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  Result = makeNullPtr(C);
  return true;
}

} // namespace

bool cundef::runBuiltin(Machine &M, uint16_t Id, std::vector<Value> &Args,
                        const CallExpr *Site, Value &Result) {
  BuiltinCtx C{M, Args, Site, Site ? Site->Loc : SourceLoc()};
  switch (static_cast<BuiltinId>(Id)) {
  case BuiltinMalloc:
    return builtinMalloc(C, Result);
  case BuiltinCalloc:
    return builtinCalloc(C, Result);
  case BuiltinRealloc:
    return doRealloc(C, Result);
  case BuiltinFree:
    return builtinFree(C, Result);
  case BuiltinMemcpy:
    return builtinMemcpy(C, Result, /*CheckOverlap=*/true);
  case BuiltinMemmove:
    return builtinMemcpy(C, Result, /*CheckOverlap=*/false);
  case BuiltinMemset:
    return builtinMemset(C, Result);
  case BuiltinMemcmp:
    return builtinMemcmp(C, Result);
  case BuiltinStrlen:
    return builtinStrlen(C, Result);
  case BuiltinStrcpy:
    return builtinStrcpy(C, Result);
  case BuiltinStrncpy:
    return builtinStrncpy(C, Result);
  case BuiltinStrcmp:
    return builtinStrcmp(C, Result, /*Bounded=*/false);
  case BuiltinStrncmp:
    return builtinStrcmp(C, Result, /*Bounded=*/true);
  case BuiltinStrchr:
    return builtinStrchr(C, Result);
  case BuiltinStrcat:
    return builtinStrcat(C, Result);
  case BuiltinPrintf:
    return builtinPrintf(C, Result);
  case BuiltinPutchar: {
    if (!C.wantArgs(1))
      return false;
    char Ch = static_cast<char>(C.argUInt(0) & 0xff);
    M.writeOutput(std::string(1, Ch));
    Result = Value::makeInt(C.intTy(), C.argUInt(0));
    return true;
  }
  case BuiltinPuts: {
    if (!C.wantArgs(1))
      return false;
    SymPointer S;
    if (!C.argPointer(0, S))
      return false;
    std::string Str;
    if (!M.readCString(S, Str, C.Loc))
      return false;
    M.writeOutput(Str + "\n");
    Result = Value::makeInt(C.intTy(), 0);
    return true;
  }
  case BuiltinAbort:
    M.config().Status = RunStatus::Completed;
    M.config().ExitCode = 134; // SIGABRT-style
    M.config().Values.clear();
    return false;
  case BuiltinExit:
    M.config().Status = RunStatus::Completed;
    M.config().ExitCode = static_cast<int>(C.argInt(0));
    M.config().Values.clear();
    return false;
  case BuiltinAbs:
    return builtinAbs(C, Result, /*Long=*/false);
  case BuiltinLabs:
    return builtinAbs(C, Result, /*Long=*/true);
  case BuiltinRand: {
    uint32_t &State = M.config().RandState;
    State = State * 1103515245u + 12345u;
    Result = Value::makeInt(C.intTy(), (State >> 16) & 0x7fff);
    return true;
  }
  case BuiltinSrand: {
    if (!C.wantArgs(1))
      return false;
    M.config().RandState = static_cast<uint32_t>(C.argUInt(0));
    Result = Value::empty();
    return true;
  }
  case BuiltinAtoi:
    return builtinAtoi(C, Result);
  case BuiltinQsort:
    return builtinQsort(C, Result);
  case BuiltinBsearch:
    return builtinBsearch(C, Result);
  case BuiltinVaArg:
    return builtinVaArg(C, Result);
  case BuiltinSprintf:
    return builtinSprintf(C, Result, /*Bounded=*/false);
  case BuiltinSnprintf:
    return builtinSprintf(C, Result, /*Bounded=*/true);
  case BuiltinNone:
    break;
  }
  M.config().Status = RunStatus::Internal;
  return false;
}
