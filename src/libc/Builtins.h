//===- libc/Builtins.h - Library function semantics -------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard library functions the checker gives semantics to.
/// Declarations come from the virtual headers (libc/Headers.h); after
/// parsing, assignBuiltinIds() marks the bodyless declarations whose
/// names match a builtin, and the machine dispatches calls to
/// runBuiltin(). The implementations carry the library's undefinedness
/// conditions (bad free, overlapping memcpy, non-string arguments,
/// printf argument mismatches, ...).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_LIBC_BUILTINS_H
#define CUNDEF_LIBC_BUILTINS_H

#include "ast/Ast.h"
#include "core/Value.h"

#include <vector>

namespace cundef {

class Machine;
class CallExpr;

enum BuiltinId : uint16_t {
  BuiltinNone = 0,
  BuiltinMalloc,
  BuiltinCalloc,
  BuiltinRealloc,
  BuiltinFree,
  BuiltinMemcpy,
  BuiltinMemmove,
  BuiltinMemset,
  BuiltinMemcmp,
  BuiltinStrlen,
  BuiltinStrcpy,
  BuiltinStrncpy,
  BuiltinStrcmp,
  BuiltinStrncmp,
  BuiltinStrchr,
  BuiltinStrcat,
  BuiltinPrintf,
  BuiltinPutchar,
  BuiltinPuts,
  BuiltinAbort,
  BuiltinExit,
  BuiltinAbs,
  BuiltinLabs,
  BuiltinRand,
  BuiltinSrand,
  BuiltinAtoi,
  BuiltinQsort,
  BuiltinBsearch,
  BuiltinVaArg, ///< __cundef_va_arg, behind the va_arg macro
  BuiltinSprintf,
  BuiltinSnprintf,
};

/// Marks bodyless functions whose name is a known builtin.
void assignBuiltinIds(AstContext &Ctx);

/// Executes builtin \p Id. Returns false when the builtin reported
/// undefinedness (or stopped the machine); otherwise sets \p Result.
bool runBuiltin(Machine &M, uint16_t Id, std::vector<Value> &Args,
                const CallExpr *Site, Value &Result);

} // namespace cundef

#endif // CUNDEF_LIBC_BUILTINS_H
