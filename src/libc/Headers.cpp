//===- libc/Headers.cpp - Virtual standard headers ----------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "libc/Headers.h"

using namespace cundef;

// The sizes below match the default LP64 TargetConfig. (Programs under
// analysis that run with another configuration use the same headers;
// size_t only participates through sizeof-compatible arithmetic in the
// test corpora, so the mismatch is benign and documented in DESIGN.md.)

static const char StddefH[] = R"(
#ifndef _CUNDEF_STDDEF_H
#define _CUNDEF_STDDEF_H
typedef unsigned long size_t;
typedef long ptrdiff_t;
#define NULL ((void*)0)
#define offsetof(T, member) ((size_t)&(((T*)0)->member))
#endif
)";

static const char StdlibH[] = R"(
#ifndef _CUNDEF_STDLIB_H
#define _CUNDEF_STDLIB_H
#include <stddef.h>
void *malloc(size_t size);
void *calloc(size_t count, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);
void abort(void);
void exit(int status);
int abs(int value);
long labs(long value);
int rand(void);
void srand(unsigned int seed);
int atoi(const char *text);
void qsort(void *base, size_t count, size_t size,
           int (*compare)(const void *, const void *));
void *bsearch(const void *key, const void *base, size_t count,
              size_t size, int (*compare)(const void *, const void *));
#define RAND_MAX 32767
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#endif
)";

static const char StringH[] = R"(
#ifndef _CUNDEF_STRING_H
#define _CUNDEF_STRING_H
#include <stddef.h>
void *memcpy(void *dst, const void *src, size_t len);
void *memmove(void *dst, const void *src, size_t len);
void *memset(void *dst, int value, size_t len);
int memcmp(const void *a, const void *b, size_t len);
size_t strlen(const char *s);
char *strcpy(char *dst, const char *src);
char *strncpy(char *dst, const char *src, size_t len);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, size_t len);
char *strchr(const char *s, int c);
char *strcat(char *dst, const char *src);
#endif
)";

static const char StdioH[] = R"(
#ifndef _CUNDEF_STDIO_H
#define _CUNDEF_STDIO_H
#include <stddef.h>
int printf(const char *format, ...);
int sprintf(char *dst, const char *format, ...);
int snprintf(char *dst, size_t limit, const char *format, ...);
int putchar(int c);
int puts(const char *s);
#define EOF (-1)
#endif
)";

static const char LimitsH[] = R"(
#ifndef _CUNDEF_LIMITS_H
#define _CUNDEF_LIMITS_H
#define CHAR_BIT 8
#define SCHAR_MIN (-128)
#define SCHAR_MAX 127
#define UCHAR_MAX 255
#define CHAR_MIN SCHAR_MIN
#define CHAR_MAX SCHAR_MAX
#define SHRT_MIN (-32768)
#define SHRT_MAX 32767
#define USHRT_MAX 65535
#define INT_MIN (-INT_MAX - 1)
#define INT_MAX 2147483647
#define UINT_MAX 4294967295u
#define LONG_MIN (-LONG_MAX - 1L)
#define LONG_MAX 9223372036854775807L
#define ULONG_MAX 18446744073709551615ul
#define LLONG_MIN (-LLONG_MAX - 1LL)
#define LLONG_MAX 9223372036854775807LL
#define ULLONG_MAX 18446744073709551615ull
#endif
)";

static const char StdboolH[] = R"(
#ifndef _CUNDEF_STDBOOL_H
#define _CUNDEF_STDBOOL_H
#define bool _Bool
#define true 1
#define false 0
#endif
)";

// va_list is an index into the active call's variadic tail; va_arg
// materializes the next argument into a cell typed with the argument's
// *actual* (promoted) type, so reading it with an incompatible type
// trips the effective-type rule -- C11 7.16.1.1p2's undefinedness.
static const char AssertH[] = R"(
#ifndef _CUNDEF_ASSERT_H
#define _CUNDEF_ASSERT_H
#include <stdlib.h>
#ifdef NDEBUG
#define assert(ignored) ((void)0)
#else
#define assert(condition) ((condition) ? (void)0 : abort())
#endif
#endif
)";

static const char CtypeH[] = R"(
#ifndef _CUNDEF_CTYPE_H
#define _CUNDEF_CTYPE_H
#define isdigit(c) ((c) >= '0' && (c) <= '9')
#define isupper(c) ((c) >= 'A' && (c) <= 'Z')
#define islower(c) ((c) >= 'a' && (c) <= 'z')
#define isalpha(c) (isupper(c) || islower(c))
#define isalnum(c) (isalpha(c) || isdigit(c))
#define isspace(c) ((c) == ' ' || (c) == '\t' || (c) == '\n' || \
                    (c) == '\r' || (c) == '\v' || (c) == '\f')
#define toupper(c) (islower(c) ? (c) - 'a' + 'A' : (c))
#define tolower(c) (isupper(c) ? (c) - 'A' + 'a' : (c))
#endif
)";

static const char StdargH[] = R"(
#ifndef _CUNDEF_STDARG_H
#define _CUNDEF_STDARG_H
typedef int va_list;
void *__cundef_va_arg(int index);
#define va_start(ap, last) ((ap) = 0)
#define va_arg(ap, type) (*(type*)__cundef_va_arg((ap)++))
#define va_end(ap) ((void)(ap))
#define va_copy(dst, src) ((dst) = (src))
#endif
)";

void cundef::registerStandardHeaders(HeaderRegistry &Registry) {
  Registry.add("stddef.h", StddefH);
  Registry.add("stdlib.h", StdlibH);
  Registry.add("string.h", StringH);
  Registry.add("stdio.h", StdioH);
  Registry.add("limits.h", LimitsH);
  Registry.add("stdbool.h", StdboolH);
  Registry.add("stdarg.h", StdargH);
  Registry.add("assert.h", AssertH);
  Registry.add("ctype.h", CtypeH);
}
