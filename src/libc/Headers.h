//===- libc/Headers.h - Virtual standard headers -----------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the standard headers (<stdio.h>, <stdlib.h>, <string.h>,
/// <stddef.h>, <limits.h>, <stdbool.h>) with a HeaderRegistry. There is
/// no filesystem: programs under analysis include these virtual files,
/// whose declarations are bound to builtins by libc/Builtins.h.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_LIBC_HEADERS_H
#define CUNDEF_LIBC_HEADERS_H

#include "text/Preprocessor.h"

namespace cundef {

/// Adds all standard headers to \p Registry.
void registerStandardHeaders(HeaderRegistry &Registry);

} // namespace cundef

#endif // CUNDEF_LIBC_HEADERS_H
