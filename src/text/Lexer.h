//===- text/Lexer.h - C lexer ---------------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written maximal-munch lexer over one buffer. It recognizes the
/// full C99 token set (identifiers, integer/floating/character/string
/// constants with escapes and suffixes, all punctuators) and strips
/// comments. Words are always emitted as identifiers; keyword promotion
/// happens in the preprocessor.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TEXT_LEXER_H
#define CUNDEF_TEXT_LEXER_H

#include "support/Diagnostics.h"
#include "support/StringInterner.h"
#include "text/Token.h"

#include <string>

namespace cundef {

class Lexer {
public:
  /// Lexes \p Buffer (not owned; must outlive the lexer). \p FileId tags
  /// every token's location.
  Lexer(const std::string &Buffer, uint32_t FileId, StringInterner &Interner,
        DiagnosticEngine &Diags);

  /// Returns the next token, advancing. At end of input returns Eof
  /// forever.
  Token next();

  /// Lexes the remainder of the current line as raw text (used by
  /// #error and for skipping unknown directives).
  std::string restOfLine();

  /// True when the cursor sits at the end of the buffer.
  bool atEnd() const { return Pos >= Buf.size(); }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Buf.size() ? Buf[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  SourceLoc here() const { return SourceLoc(FileId, Line, Col); }

  Token makeToken(TokenKind Kind, SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexCharConstant(SourceLoc Loc);
  Token lexStringLiteral(SourceLoc Loc);
  Token lexPunctuator(SourceLoc Loc);
  /// Decodes one escape sequence after the backslash; returns its value.
  unsigned decodeEscape(SourceLoc Loc);
  void skipWhitespaceAndComments();

  const std::string &Buf;
  uint32_t FileId;
  StringInterner &Interner;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  bool SawNewline = true; // start of buffer counts as a line start
  bool SawSpace = false;
};

} // namespace cundef

#endif // CUNDEF_TEXT_LEXER_H
