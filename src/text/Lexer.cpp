//===- text/Lexer.cpp - C lexer -------------------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "text/Lexer.h"

#include "support/Strings.h"

#include <cassert>
#include <cctype>

using namespace cundef;

const char *cundef::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:            return "end of file";
  case TokenKind::Identifier:     return "identifier";
  case TokenKind::IntLiteral:     return "integer constant";
  case TokenKind::FloatLiteral:   return "floating constant";
  case TokenKind::CharLiteral:    return "character constant";
  case TokenKind::StringLiteral:  return "string literal";
  case TokenKind::LBracket:       return "'['";
  case TokenKind::RBracket:       return "']'";
  case TokenKind::LParen:         return "'('";
  case TokenKind::RParen:         return "')'";
  case TokenKind::LBrace:         return "'{'";
  case TokenKind::RBrace:         return "'}'";
  case TokenKind::Period:         return "'.'";
  case TokenKind::Arrow:          return "'->'";
  case TokenKind::PlusPlus:       return "'++'";
  case TokenKind::MinusMinus:     return "'--'";
  case TokenKind::Amp:            return "'&'";
  case TokenKind::Star:           return "'*'";
  case TokenKind::Plus:           return "'+'";
  case TokenKind::Minus:          return "'-'";
  case TokenKind::Tilde:          return "'~'";
  case TokenKind::Bang:           return "'!'";
  case TokenKind::Slash:          return "'/'";
  case TokenKind::Percent:        return "'%'";
  case TokenKind::LessLess:       return "'<<'";
  case TokenKind::GreaterGreater: return "'>>'";
  case TokenKind::Less:           return "'<'";
  case TokenKind::Greater:        return "'>'";
  case TokenKind::LessEqual:      return "'<='";
  case TokenKind::GreaterEqual:   return "'>='";
  case TokenKind::EqualEqual:     return "'=='";
  case TokenKind::BangEqual:      return "'!='";
  case TokenKind::Caret:          return "'^'";
  case TokenKind::Pipe:           return "'|'";
  case TokenKind::AmpAmp:         return "'&&'";
  case TokenKind::PipePipe:       return "'||'";
  case TokenKind::Question:       return "'?'";
  case TokenKind::Colon:          return "':'";
  case TokenKind::Semi:           return "';'";
  case TokenKind::Ellipsis:       return "'...'";
  case TokenKind::Equal:          return "'='";
  case TokenKind::StarEqual:      return "'*='";
  case TokenKind::SlashEqual:     return "'/='";
  case TokenKind::PercentEqual:   return "'%='";
  case TokenKind::PlusEqual:      return "'+='";
  case TokenKind::MinusEqual:     return "'-='";
  case TokenKind::LessLessEqual:  return "'<<='";
  case TokenKind::GreaterGreaterEqual: return "'>>='";
  case TokenKind::AmpEqual:       return "'&='";
  case TokenKind::CaretEqual:     return "'^='";
  case TokenKind::PipeEqual:      return "'|='";
  case TokenKind::Comma:          return "','";
  case TokenKind::Hash:           return "'#'";
  case TokenKind::HashHash:       return "'##'";
  case TokenKind::KwBreak:        return "'break'";
  case TokenKind::KwCase:         return "'case'";
  case TokenKind::KwChar:         return "'char'";
  case TokenKind::KwConst:        return "'const'";
  case TokenKind::KwContinue:     return "'continue'";
  case TokenKind::KwDefault:      return "'default'";
  case TokenKind::KwDo:           return "'do'";
  case TokenKind::KwDouble:       return "'double'";
  case TokenKind::KwElse:         return "'else'";
  case TokenKind::KwEnum:         return "'enum'";
  case TokenKind::KwExtern:       return "'extern'";
  case TokenKind::KwFloat:        return "'float'";
  case TokenKind::KwFor:          return "'for'";
  case TokenKind::KwGoto:         return "'goto'";
  case TokenKind::KwIf:           return "'if'";
  case TokenKind::KwInline:       return "'inline'";
  case TokenKind::KwInt:          return "'int'";
  case TokenKind::KwLong:         return "'long'";
  case TokenKind::KwRegister:     return "'register'";
  case TokenKind::KwRestrict:     return "'restrict'";
  case TokenKind::KwReturn:       return "'return'";
  case TokenKind::KwShort:        return "'short'";
  case TokenKind::KwSigned:       return "'signed'";
  case TokenKind::KwSizeof:       return "'sizeof'";
  case TokenKind::KwStatic:       return "'static'";
  case TokenKind::KwStruct:       return "'struct'";
  case TokenKind::KwSwitch:       return "'switch'";
  case TokenKind::KwTypedef:      return "'typedef'";
  case TokenKind::KwUnion:        return "'union'";
  case TokenKind::KwUnsigned:     return "'unsigned'";
  case TokenKind::KwVoid:         return "'void'";
  case TokenKind::KwVolatile:     return "'volatile'";
  case TokenKind::KwWhile:        return "'while'";
  case TokenKind::KwBool:         return "'_Bool'";
  }
  return "<invalid token kind>";
}

Lexer::Lexer(const std::string &Buffer, uint32_t FileId,
             StringInterner &Interner, DiagnosticEngine &Diags)
    : Buf(Buffer), FileId(FileId), Interner(Interner), Diags(Diags) {}

char Lexer::advance() {
  assert(Pos < Buf.size() && "advancing past end of buffer");
  char C = Buf[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == '\n') {
      SawNewline = true;
      SawSpace = false;
      advance();
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\v' || C == '\f') {
      SawSpace = true;
      advance();
      continue;
    }
    // Line splice.
    if (C == '\\' && peek(1) == '\n') {
      advance();
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated /* comment");
        return;
      }
      advance();
      advance();
      SawSpace = true;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.AtLineStart = SawNewline;
  Tok.LeadingSpace = SawSpace || SawNewline;
  SawNewline = false;
  SawSpace = false;
  return Tok;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc = here();
  if (atEnd()) {
    Token Tok = makeToken(TokenKind::Eof, Loc);
    return Tok;
  }
  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber(Loc);
  if (C == '\'')
    return lexCharConstant(Loc);
  if (C == '"')
    return lexStringLiteral(Loc);
  return lexPunctuator(Loc);
}

std::string Lexer::restOfLine() {
  std::string Text;
  while (!atEnd() && peek() != '\n')
    Text += advance();
  // Trim leading/trailing spaces.
  size_t B = Text.find_first_not_of(" \t");
  size_t E = Text.find_last_not_of(" \t");
  if (B == std::string::npos)
    return "";
  return Text.substr(B, E - B + 1);
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  std::string Name;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Name += advance();
  Token Tok = makeToken(TokenKind::Identifier, Loc);
  Tok.Sym = Interner.intern(Name);
  Tok.Text = std::move(Name);
  return Tok;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  std::string Spelling;
  bool IsFloat = false;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    Spelling += advance();
    Spelling += advance();
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())))
      Spelling += advance();
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Spelling += advance();
    if (peek() == '.') {
      IsFloat = true;
      Spelling += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Spelling += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Next)) || Next == '+' ||
          Next == '-') {
        IsFloat = true;
        Spelling += advance(); // e
        if (peek() == '+' || peek() == '-')
          Spelling += advance();
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          Spelling += advance();
      }
    }
  }
  // Suffixes: for integers u/U, l/L, ll/LL in any defined order; for
  // floats f/F/l/L.
  if (IsFloat) {
    if (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L')
      Spelling += advance();
  } else {
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
      Spelling += advance();
  }
  (void)IsHex;
  Token Tok =
      makeToken(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                Loc);
  Tok.Text = std::move(Spelling);
  return Tok;
}

unsigned Lexer::decodeEscape(SourceLoc Loc) {
  if (atEnd()) {
    Diags.error(Loc, "unterminated escape sequence");
    return 0;
  }
  char C = advance();
  switch (C) {
  case 'n':  return '\n';
  case 't':  return '\t';
  case 'r':  return '\r';
  case 'a':  return '\a';
  case 'b':  return '\b';
  case 'f':  return '\f';
  case 'v':  return '\v';
  case '0': case '1': case '2': case '3':
  case '4': case '5': case '6': case '7': {
    unsigned Value = static_cast<unsigned>(C - '0');
    for (int I = 0; I < 2 && peek() >= '0' && peek() <= '7'; ++I)
      Value = Value * 8 + static_cast<unsigned>(advance() - '0');
    return Value;
  }
  case 'x': {
    unsigned Value = 0;
    bool Any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      unsigned Digit = std::isdigit(static_cast<unsigned char>(D))
                           ? static_cast<unsigned>(D - '0')
                           : static_cast<unsigned>(std::tolower(D) - 'a') + 10;
      Value = Value * 16 + Digit;
      Any = true;
    }
    if (!Any)
      Diags.error(Loc, "\\x used with no following hex digits");
    return Value & 0xffu;
  }
  case '\\': return '\\';
  case '\'': return '\'';
  case '"':  return '"';
  case '?':  return '?';
  default:
    Diags.error(Loc, strFormat("unknown escape sequence '\\%c'", C));
    return static_cast<unsigned>(C);
  }
}

Token Lexer::lexCharConstant(SourceLoc Loc) {
  advance(); // opening quote
  unsigned Value = 0;
  bool Any = false;
  while (!atEnd() && peek() != '\'' && peek() != '\n') {
    char C = advance();
    unsigned ThisChar = static_cast<unsigned char>(C);
    if (C == '\\')
      ThisChar = decodeEscape(Loc);
    // Multi-character constants take the last character (a common
    // implementation-defined choice); we keep it simple.
    Value = ThisChar;
    Any = true;
  }
  if (atEnd() || peek() != '\'')
    Diags.error(Loc, "unterminated character constant");
  else
    advance(); // closing quote
  if (!Any)
    Diags.error(Loc, "empty character constant");
  Token Tok = makeToken(TokenKind::CharLiteral, Loc);
  Tok.Text = strFormat("%u", Value);
  return Tok;
}

Token Lexer::lexStringLiteral(SourceLoc Loc) {
  advance(); // opening quote
  std::string Bytes;
  while (!atEnd() && peek() != '"' && peek() != '\n') {
    char C = advance();
    if (C == '\\')
      Bytes += static_cast<char>(decodeEscape(Loc));
    else
      Bytes += C;
  }
  if (atEnd() || peek() != '"')
    Diags.error(Loc, "unterminated string literal");
  else
    advance(); // closing quote
  Token Tok = makeToken(TokenKind::StringLiteral, Loc);
  Tok.Text = std::move(Bytes);
  return Tok;
}

Token Lexer::lexPunctuator(SourceLoc Loc) {
  char C = advance();
  TokenKind Kind;
  switch (C) {
  case '[': Kind = TokenKind::LBracket; break;
  case ']': Kind = TokenKind::RBracket; break;
  case '(': Kind = TokenKind::LParen; break;
  case ')': Kind = TokenKind::RParen; break;
  case '{': Kind = TokenKind::LBrace; break;
  case '}': Kind = TokenKind::RBrace; break;
  case ';': Kind = TokenKind::Semi; break;
  case ',': Kind = TokenKind::Comma; break;
  case '~': Kind = TokenKind::Tilde; break;
  case '?': Kind = TokenKind::Question; break;
  case ':': Kind = TokenKind::Colon; break;
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      Kind = TokenKind::Ellipsis;
    } else {
      Kind = TokenKind::Period;
    }
    break;
  case '+':
    Kind = match('+')   ? TokenKind::PlusPlus
           : match('=') ? TokenKind::PlusEqual
                        : TokenKind::Plus;
    break;
  case '-':
    Kind = match('-')   ? TokenKind::MinusMinus
           : match('=') ? TokenKind::MinusEqual
           : match('>') ? TokenKind::Arrow
                        : TokenKind::Minus;
    break;
  case '*':
    Kind = match('=') ? TokenKind::StarEqual : TokenKind::Star;
    break;
  case '/':
    Kind = match('=') ? TokenKind::SlashEqual : TokenKind::Slash;
    break;
  case '%':
    Kind = match('=') ? TokenKind::PercentEqual : TokenKind::Percent;
    break;
  case '!':
    Kind = match('=') ? TokenKind::BangEqual : TokenKind::Bang;
    break;
  case '=':
    Kind = match('=') ? TokenKind::EqualEqual : TokenKind::Equal;
    break;
  case '^':
    Kind = match('=') ? TokenKind::CaretEqual : TokenKind::Caret;
    break;
  case '&':
    Kind = match('&')   ? TokenKind::AmpAmp
           : match('=') ? TokenKind::AmpEqual
                        : TokenKind::Amp;
    break;
  case '|':
    Kind = match('|')   ? TokenKind::PipePipe
           : match('=') ? TokenKind::PipeEqual
                        : TokenKind::Pipe;
    break;
  case '<':
    if (match('<'))
      Kind = match('=') ? TokenKind::LessLessEqual : TokenKind::LessLess;
    else
      Kind = match('=') ? TokenKind::LessEqual : TokenKind::Less;
    break;
  case '>':
    if (match('>'))
      Kind = match('=') ? TokenKind::GreaterGreaterEqual
                        : TokenKind::GreaterGreater;
    else
      Kind = match('=') ? TokenKind::GreaterEqual : TokenKind::Greater;
    break;
  case '#':
    Kind = match('#') ? TokenKind::HashHash : TokenKind::Hash;
    break;
  default:
    Diags.error(Loc, strFormat("stray '%c' in program", C));
    // Resynchronize by treating it as a semicolon-ish noise token; emit
    // the next token instead.
    return next();
  }
  return makeToken(Kind, Loc);
}
