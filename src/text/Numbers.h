//===- text/Numbers.h - Numeric literal decoding ---------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes C integer and floating constant spellings. Shared by the
/// preprocessor's #if evaluator and the parser (which additionally uses
/// the radix/suffix information to pick the constant's type per
/// C11 6.4.4.1).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TEXT_NUMBERS_H
#define CUNDEF_TEXT_NUMBERS_H

#include <cstdint>
#include <cstdlib>
#include <string>

namespace cundef {

/// Result of decoding an integer constant spelling.
struct DecodedInt {
  uint64_t Value = 0;
  bool Unsigned = false;   ///< had a u/U suffix
  unsigned LongCount = 0;  ///< number of l/L (0, 1, or 2)
  unsigned Radix = 10;
  bool Overflowed = false; ///< literal does not fit in 64 bits
  bool Valid = true;
};

/// Decodes \p Spelling (e.g. "0x1fUL", "017", "42"). Never fails hard;
/// sets Valid=false on malformed input.
inline DecodedInt decodeIntLiteral(const std::string &Spelling) {
  DecodedInt Result;
  size_t I = 0;
  if (Spelling.size() >= 2 && Spelling[0] == '0' &&
      (Spelling[1] == 'x' || Spelling[1] == 'X')) {
    Result.Radix = 16;
    I = 2;
  } else if (Spelling.size() >= 2 && Spelling[0] == '0' &&
             Spelling[1] >= '0' && Spelling[1] <= '7') {
    Result.Radix = 8;
    I = 1;
  }
  bool AnyDigit = false;
  for (; I < Spelling.size(); ++I) {
    char C = Spelling[I];
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = static_cast<unsigned>(C - 'A') + 10;
    else
      break;
    if (Digit >= Result.Radix) {
      Result.Valid = false;
      return Result;
    }
    AnyDigit = true;
    uint64_t Next = Result.Value * Result.Radix + Digit;
    if (Next / Result.Radix != Result.Value ||
        (Result.Value != 0 && Next <= Result.Value && Digit != 0))
      Result.Overflowed = true;
    Result.Value = Next;
  }
  if (!AnyDigit && !(Spelling == "0")) {
    // "0" alone parsed as octal prefix path never reaches here; treat a
    // bare "0" specially below.
    if (Spelling.empty() || Spelling[0] != '0') {
      Result.Valid = false;
      return Result;
    }
  }
  // Suffixes.
  for (; I < Spelling.size(); ++I) {
    char C = Spelling[I];
    if (C == 'u' || C == 'U')
      Result.Unsigned = true;
    else if (C == 'l' || C == 'L')
      ++Result.LongCount;
    else {
      Result.Valid = false;
      return Result;
    }
  }
  if (Result.LongCount > 2)
    Result.Valid = false;
  return Result;
}

/// Result of decoding a floating constant spelling.
struct DecodedFloat {
  double Value = 0.0;
  bool IsFloat = false; ///< had an f/F suffix
  bool Valid = true;
};

/// Decodes a C floating constant spelling such as "1.5e3f".
inline DecodedFloat decodeFloatLiteral(const std::string &Spelling) {
  DecodedFloat Result;
  std::string Body = Spelling;
  if (!Body.empty()) {
    char Last = Body.back();
    if (Last == 'f' || Last == 'F') {
      Result.IsFloat = true;
      Body.pop_back();
    } else if (Last == 'l' || Last == 'L') {
      Body.pop_back();
    }
  }
  char *End = nullptr;
  Result.Value = std::strtod(Body.c_str(), &End);
  Result.Valid = End && *End == '\0' && !Body.empty();
  return Result;
}

} // namespace cundef

#endif // CUNDEF_TEXT_NUMBERS_H
