//===- text/Preprocessor.h - C preprocessor -------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained C preprocessor: object- and function-like macros
/// (with # stringize and ## paste), #include resolved against a virtual
/// header registry (the libc module registers <stdio.h> etc.; tests can
/// register their own headers), #if/#ifdef/#elif/#else/#endif with full
/// integer constant expressions, #undef, #error, and the __LINE__ /
/// __FILE__ builtins. Its output is the keyword-promoted token stream
/// the parser consumes.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TEXT_PREPROCESSOR_H
#define CUNDEF_TEXT_PREPROCESSOR_H

#include "support/Diagnostics.h"
#include "support/Hash.h"
#include "support/StringInterner.h"
#include "text/Token.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cundef {

/// Maps header names to their contents. There is no real filesystem:
/// every includable file is registered here (standard headers by
/// libc/Headers.cpp, extra files by tests or callers).
class HeaderRegistry {
public:
  void add(std::string Name, std::string Content) {
    Files[std::move(Name)] = std::move(Content);
  }
  const std::string *find(const std::string &Name) const {
    auto It = Files.find(Name);
    return It == Files.end() ? nullptr : &It->second;
  }
  size_t size() const { return Files.size(); }

  /// Content digest of the whole registry (every name and body, in the
  /// map's deterministic order). The translation cache folds this into
  /// its content address, so registering or editing a header — even
  /// after an engine started — invalidates every cached artifact that
  /// could have included it; a mutated registry can never silently
  /// serve stale ASTs. Recomputed per call: registries are a few KB of
  /// standard headers, noise next to one parse, and a cached value
  /// would need its own synchronization story.
  uint64_t fingerprint() const {
    Fnv1a H;
    H.u64(Files.size());
    for (const auto &[Name, Content] : Files) {
      H.str(Name);
      H.str(Content);
    }
    return H.digest();
  }

private:
  std::map<std::string, std::string> Files;
};

/// A macro definition.
struct MacroDef {
  bool FunctionLike = false;
  bool Variadic = false;
  std::vector<Symbol> Params;
  std::vector<Token> Body;
};

class Preprocessor {
public:
  Preprocessor(StringInterner &Interner, DiagnosticEngine &Diags,
               const HeaderRegistry &Headers);

  /// Preprocesses \p Source (named \p FileName for diagnostics) and
  /// returns the fully expanded, keyword-promoted token stream,
  /// terminated by an Eof token.
  std::vector<Token> run(const std::string &Source,
                         const std::string &FileName);

  /// Predefines an object-like macro, as with a -D command line option.
  /// \p Body is lexed as C tokens.
  void define(const std::string &Name, const std::string &Body);

  bool isDefined(const std::string &Name) const;

private:
  /// Lexes a buffer into raw tokens and registers the file name.
  /// Returns the issued file id.
  uint32_t lexBuffer(const std::string &Source, const std::string &Name,
                     std::vector<Token> &Out);

  /// Processes a raw token vector: executes directives, expands macros,
  /// appends surviving tokens to \p Out.
  void processTokens(const std::vector<Token> &Toks, std::vector<Token> &Out,
                     int IncludeDepth);

  /// Handles one directive beginning at Toks[HashIdx]; returns the index
  /// one past the directive's last token (or past the matched #endif for
  /// skipped conditional groups).
  size_t processDirective(const std::vector<Token> &Toks, size_t HashIdx,
                          std::vector<Token> &Out, int IncludeDepth);

  /// Index one past the last token on the line containing Toks[Idx].
  size_t lineEnd(const std::vector<Token> &Toks, size_t Idx) const;

  /// Skips a failed conditional group: returns the index of the next
  /// #elif/#else/#endif at the same nesting depth (pointing at its '#').
  size_t skipConditionalGroup(const std::vector<Token> &Toks, size_t Idx,
                              bool StopAtElse) const;

  /// After a failed #if/#ifdef/#elif group was skipped, \p Idx points at
  /// the '#' of the continuation directive; decides whether to enter it.
  size_t dispatchConditionalContinuation(const std::vector<Token> &Toks,
                                         size_t Idx, std::vector<Token> &Out,
                                         int IncludeDepth);

  /// Macro expansion: expands \p In (whole run of ordinary tokens)
  /// against the current macro table, with \p Hidden names disabled.
  void expandInto(const std::vector<Token> &In, std::set<Symbol> Hidden,
                  std::vector<Token> &Out);

  /// Substitutes arguments into a macro body (handling # and ##).
  std::vector<Token> substitute(const MacroDef &Macro,
                                const std::vector<std::vector<Token>> &Args,
                                SourceLoc ExpansionLoc);

  /// Evaluates a #if controlling expression.
  long long evaluateCondition(std::vector<Token> Line, SourceLoc Loc);

  /// Spelling of \p Tok as it would appear in source (for # and ##).
  std::string spellingOf(const Token &Tok) const;

  /// Re-lexes pasted text into exactly one token if possible.
  bool relexPasted(const std::string &Text, SourceLoc Loc, Token &Out);

  /// Promotes identifier tokens whose spelling is a keyword.
  void promoteKeywords(std::vector<Token> &Toks) const;

  StringInterner &Interner;
  DiagnosticEngine &Diags;
  const HeaderRegistry &Headers;
  std::map<Symbol, MacroDef> Macros;
  uint32_t NextFileId = 1;
  Symbol SymDefined, SymVaArgs, SymLine, SymFile;
  std::string CurrentFileName;
};

} // namespace cundef

#endif // CUNDEF_TEXT_PREPROCESSOR_H
