//===- text/Preprocessor.cpp - C preprocessor -----------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "text/Preprocessor.h"

#include "support/Strings.h"
#include "text/Lexer.h"
#include "text/Numbers.h"

#include <cassert>
#include <unordered_map>

using namespace cundef;

namespace {

/// Precedence-climbing evaluator for #if controlling expressions.
/// Operates over already-expanded tokens; unknown identifiers are 0.
class CondParser {
public:
  CondParser(const std::vector<Token> &Toks, DiagnosticEngine &Diags,
             SourceLoc Loc)
      : Toks(Toks), Diags(Diags), Loc(Loc) {}

  long long parse() {
    long long V = parseTernary();
    if (Pos < Toks.size())
      Diags.error(Loc, "trailing tokens in #if expression");
    return V;
  }

private:
  const Token &peek() const {
    static Token EofTok;
    return Pos < Toks.size() ? Toks[Pos] : EofTok;
  }
  Token take() {
    Token T = peek();
    if (Pos < Toks.size())
      ++Pos;
    return T;
  }
  bool consume(TokenKind K) {
    if (peek().Kind != K)
      return false;
    ++Pos;
    return true;
  }

  long long parseTernary() {
    long long Cond = parseBinary(0);
    if (!consume(TokenKind::Question))
      return Cond;
    long long Then = parseTernary();
    if (!consume(TokenKind::Colon))
      Diags.error(Loc, "expected ':' in #if expression");
    long long Else = parseTernary();
    return Cond ? Then : Else;
  }

  static int precedenceOf(TokenKind K) {
    switch (K) {
    case TokenKind::PipePipe:       return 1;
    case TokenKind::AmpAmp:         return 2;
    case TokenKind::Pipe:           return 3;
    case TokenKind::Caret:          return 4;
    case TokenKind::Amp:            return 5;
    case TokenKind::EqualEqual:
    case TokenKind::BangEqual:      return 6;
    case TokenKind::Less:
    case TokenKind::Greater:
    case TokenKind::LessEqual:
    case TokenKind::GreaterEqual:   return 7;
    case TokenKind::LessLess:
    case TokenKind::GreaterGreater: return 8;
    case TokenKind::Plus:
    case TokenKind::Minus:          return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent:        return 10;
    default:                        return -1;
    }
  }

  long long parseBinary(int MinPrec) {
    long long Lhs = parseUnary();
    while (true) {
      int Prec = precedenceOf(peek().Kind);
      if (Prec < MinPrec || Prec < 0)
        return Lhs;
      TokenKind Op = take().Kind;
      long long Rhs = parseBinary(Prec + 1);
      Lhs = apply(Op, Lhs, Rhs);
    }
  }

  long long apply(TokenKind Op, long long L, long long R) {
    switch (Op) {
    case TokenKind::PipePipe:       return (L || R) ? 1 : 0;
    case TokenKind::AmpAmp:         return (L && R) ? 1 : 0;
    case TokenKind::Pipe:           return L | R;
    case TokenKind::Caret:          return L ^ R;
    case TokenKind::Amp:            return L & R;
    case TokenKind::EqualEqual:     return L == R;
    case TokenKind::BangEqual:      return L != R;
    case TokenKind::Less:           return L < R;
    case TokenKind::Greater:        return L > R;
    case TokenKind::LessEqual:      return L <= R;
    case TokenKind::GreaterEqual:   return L >= R;
    case TokenKind::LessLess:       return R >= 0 && R < 63 ? L << R : 0;
    case TokenKind::GreaterGreater: return R >= 0 && R < 63 ? L >> R : 0;
    case TokenKind::Plus:           return L + R;
    case TokenKind::Minus:          return L - R;
    case TokenKind::Star:           return L * R;
    case TokenKind::Slash:
      if (R == 0) {
        Diags.error(Loc, "division by zero in #if expression");
        return 0;
      }
      return L / R;
    case TokenKind::Percent:
      if (R == 0) {
        Diags.error(Loc, "remainder by zero in #if expression");
        return 0;
      }
      return L % R;
    default:
      return 0;
    }
  }

  long long parseUnary() {
    if (consume(TokenKind::Bang))
      return !parseUnary();
    if (consume(TokenKind::Tilde))
      return ~parseUnary();
    if (consume(TokenKind::Minus))
      return -parseUnary();
    if (consume(TokenKind::Plus))
      return parseUnary();
    return parsePrimary();
  }

  long long parsePrimary() {
    const Token &T = peek();
    if (T.Kind == TokenKind::IntLiteral || T.Kind == TokenKind::CharLiteral) {
      DecodedInt D = decodeIntLiteral(take().Text);
      if (!D.Valid)
        Diags.error(Loc, "malformed integer in #if expression");
      return static_cast<long long>(D.Value);
    }
    if (T.Kind == TokenKind::Identifier) {
      take();
      return 0; // Undefined identifiers evaluate to 0 (C11 6.10.1p4).
    }
    if (consume(TokenKind::LParen)) {
      long long V = parseTernary();
      if (!consume(TokenKind::RParen))
        Diags.error(Loc, "expected ')' in #if expression");
      return V;
    }
    Diags.error(Loc, "malformed #if expression");
    take();
    return 0;
  }

  const std::vector<Token> &Toks;
  DiagnosticEngine &Diags;
  SourceLoc Loc;
  size_t Pos = 0;
};

} // namespace

Preprocessor::Preprocessor(StringInterner &Interner, DiagnosticEngine &Diags,
                           const HeaderRegistry &Headers)
    : Interner(Interner), Diags(Diags), Headers(Headers) {
  SymDefined = Interner.intern("defined");
  SymVaArgs = Interner.intern("__VA_ARGS__");
  SymLine = Interner.intern("__LINE__");
  SymFile = Interner.intern("__FILE__");
  define("__CUNDEF__", "1");
  define("__STDC__", "1");
}

void Preprocessor::define(const std::string &Name, const std::string &Body) {
  DiagnosticEngine Scratch;
  Lexer Lex(Body, /*FileId=*/0, Interner, Scratch);
  MacroDef Def;
  for (Token T = Lex.next(); T.isNot(TokenKind::Eof); T = Lex.next())
    Def.Body.push_back(T);
  Macros[Interner.intern(Name)] = std::move(Def);
}

bool Preprocessor::isDefined(const std::string &Name) const {
  Symbol Sym = Interner.lookup(Name);
  return Sym != NoSymbol && Macros.count(Sym) != 0;
}

uint32_t Preprocessor::lexBuffer(const std::string &Source,
                                 const std::string &Name,
                                 std::vector<Token> &Out) {
  uint32_t FileId = NextFileId++;
  Diags.registerFile(FileId, Name);
  Lexer Lex(Source, FileId, Interner, Diags);
  for (Token T = Lex.next(); T.isNot(TokenKind::Eof); T = Lex.next())
    Out.push_back(T);
  return FileId;
}

std::vector<Token> Preprocessor::run(const std::string &Source,
                                     const std::string &FileName) {
  std::vector<Token> Raw;
  uint32_t FileId = lexBuffer(Source, FileName, Raw);
  CurrentFileName = FileName;
  std::vector<Token> Out;
  processTokens(Raw, Out, /*IncludeDepth=*/0);
  promoteKeywords(Out);
  Token Eof;
  Eof.Kind = TokenKind::Eof;
  if (!Out.empty())
    Eof.Loc = Out.back().Loc;
  else
    Eof.Loc = SourceLoc(FileId, 1, 1);
  Out.push_back(Eof);
  return Out;
}

size_t Preprocessor::lineEnd(const std::vector<Token> &Toks,
                             size_t Idx) const {
  size_t End = Idx + 1;
  while (End < Toks.size() && !Toks[End].AtLineStart)
    ++End;
  return End;
}

void Preprocessor::processTokens(const std::vector<Token> &Toks,
                                 std::vector<Token> &Out, int IncludeDepth) {
  size_t I = 0;
  std::vector<Token> Run; // ordinary tokens awaiting expansion
  auto FlushRun = [&] {
    if (Run.empty())
      return;
    expandInto(Run, {}, Out);
    Run.clear();
  };
  while (I < Toks.size()) {
    const Token &T = Toks[I];
    if (T.is(TokenKind::Hash) && T.AtLineStart) {
      FlushRun();
      I = processDirective(Toks, I, Out, IncludeDepth);
      continue;
    }
    Run.push_back(T);
    ++I;
  }
  FlushRun();
}

size_t Preprocessor::skipConditionalGroup(const std::vector<Token> &Toks,
                                          size_t Idx,
                                          bool StopAtElse) const {
  // Idx points just past the failed directive's line. Scan for the
  // matching #elif/#else (when StopAtElse) or #endif.
  int Depth = 0;
  size_t I = Idx;
  while (I < Toks.size()) {
    const Token &T = Toks[I];
    if (T.is(TokenKind::Hash) && T.AtLineStart && I + 1 < Toks.size() &&
        Toks[I + 1].is(TokenKind::Identifier)) {
      const std::string &Name = Interner.str(Toks[I + 1].Sym);
      if (Name == "if" || Name == "ifdef" || Name == "ifndef") {
        ++Depth;
      } else if (Name == "endif") {
        if (Depth == 0)
          return I;
        --Depth;
      } else if (Depth == 0 && StopAtElse &&
                 (Name == "else" || Name == "elif")) {
        return I;
      }
      I = lineEnd(Toks, I);
      continue;
    }
    ++I;
  }
  return I;
}

size_t Preprocessor::processDirective(const std::vector<Token> &Toks,
                                      size_t HashIdx, std::vector<Token> &Out,
                                      int IncludeDepth) {
  size_t End = lineEnd(Toks, HashIdx);
  SourceLoc Loc = Toks[HashIdx].Loc;
  // A bare '#' is a null directive.
  if (HashIdx + 1 >= End)
    return End;
  const Token &NameTok = Toks[HashIdx + 1];
  if (NameTok.isNot(TokenKind::Identifier)) {
    Diags.error(Loc, "malformed preprocessor directive");
    return End;
  }
  const std::string &Name = Interner.str(NameTok.Sym);
  std::vector<Token> Line(Toks.begin() + HashIdx + 2, Toks.begin() + End);

  if (Name == "define") {
    if (Line.empty() || Line[0].isNot(TokenKind::Identifier)) {
      Diags.error(Loc, "macro name missing in #define");
      return End;
    }
    MacroDef Def;
    size_t BodyStart = 1;
    if (Line.size() > 1 && Line[1].is(TokenKind::LParen) &&
        !Line[1].LeadingSpace) {
      Def.FunctionLike = true;
      size_t P = 2;
      if (P < Line.size() && Line[P].is(TokenKind::RParen)) {
        ++P;
      } else {
        while (P < Line.size()) {
          if (Line[P].is(TokenKind::Ellipsis)) {
            Def.Variadic = true;
            ++P;
          } else if (Line[P].is(TokenKind::Identifier)) {
            Def.Params.push_back(Line[P].Sym);
            ++P;
          } else {
            Diags.error(Loc, "malformed macro parameter list");
            return End;
          }
          if (P < Line.size() && Line[P].is(TokenKind::Comma)) {
            ++P;
            continue;
          }
          break;
        }
        if (P >= Line.size() || Line[P].isNot(TokenKind::RParen)) {
          Diags.error(Loc, "expected ')' in macro parameter list");
          return End;
        }
        ++P;
      }
      BodyStart = P;
    }
    Def.Body.assign(Line.begin() + BodyStart, Line.end());
    Macros[Line[0].Sym] = std::move(Def);
    return End;
  }

  if (Name == "undef") {
    if (Line.empty() || Line[0].isNot(TokenKind::Identifier))
      Diags.error(Loc, "macro name missing in #undef");
    else
      Macros.erase(Line[0].Sym);
    return End;
  }

  if (Name == "include") {
    if (IncludeDepth > 32) {
      Diags.error(Loc, "#include nested too deeply");
      return End;
    }
    std::string HeaderName;
    if (!Line.empty() && Line[0].is(TokenKind::StringLiteral)) {
      HeaderName = Line[0].Text;
    } else if (!Line.empty() && Line[0].is(TokenKind::Less)) {
      for (size_t I = 1; I < Line.size() && Line[I].isNot(TokenKind::Greater);
           ++I)
        HeaderName += spellingOf(Line[I]);
    } else {
      Diags.error(Loc, "expected \"FILE\" or <FILE> after #include");
      return End;
    }
    const std::string *Content = Headers.find(HeaderName);
    if (!Content) {
      Diags.error(Loc, strFormat("header '%s' not found", HeaderName.c_str()));
      return End;
    }
    std::vector<Token> HeaderToks;
    lexBuffer(*Content, HeaderName, HeaderToks);
    std::string SavedName = CurrentFileName;
    CurrentFileName = HeaderName;
    processTokens(HeaderToks, Out, IncludeDepth + 1);
    CurrentFileName = SavedName;
    return End;
  }

  if (Name == "ifdef" || Name == "ifndef") {
    bool Defined =
        !Line.empty() && Line[0].is(TokenKind::Identifier) &&
        Macros.count(Line[0].Sym) != 0;
    bool Taken = (Name == "ifdef") ? Defined : !Defined;
    if (Taken)
      return End; // fall into the group; #endif handled when reached
    size_t Next = skipConditionalGroup(Toks, End, /*StopAtElse=*/true);
    return dispatchConditionalContinuation(Toks, Next, Out, IncludeDepth);
  }

  if (Name == "if") {
    long long V = evaluateCondition(Line, Loc);
    if (V != 0)
      return End;
    size_t Next = skipConditionalGroup(Toks, End, /*StopAtElse=*/true);
    return dispatchConditionalContinuation(Toks, Next, Out, IncludeDepth);
  }

  if (Name == "elif" || Name == "else") {
    // Reached from inside a taken group: skip to #endif.
    size_t EndifIdx = skipConditionalGroup(Toks, End, /*StopAtElse=*/false);
    return EndifIdx < Toks.size() ? lineEnd(Toks, EndifIdx) : EndifIdx;
  }

  if (Name == "endif")
    return End;

  if (Name == "error") {
    std::string Msg;
    for (const Token &T : Line) {
      if (!Msg.empty())
        Msg += ' ';
      Msg += spellingOf(T);
    }
    Diags.error(Loc, strFormat("#error %s", Msg.c_str()));
    return End;
  }

  if (Name == "pragma" || Name == "line")
    return End; // accepted and ignored

  Diags.error(Loc, strFormat("unknown directive #%s", Name.c_str()));
  return End;
}

size_t Preprocessor::dispatchConditionalContinuation(
    const std::vector<Token> &Toks, size_t Idx, std::vector<Token> &Out,
    int IncludeDepth) {
  // Idx points at the '#' of #elif/#else/#endif (or past the end).
  if (Idx >= Toks.size())
    return Idx;
  size_t End = lineEnd(Toks, Idx);
  const std::string &Name = Interner.str(Toks[Idx + 1].Sym);
  if (Name == "endif")
    return End;
  if (Name == "else")
    return End; // take the else group; its #endif handled when reached
  if (Name == "elif") {
    std::vector<Token> Line(Toks.begin() + Idx + 2, Toks.begin() + End);
    long long V = evaluateCondition(Line, Toks[Idx].Loc);
    if (V != 0)
      return End;
    size_t Next = skipConditionalGroup(Toks, End, /*StopAtElse=*/true);
    return dispatchConditionalContinuation(Toks, Next, Out, IncludeDepth);
  }
  return End;
}

long long Preprocessor::evaluateCondition(std::vector<Token> Line,
                                          SourceLoc Loc) {
  // Replace defined X / defined(X) before macro expansion.
  std::vector<Token> Replaced;
  for (size_t I = 0; I < Line.size(); ++I) {
    if (Line[I].is(TokenKind::Identifier) && Line[I].Sym == SymDefined) {
      bool Defined = false;
      size_t J = I + 1;
      bool Paren = J < Line.size() && Line[J].is(TokenKind::LParen);
      if (Paren)
        ++J;
      if (J < Line.size() && Line[J].is(TokenKind::Identifier)) {
        Defined = Macros.count(Line[J].Sym) != 0;
        ++J;
      } else {
        Diags.error(Loc, "operator 'defined' requires an identifier");
      }
      if (Paren) {
        if (J < Line.size() && Line[J].is(TokenKind::RParen))
          ++J;
        else
          Diags.error(Loc, "expected ')' after 'defined('");
      }
      Token T;
      T.Kind = TokenKind::IntLiteral;
      T.Loc = Line[I].Loc;
      T.Text = Defined ? "1" : "0";
      Replaced.push_back(T);
      I = J - 1;
    } else {
      Replaced.push_back(Line[I]);
    }
  }
  std::vector<Token> Expanded;
  expandInto(Replaced, {}, Expanded);
  CondParser Parser(Expanded, Diags, Loc);
  return Parser.parse();
}

std::string Preprocessor::spellingOf(const Token &Tok) const {
  switch (Tok.Kind) {
  case TokenKind::Identifier:
    return Interner.str(Tok.Sym);
  case TokenKind::IntLiteral:
  case TokenKind::FloatLiteral:
  case TokenKind::CharLiteral:
    return Tok.Text;
  case TokenKind::StringLiteral:
    return "\"" + escapeForDisplay(Tok.Text) + "\"";
  default: {
    std::string Name = tokenKindName(Tok.Kind);
    // Punctuator names are quoted like "'+='": strip the quotes.
    if (Name.size() >= 2 && Name.front() == '\'' && Name.back() == '\'')
      return Name.substr(1, Name.size() - 2);
    return Name;
  }
  }
}

bool Preprocessor::relexPasted(const std::string &Text, SourceLoc Loc,
                               Token &Out) {
  DiagnosticEngine Scratch;
  Lexer Lex(Text, Loc.File, Interner, Scratch);
  Token First = Lex.next();
  Token Second = Lex.next();
  if (Scratch.hasErrors() || First.is(TokenKind::Eof) ||
      Second.isNot(TokenKind::Eof))
    return false;
  First.Loc = Loc;
  Out = First;
  return true;
}

std::vector<Token>
Preprocessor::substitute(const MacroDef &Macro,
                         const std::vector<std::vector<Token>> &Args,
                         SourceLoc ExpansionLoc) {
  auto ParamIndex = [&](Symbol Sym) -> int {
    for (size_t I = 0; I < Macro.Params.size(); ++I)
      if (Macro.Params[I] == Sym)
        return static_cast<int>(I);
    if (Macro.Variadic && Sym == SymVaArgs)
      return static_cast<int>(Macro.Params.size());
    return -1;
  };

  std::vector<Token> Result;
  const std::vector<Token> &Body = Macro.Body;
  for (size_t I = 0; I < Body.size(); ++I) {
    const Token &T = Body[I];
    // Stringize: # param
    if (T.is(TokenKind::Hash) && I + 1 < Body.size() &&
        Body[I + 1].is(TokenKind::Identifier) &&
        ParamIndex(Body[I + 1].Sym) >= 0) {
      int Idx = ParamIndex(Body[I + 1].Sym);
      std::string Text;
      if (static_cast<size_t>(Idx) < Args.size())
        for (const Token &A : Args[Idx]) {
          if (!Text.empty() && A.LeadingSpace)
            Text += ' ';
          Text += spellingOf(A);
        }
      Token Str;
      Str.Kind = TokenKind::StringLiteral;
      Str.Loc = ExpansionLoc;
      Str.Text = Text;
      Result.push_back(Str);
      ++I;
      continue;
    }
    // Paste: A ## B (operate on already-substituted left token).
    if (I + 1 < Body.size() && Body[I + 1].is(TokenKind::HashHash)) {
      // Collect left fragment.
      std::vector<Token> Left;
      int Idx = T.is(TokenKind::Identifier) ? ParamIndex(T.Sym) : -1;
      if (Idx >= 0 && static_cast<size_t>(Idx) < Args.size())
        Left = Args[Idx];
      else
        Left.push_back(T);
      size_t J = I + 2;
      if (J >= Body.size()) {
        Result.insert(Result.end(), Left.begin(), Left.end());
        break;
      }
      const Token &RightTok = Body[J];
      std::vector<Token> Right;
      int RIdx =
          RightTok.is(TokenKind::Identifier) ? ParamIndex(RightTok.Sym) : -1;
      if (RIdx >= 0 && static_cast<size_t>(RIdx) < Args.size())
        Right = Args[RIdx];
      else
        Right.push_back(RightTok);
      // Paste last-of-left with first-of-right.
      std::string Pasted;
      if (!Left.empty())
        Pasted += spellingOf(Left.back());
      if (!Right.empty())
        Pasted += spellingOf(Right.front());
      Token Joined;
      if (!Pasted.empty() && relexPasted(Pasted, ExpansionLoc, Joined)) {
        if (!Left.empty())
          Result.insert(Result.end(), Left.begin(), Left.end() - 1);
        Result.push_back(Joined);
        if (!Right.empty())
          Result.insert(Result.end(), Right.begin() + 1, Right.end());
      } else {
        Diags.error(ExpansionLoc, "## produced an invalid token");
      }
      I = J;
      continue;
    }
    // Ordinary parameter: replace with (recursively pre-expanded) arg.
    if (T.is(TokenKind::Identifier)) {
      int Idx = ParamIndex(T.Sym);
      if (Idx >= 0) {
        std::vector<Token> Expanded;
        if (static_cast<size_t>(Idx) < Args.size())
          expandInto(Args[Idx], {}, Expanded);
        Result.insert(Result.end(), Expanded.begin(), Expanded.end());
        continue;
      }
    }
    Result.push_back(T);
  }
  for (Token &T : Result)
    T.Loc = ExpansionLoc;
  return Result;
}

void Preprocessor::expandInto(const std::vector<Token> &In,
                              std::set<Symbol> Hidden,
                              std::vector<Token> &Out) {
  for (size_t I = 0; I < In.size(); ++I) {
    const Token &T = In[I];
    if (T.isNot(TokenKind::Identifier)) {
      Out.push_back(T);
      continue;
    }
    // Builtins.
    if (T.Sym == SymLine) {
      Token L;
      L.Kind = TokenKind::IntLiteral;
      L.Loc = T.Loc;
      L.Text = strFormat("%u", T.Loc.Line);
      Out.push_back(L);
      continue;
    }
    if (T.Sym == SymFile) {
      Token F;
      F.Kind = TokenKind::StringLiteral;
      F.Loc = T.Loc;
      F.Text = CurrentFileName;
      Out.push_back(F);
      continue;
    }
    auto It = Macros.find(T.Sym);
    if (It == Macros.end() || Hidden.count(T.Sym)) {
      Out.push_back(T);
      continue;
    }
    const MacroDef &Macro = It->second;
    if (!Macro.FunctionLike) {
      std::set<Symbol> NewHidden = Hidden;
      NewHidden.insert(T.Sym);
      std::vector<Token> Subst = substitute(Macro, {}, T.Loc);
      expandInto(Subst, NewHidden, Out);
      continue;
    }
    // Function-like: require '(' as the next token of this sequence.
    if (I + 1 >= In.size() || In[I + 1].isNot(TokenKind::LParen)) {
      Out.push_back(T);
      continue;
    }
    // Parse arguments.
    size_t J = I + 2;
    std::vector<std::vector<Token>> Args;
    std::vector<Token> Current;
    int Depth = 0;
    bool Closed = false;
    for (; J < In.size(); ++J) {
      const Token &A = In[J];
      if (A.is(TokenKind::LParen)) {
        ++Depth;
        Current.push_back(A);
      } else if (A.is(TokenKind::RParen)) {
        if (Depth == 0) {
          Closed = true;
          break;
        }
        --Depth;
        Current.push_back(A);
      } else if (A.is(TokenKind::Comma) && Depth == 0 &&
                 !(Macro.Variadic && Args.size() >= Macro.Params.size())) {
        // Commas inside __VA_ARGS__ (once the named parameters are
        // filled) belong to the argument; all others separate args.
        Args.push_back(Current);
        Current.clear();
      } else {
        Current.push_back(A);
      }
    }
    if (!Closed) {
      Diags.error(T.Loc, "unterminated macro invocation");
      Out.push_back(T);
      continue;
    }
    if (!Current.empty() || !Args.empty() || !Macro.Params.empty() ||
        Macro.Variadic)
      Args.push_back(Current);
    if (Args.size() < Macro.Params.size())
      Args.resize(Macro.Params.size());
    std::set<Symbol> NewHidden = Hidden;
    NewHidden.insert(T.Sym);
    std::vector<Token> Subst = substitute(Macro, Args, T.Loc);
    expandInto(Subst, NewHidden, Out);
    I = J; // skip past ')'
  }
}

void Preprocessor::promoteKeywords(std::vector<Token> &Toks) const {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"break", TokenKind::KwBreak},       {"case", TokenKind::KwCase},
      {"char", TokenKind::KwChar},         {"const", TokenKind::KwConst},
      {"continue", TokenKind::KwContinue}, {"default", TokenKind::KwDefault},
      {"do", TokenKind::KwDo},             {"double", TokenKind::KwDouble},
      {"else", TokenKind::KwElse},         {"enum", TokenKind::KwEnum},
      {"extern", TokenKind::KwExtern},     {"float", TokenKind::KwFloat},
      {"for", TokenKind::KwFor},           {"goto", TokenKind::KwGoto},
      {"if", TokenKind::KwIf},             {"inline", TokenKind::KwInline},
      {"int", TokenKind::KwInt},           {"long", TokenKind::KwLong},
      {"register", TokenKind::KwRegister}, {"restrict", TokenKind::KwRestrict},
      {"return", TokenKind::KwReturn},     {"short", TokenKind::KwShort},
      {"signed", TokenKind::KwSigned},     {"sizeof", TokenKind::KwSizeof},
      {"static", TokenKind::KwStatic},     {"struct", TokenKind::KwStruct},
      {"switch", TokenKind::KwSwitch},     {"typedef", TokenKind::KwTypedef},
      {"union", TokenKind::KwUnion},       {"unsigned", TokenKind::KwUnsigned},
      {"void", TokenKind::KwVoid},         {"volatile", TokenKind::KwVolatile},
      {"while", TokenKind::KwWhile},       {"_Bool", TokenKind::KwBool},
  };
  for (Token &T : Toks) {
    if (T.isNot(TokenKind::Identifier))
      continue;
    auto It = Keywords.find(Interner.str(T.Sym));
    if (It != Keywords.end())
      T.Kind = It->second;
  }
}
