//===- text/Token.h - C token model ---------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the C lexer. The lexer emits every word as
/// tok::Identifier; the preprocessor maps reserved words to keyword kinds
/// after macro expansion, because macro names may shadow keywords during
/// preprocessing.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TEXT_TOKEN_H
#define CUNDEF_TEXT_TOKEN_H

#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <string>

namespace cundef {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,    // includes character constants (Text keeps spelling)
  FloatLiteral,
  CharLiteral,
  StringLiteral, // Text holds the *decoded* bytes, without quotes

  // Punctuators.
  LBracket,   // [
  RBracket,   // ]
  LParen,     // (
  RParen,     // )
  LBrace,     // {
  RBrace,     // }
  Period,     // .
  Arrow,      // ->
  PlusPlus,   // ++
  MinusMinus, // --
  Amp,        // &
  Star,       // *
  Plus,       // +
  Minus,      // -
  Tilde,      // ~
  Bang,       // !
  Slash,      // /
  Percent,    // %
  LessLess,   // <<
  GreaterGreater, // >>
  Less,       // <
  Greater,    // >
  LessEqual,  // <=
  GreaterEqual, // >=
  EqualEqual, // ==
  BangEqual,  // !=
  Caret,      // ^
  Pipe,       // |
  AmpAmp,     // &&
  PipePipe,   // ||
  Question,   // ?
  Colon,      // :
  Semi,       // ;
  Ellipsis,   // ...
  Equal,      // =
  StarEqual,  // *=
  SlashEqual, // /=
  PercentEqual, // %=
  PlusEqual,  // +=
  MinusEqual, // -=
  LessLessEqual,       // <<=
  GreaterGreaterEqual, // >>=
  AmpEqual,   // &=
  CaretEqual, // ^=
  PipeEqual,  // |=
  Comma,      // ,
  Hash,       // #
  HashHash,   // ##

  // Keywords (produced only by the preprocessor's keyword pass).
  KwBreak,
  KwCase,
  KwChar,
  KwConst,
  KwContinue,
  KwDefault,
  KwDo,
  KwDouble,
  KwElse,
  KwEnum,
  KwExtern,
  KwFloat,
  KwFor,
  KwGoto,
  KwIf,
  KwInline,
  KwInt,
  KwLong,
  KwRegister,
  KwRestrict,
  KwReturn,
  KwShort,
  KwSigned,
  KwSizeof,
  KwStatic,
  KwStruct,
  KwSwitch,
  KwTypedef,
  KwUnion,
  KwUnsigned,
  KwVoid,
  KwVolatile,
  KwWhile,
  KwBool, // _Bool
};

/// Returns a human-readable name for \p Kind ("identifier", "'+='", ...).
const char *tokenKindName(TokenKind Kind);

/// A single C token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Interned name for identifiers/keywords; NoSymbol otherwise.
  Symbol Sym = NoSymbol;
  /// Spelling for literals. For StringLiteral this is the decoded byte
  /// content (escape sequences already processed, no quotes).
  std::string Text;
  /// True when this token is the first on its line (pre-expansion).
  bool AtLineStart = false;
  /// True when whitespace preceded this token.
  bool LeadingSpace = false;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace cundef

#endif // CUNDEF_TEXT_TOKEN_H
