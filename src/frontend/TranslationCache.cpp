//===- frontend/TranslationCache.cpp - Content-addressed artifacts -------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "frontend/TranslationCache.h"

#include <cassert>

using namespace cundef;

namespace {

/// Largest power of two <= N (shard indexing masks the key hash).
unsigned powerOfTwoAtMost(unsigned N) {
  unsigned P = 1;
  while (P * 2 <= N)
    P *= 2;
  return P;
}

/// Shard count for a capacity: power of two, never more shards than
/// capacity (each shard holds at least one entry).
unsigned shardCountFor(unsigned Capacity, unsigned Requested) {
  if (Capacity == 0)
    return 1;
  return powerOfTwoAtMost(std::max(1u, std::min(Requested, Capacity)));
}

} // namespace

TranslationCache::TranslationCache(unsigned Capacity, unsigned ShardCount)
    : Capacity(Capacity),
      PerShardCapacity(Capacity == 0
                           ? 0
                           : std::max(1u, Capacity / shardCountFor(
                                              Capacity, ShardCount))),
      Shards(shardCountFor(Capacity, ShardCount)) {}

CompiledProgramRef TranslationCache::getOrCompile(
    const TranslationKey &Key,
    const std::function<CompiledProgramRef()> &Compile, bool *WasHit) {
  if (!enabled()) {
    if (WasHit)
      *WasHit = false;
    return Compile();
  }

  Shard &S = shardFor(Key);
  std::promise<CompiledProgramRef> Mine;
  {
    std::unique_lock<std::mutex> Lock(S.Mu);
    auto It = S.Entries.find(Key);
    if (It != S.Entries.end()) {
      if (It->second.Done) {
        // Ready hit: refresh recency, serve the shared artifact. Done
        // is published only after set_value (below), so this get()
        // genuinely never blocks under the shard lock.
        S.Lru.splice(S.Lru.end(), S.Lru, It->second.LruIt);
        CompiledProgramRef Art = It->second.Ready.get();
        Lock.unlock();
        bump(&Counters::Hits);
        if (WasHit)
          *WasHit = true;
        return Art;
      }
      // Someone is compiling this key right now: join their flight and
      // block outside all locks.
      std::shared_future<CompiledProgramRef> Flight = It->second.Ready;
      Lock.unlock();
      bump(&Counters::InflightJoins);
      if (WasHit)
        *WasHit = true;
      return Flight.get();
    }
    // First caller: claim the key with an in-flight entry. It is not
    // in the LRU list, so it is pinned — eviction cannot drop a
    // compile that concurrent callers are waiting on.
    Entry &E = S.Entries[Key];
    E.Ready = Mine.get_future().share();
    E.Done = false;
  }
  bump(&Counters::Misses);

  // The compile runs outside every cache lock: distinct keys never
  // serialize behind each other, and joiners block on the future, not
  // on a mutex we hold.
  CompiledProgramRef Art;
  try {
    Art = Compile();
  } catch (...) {
    // A throwing compile (OOM, realistically) must not poison the key:
    // drop the in-flight entry so later lookups retry, hand joiners
    // the exception through the future, and rethrow to our caller.
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Entries.erase(Key);
    }
    Mine.set_exception(std::current_exception());
    throw;
  }
  assert(Art && "frontend must always produce an artifact");

  // Fulfill the future BEFORE publishing Done: a lookup that sees
  // Done==true may get() under the shard lock, so the value must
  // already be there (a lookup racing into the window between
  // set_value and Done just takes the join path and returns at once).
  Mine.set_value(Art);

  unsigned Evicted = 0;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Entries.find(Key);
    assert(It != S.Entries.end() && "in-flight entries are pinned");
    It->second.Done = true;
    It->second.LruIt = S.Lru.insert(S.Lru.end(), Key);
    ++S.DoneCount;
    // LRU bound: evict the coldest *ready* entries. Dropping the
    // cache's reference is always safe — jobs holding the artifact
    // keep it alive.
    while (S.DoneCount > PerShardCapacity) {
      const TranslationKey Victim = S.Lru.front();
      S.Lru.pop_front();
      S.Entries.erase(Victim);
      --S.DoneCount;
      ++Evicted;
    }
  }
  if (Evicted)
    Stats.Evictions.fetch_add(Evicted, std::memory_order_relaxed);
  if (WasHit)
    *WasHit = false;
  return Art;
}

size_t TranslationCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.DoneCount;
  }
  return N;
}

TranslationCacheStats TranslationCache::stats() const {
  TranslationCacheStats Out;
  Out.Lookups = Stats.Lookups.load(std::memory_order_relaxed);
  Out.Hits = Stats.Hits.load(std::memory_order_relaxed);
  Out.Misses = Stats.Misses.load(std::memory_order_relaxed);
  Out.InflightJoins = Stats.InflightJoins.load(std::memory_order_relaxed);
  Out.Evictions = Stats.Evictions.load(std::memory_order_relaxed);
  return Out;
}
