//===- frontend/Frontend.h - The frontend pipeline --------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frontend half of the kcc pipeline as a standalone layer:
/// preprocess → lex → parse → sema → static UB checks, producing an
/// immutable, shareable CompiledProgram. Extracted from the engine
/// (driver/Engine.cpp used to run this inline in submit()) so that
///
///  * the artifact has exactly one producer, content-addressed by
///    translationKeyFor — the TranslationCache's contract that equal
///    keys mean interchangeable artifacts holds by construction;
///  * compilation can run on any thread (engine frontend workers, the
///    compile-only test entry points) against a const HeaderRegistry.
///
/// Everything the output depends on is either in the key's inputs
/// (source bytes, unit name, TargetConfig, static-checks flag, header
/// registry) or deterministic (the parser and sema have no other
/// inputs); MachineOptions never reach the frontend, so one artifact
/// serves submissions that differ only in machine semantics, order
/// policy, or search configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_FRONTEND_FRONTEND_H
#define CUNDEF_FRONTEND_FRONTEND_H

#include "frontend/CompiledProgram.h"
#include "types/TargetConfig.h"

#include <string>

namespace cundef {

class HeaderRegistry;

/// The frontend's configuration surface: the subset of an
/// AnalysisRequest that can change what compilation produces.
struct FrontendOptions {
  TargetConfig Target;
  /// Run the static undefinedness checker (kcc's compile-time half).
  bool StaticChecks = true;
  /// Run the flow-sensitive static layer (static/FlowChecker.h) on top
  /// of the syntactic checks: CFG + dataflow domains, producing must
  /// findings (part of the verdict) and may hints (triage only). Only
  /// consulted when StaticChecks is on.
  bool FlowChecks = true;
};

/// Digest of every implementation-defined parameter (type sizes,
/// char signedness, shift semantics): sema layouts and static-check
/// verdicts depend on all of them.
uint64_t targetConfigFingerprint(const TargetConfig &Target);

/// The content address compileTranslationUnit would compile \p Source
/// under. \p HeadersFingerprint comes from
/// HeaderRegistry::fingerprint() — callers hash the registry once per
/// submission, not once per key component.
TranslationKey translationKeyFor(const FrontendOptions &Opts,
                                 const std::string &Source,
                                 const std::string &Name,
                                 uint64_t HeadersFingerprint);

/// Runs the whole frontend pipeline and freezes the result. Pure:
/// equal inputs produce interchangeable artifacts (the cache relies on
/// it). Thread-safe for concurrent calls as long as \p Headers is not
/// mutated concurrently (the engine's documented registry contract).
/// \p PrecomputedKey, when given, is stamped onto the artifact —
/// callers that addressed the cache pass theirs, so the stamped key IS
/// the cache key. Without one the artifact's key stays zero: uncached
/// compiles never pay the source/registry hashing pass.
CompiledProgramRef
compileTranslationUnit(const FrontendOptions &Opts, const std::string &Source,
                       const std::string &Name, const HeaderRegistry &Headers,
                       const TranslationKey *PrecomputedKey = nullptr);

} // namespace cundef

#endif // CUNDEF_FRONTEND_FRONTEND_H
