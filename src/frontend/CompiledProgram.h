//===- frontend/CompiledProgram.h - Immutable translation artifacts -*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immutable product of the frontend pipeline (preprocess → lex →
/// parse → sema → static UB checks): one translation unit's interner,
/// AST, compile-time findings, and rendered diagnostics, frozen after
/// construction and always held behind
/// `std::shared_ptr<const CompiledProgram>`.
///
/// Immutability is what makes the artifact *shareable*: every machine
/// run reads the AST through `const AstContext &` (the interner and
/// type context are only mutated during the frontend pass), so one
/// artifact can be searched by any number of concurrent jobs — within
/// one program's parallel order search, across programs on a shared
/// worker pool, and across submissions via the engine-wide
/// TranslationCache (frontend/TranslationCache.h), which deduplicates
/// identical translation units by content address (TranslationKey).
///
/// Lifetime: whoever holds the shared_ptr keeps the arena alive. The
/// cache holds one reference; every in-flight job holds its own; the
/// engine's graveyard holds one until the worker pool is provably idle
/// (driver/Engine.cpp's lifetime model). Eviction from the cache can
/// therefore never free an AST a machine is still stepping over.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_FRONTEND_COMPILEDPROGRAM_H
#define CUNDEF_FRONTEND_COMPILEDPROGRAM_H

#include "ast/Ast.h"
#include "support/StringInterner.h"
#include "ub/Report.h"

#include <memory>
#include <string>
#include <vector>

namespace cundef {

/// Content address of one frontend run: two independent 64-bit FNV-1a
/// digests (collision odds are negligible at service scales). Two
/// submissions with equal keys would produce byte-identical artifacts,
/// so the cache may hand both the same CompiledProgram.
struct TranslationKey {
  /// Digest of the translation unit's name and source bytes. The name
  /// participates because diagnostics and UB reports embed it — two
  /// submissions of identical source under different names must not
  /// share rendered output.
  uint64_t SourceHash = 0;
  /// Digest of everything else the frontend's output depends on: the
  /// TargetConfig (type sizes steer sema and static checks), the
  /// static-checks flag, and the header-registry fingerprint (a header
  /// edit must invalidate cached artifacts that #included it — or
  /// could have).
  uint64_t ContextHash = 0;

  bool operator==(const TranslationKey &O) const {
    return SourceHash == O.SourceHash && ContextHash == O.ContextHash;
  }
  bool operator!=(const TranslationKey &O) const { return !(*this == O); }
};

/// One compiled translation unit. Constructed only by
/// compileTranslationUnit (frontend/Frontend.h); immutable afterwards.
class CompiledProgram {
public:
  /// The content address this artifact was compiled under, or the
  /// all-zero key when it was compiled outside the translation cache
  /// (no address was ever derived — see frontend/Frontend.h).
  const TranslationKey &key() const { return Key; }
  /// False on preprocess/parse/sema errors; errors() has the rendering.
  bool ok() const { return Ok; }
  /// Rendered diagnostics (also non-fatal ones when ok()).
  const std::string &errors() const { return Errors; }
  /// The static half of kcc's verdict (paper section 5.2.1 rows):
  /// syntactic-checker findings plus flow-layer *must* findings.
  const std::vector<UbReport> &staticUb() const { return StaticUb; }
  /// Flow-layer *may* findings: triage hints for the dynamic search,
  /// never part of the verdict (Verdict == FindingVerdict::May).
  const std::vector<UbReport> &staticHints() const { return StaticHints; }
  /// Whether parsing got far enough to build an AST (preprocess
  /// failures stop before the AstContext exists).
  bool hasAst() const { return Ast != nullptr; }
  /// The immutable AST. Everything downstream — machines, searches,
  /// printers — reads through this const reference; one artifact may
  /// be under any number of concurrent searches.
  const AstContext &ast() const { return *Ast; }
  const StringInterner &interner() const { return *Interner; }
  /// Wall time of the frontend pass that built this artifact, in
  /// microseconds (the cost a cache hit saves).
  double frontendMicros() const { return FrontendMicros; }

private:
  friend class FrontendPipeline;
  CompiledProgram() = default;

  TranslationKey Key;
  std::unique_ptr<StringInterner> Interner;
  std::unique_ptr<AstContext> Ast;
  std::vector<UbReport> StaticUb;
  std::vector<UbReport> StaticHints;
  std::string Errors;
  bool Ok = false;
  double FrontendMicros = 0.0;
};

/// How artifacts travel: shared, immutable, reference-counted.
using CompiledProgramRef = std::shared_ptr<const CompiledProgram>;

} // namespace cundef

#endif // CUNDEF_FRONTEND_COMPILEDPROGRAM_H
