//===- frontend/Frontend.cpp - The frontend pipeline ---------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "libc/Builtins.h"
#include "parse/Parser.h"
#include "sema/Sema.h"
#include "support/Hash.h"
#include "static/FlowChecker.h"
#include "text/Preprocessor.h"
#include "ub/StaticChecks.h"

#include <chrono>

using namespace cundef;

uint64_t cundef::targetConfigFingerprint(const TargetConfig &T) {
  Fnv1a H;
  H.u32(T.ShortSize);
  H.u32(T.IntSize);
  H.u32(T.LongSize);
  H.u32(T.LongLongSize);
  H.u32(T.PointerSize);
  H.u32(T.FloatSize);
  H.u32(T.DoubleSize);
  H.u32(T.BoolSize);
  H.u32(T.MaxAlign);
  H.u8(T.CharIsSigned ? 1 : 0);
  H.u8(T.ArithmeticRightShift ? 1 : 0);
  return H.digest();
}

TranslationKey cundef::translationKeyFor(const FrontendOptions &Opts,
                                         const std::string &Source,
                                         const std::string &Name,
                                         uint64_t HeadersFingerprint) {
  TranslationKey Key;
  // Length-prefixed fields (Fnv1a::str) so ("ab", "c") never collides
  // with ("a", "bc").
  Fnv1a Src;
  Src.str(Name);
  Src.str(Source);
  Key.SourceHash = Src.digest();

  Fnv1a Ctx;
  Ctx.u64(targetConfigFingerprint(Opts.Target));
  Ctx.u8(Opts.StaticChecks ? 1 : 0);
  Ctx.u8(Opts.StaticChecks && Opts.FlowChecks ? 1 : 0);
  Ctx.u64(HeadersFingerprint);
  Key.ContextHash = Ctx.digest();
  return Key;
}

namespace cundef {

/// The one producer of CompiledProgram (its friend): assembles the
/// artifact mutably, then releases it as shared-const.
class FrontendPipeline {
public:
  static CompiledProgramRef run(const FrontendOptions &Opts,
                                const std::string &Source,
                                const std::string &Name,
                                const HeaderRegistry &Headers,
                                const TranslationKey *PrecomputedKey) {
    auto Start = std::chrono::steady_clock::now();
    auto Result = std::shared_ptr<CompiledProgram>(new CompiledProgram());
    // Only cache-addressed compiles carry a content address; deriving
    // one here for uncached compiles would hash the source plus the
    // whole header registry for a field nobody reads on that path.
    if (PrecomputedKey)
      Result->Key = *PrecomputedKey;
    Result->Interner = std::make_unique<StringInterner>();
    DiagnosticEngine Diags;
    Preprocessor PP(*Result->Interner, Diags, Headers);
    std::vector<Token> Toks = PP.run(Source, Name);
    if (Diags.hasErrors()) {
      Result->Errors = Diags.render();
      finish(*Result, Start);
      return Result;
    }
    Result->Ast = std::make_unique<AstContext>(Opts.Target,
                                               *Result->Interner);
    Parser P(std::move(Toks), *Result->Ast, Diags);
    bool ParseOk = P.parseTranslationUnit();
    UbSink StaticSink;
    UbSink HintSink;
    if (ParseOk) {
      Sema S(*Result->Ast, Diags, StaticSink);
      S.run();
      // Builtin ids come before the syntactic checker: its va_start/
      // va_arg checks recognize __cundef_va_arg by builtin id.
      assignBuiltinIds(*Result->Ast);
      if (Opts.StaticChecks) {
        StaticChecker Checker(*Result->Ast, StaticSink);
        Checker.run();
      }
      // The flow layer reads Sema-computed facts (cast kinds, field
      // indices, case values), so it only runs on clean units.
      if (Opts.StaticChecks && Opts.FlowChecks && !Diags.hasErrors()) {
        FlowChecker Flow(*Result->Ast, StaticSink, HintSink);
        Flow.run();
      }
    }
    Result->StaticUb = StaticSink.all();
    Result->StaticHints = HintSink.all();
    // Syntactic findings are definite by construction (constant
    // expressions evaluated at compile time); stamp the ones the flow
    // layer didn't already annotate.
    for (UbReport &R : Result->StaticUb)
      if (R.Verdict == FindingVerdict::None) {
        R.Verdict = FindingVerdict::Must;
        R.Domain = "syntactic";
      }
    Result->Errors = Diags.render();
    Result->Ok = !Diags.hasErrors();
    finish(*Result, Start);
    return Result;
  }

private:
  static void finish(CompiledProgram &P,
                     std::chrono::steady_clock::time_point Start) {
    P.FrontendMicros = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
  }
};

} // namespace cundef

CompiledProgramRef
cundef::compileTranslationUnit(const FrontendOptions &Opts,
                               const std::string &Source,
                               const std::string &Name,
                               const HeaderRegistry &Headers,
                               const TranslationKey *PrecomputedKey) {
  return FrontendPipeline::run(Opts, Source, Name, Headers, PrecomputedKey);
}
