//===- frontend/TranslationCache.h - Content-addressed artifacts -*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An engine-wide, sharded, LRU-bounded cache of CompiledProgram
/// artifacts, keyed by content address (TranslationKey). Repeat traffic
/// — regenerated suite cases, duplicate files in a batch, resubmissions
/// of an unchanged translation unit — skips the whole frontend pass and
/// shares one immutable artifact.
///
/// Semantics:
///
///  * **Singleflight.** Concurrent lookups of one key compile exactly
///    once: the first caller inserts an in-flight entry and runs the
///    compile; everyone else blocks on its shared future and receives
///    the same artifact (counted as InflightJoins — they paid a wait,
///    not a compile). The compile runs outside all cache locks, so
///    distinct keys never serialize behind each other.
///  * **LRU per shard.** Capacity bounds the number of *ready* entries
///    (approximately: it is split evenly across shards). Insertion
///    beyond a shard's bound evicts its least-recently-used ready
///    entry. In-flight entries are pinned — an eviction can only drop
///    the cache's reference; jobs holding the artifact keep it alive
///    (shared_ptr), so eviction is always safe, never an error.
///  * **Sharding.** Key-hash sharding keeps concurrent submissions of
///    *different* units from contending on one mutex; the per-shard
///    critical sections are pointer swaps and list splices only.
///
/// The cache never validates: equal keys mean interchangeable
/// artifacts by the frontend's purity contract (frontend/Frontend.h),
/// and anything that could change the output — source, name, target,
/// static-checks flag, header registry — is folded into the key.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_FRONTEND_TRANSLATIONCACHE_H
#define CUNDEF_FRONTEND_TRANSLATIONCACHE_H

#include "frontend/CompiledProgram.h"
#include "support/Hash.h"

#include <atomic>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cundef {

/// Monotonic cache counters (diff two snapshots for per-batch rates).
struct TranslationCacheStats {
  uint64_t Lookups = 0;
  /// Ready entry served without waiting.
  uint64_t Hits = 0;
  /// Full frontend pass ran.
  uint64_t Misses = 0;
  /// Joined another caller's in-flight compile (no compile, but a
  /// wait). Hits + InflightJoins + Misses == Lookups.
  uint64_t InflightJoins = 0;
  /// Ready entries dropped by the LRU bound.
  uint64_t Evictions = 0;

  /// Fraction of lookups that skipped the frontend pass.
  double hitRate() const {
    return Lookups ? static_cast<double>(Hits + InflightJoins) / Lookups : 0.0;
  }
};

/// Thread-safe content-addressed artifact cache. Capacity 0 disables
/// it entirely (getOrCompile always compiles — the kcc
/// --translation-cache=off A/B path).
class TranslationCache {
public:
  explicit TranslationCache(unsigned Capacity, unsigned ShardCount = 8);

  TranslationCache(const TranslationCache &) = delete;
  TranslationCache &operator=(const TranslationCache &) = delete;

  /// Returns the artifact for \p Key, running \p Compile at most once
  /// per key across all concurrent callers. \p WasHit (optional)
  /// reports whether this caller skipped the compile (ready hit or
  /// in-flight join). \p Compile must not re-enter the cache.
  CompiledProgramRef
  getOrCompile(const TranslationKey &Key,
               const std::function<CompiledProgramRef()> &Compile,
               bool *WasHit = nullptr);

  bool enabled() const { return Capacity > 0; }
  /// Ready entries currently resident (in-flight ones excluded).
  size_t size() const;
  TranslationCacheStats stats() const;

private:
  struct Entry {
    std::shared_future<CompiledProgramRef> Ready;
    /// Set once the artifact landed; only done entries join the LRU
    /// list and are eviction candidates.
    bool Done = false;
    std::list<TranslationKey>::iterator LruIt;
  };

  struct KeyHash {
    size_t operator()(const TranslationKey &K) const {
      return static_cast<size_t>(mix64(K.SourceHash ^
                                       (K.ContextHash * 0x9e3779b97f4a7c15ull)));
    }
  };

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<TranslationKey, Entry, KeyHash> Entries;
    /// Front = least recently used = next eviction victim.
    std::list<TranslationKey> Lru;
    size_t DoneCount = 0;
  };

  Shard &shardFor(const TranslationKey &Key) {
    return Shards[KeyHash{}(Key) >> 56 & (Shards.size() - 1)];
  }

  const unsigned Capacity;
  const unsigned PerShardCapacity;
  std::vector<Shard> Shards;

  /// Lock-free counters: the stats path must not reintroduce the
  /// single mutex that sharding exists to avoid.
  struct Counters {
    std::atomic<uint64_t> Lookups{0};
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Misses{0};
    std::atomic<uint64_t> InflightJoins{0};
    std::atomic<uint64_t> Evictions{0};
  };
  mutable Counters Stats;

  /// Counts one lookup resolved as \p Counter (Hits/Misses/Joins).
  void bump(std::atomic<uint64_t> Counters::*Counter) const {
    Stats.Lookups.fetch_add(1, std::memory_order_relaxed);
    (Stats.*Counter).fetch_add(1, std::memory_order_relaxed);
  }
};

} // namespace cundef

#endif // CUNDEF_FRONTEND_TRANSLATIONCACHE_H
