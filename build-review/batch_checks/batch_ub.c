int d = 5;
int setDenom(int x) { return d = x; }
int main(void) { return (10 / d) + setDenom(0); }
