int main(void) { return 0 }
