file(REMOVE_RECURSE
  "CMakeFiles/example_explore_orders.dir/examples/explore_orders.cpp.o"
  "CMakeFiles/example_explore_orders.dir/examples/explore_orders.cpp.o.d"
  "example_explore_orders"
  "example_explore_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_explore_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
