# Empty dependencies file for example_explore_orders.
# This may be replaced when dependencies are built.
