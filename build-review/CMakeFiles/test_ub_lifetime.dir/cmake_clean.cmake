file(REMOVE_RECURSE
  "CMakeFiles/test_ub_lifetime.dir/tests/test_ub_lifetime.cpp.o"
  "CMakeFiles/test_ub_lifetime.dir/tests/test_ub_lifetime.cpp.o.d"
  "test_ub_lifetime"
  "test_ub_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ub_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
