# Empty compiler generated dependencies file for test_ub_lifetime.
# This may be replaced when dependencies are built.
