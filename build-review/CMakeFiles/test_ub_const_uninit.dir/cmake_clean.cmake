file(REMOVE_RECURSE
  "CMakeFiles/test_ub_const_uninit.dir/tests/test_ub_const_uninit.cpp.o"
  "CMakeFiles/test_ub_const_uninit.dir/tests/test_ub_const_uninit.cpp.o.d"
  "test_ub_const_uninit"
  "test_ub_const_uninit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ub_const_uninit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
