# Empty compiler generated dependencies file for test_ub_const_uninit.
# This may be replaced when dependencies are built.
