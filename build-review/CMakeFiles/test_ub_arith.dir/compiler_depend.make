# Empty compiler generated dependencies file for test_ub_arith.
# This may be replaced when dependencies are built.
