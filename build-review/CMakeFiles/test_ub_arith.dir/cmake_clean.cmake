file(REMOVE_RECURSE
  "CMakeFiles/test_ub_arith.dir/tests/test_ub_arith.cpp.o"
  "CMakeFiles/test_ub_arith.dir/tests/test_ub_arith.cpp.o.d"
  "test_ub_arith"
  "test_ub_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ub_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
