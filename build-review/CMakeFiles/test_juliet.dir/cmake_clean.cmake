file(REMOVE_RECURSE
  "CMakeFiles/test_juliet.dir/tests/test_juliet.cpp.o"
  "CMakeFiles/test_juliet.dir/tests/test_juliet.cpp.o.d"
  "test_juliet"
  "test_juliet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_juliet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
