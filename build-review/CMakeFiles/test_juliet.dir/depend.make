# Empty dependencies file for test_juliet.
# This may be replaced when dependencies are built.
