# Empty dependencies file for test_undef_suite.
# This may be replaced when dependencies are built.
