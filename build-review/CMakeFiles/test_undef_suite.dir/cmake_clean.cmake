file(REMOVE_RECURSE
  "CMakeFiles/test_undef_suite.dir/tests/test_undef_suite.cpp.o"
  "CMakeFiles/test_undef_suite.dir/tests/test_undef_suite.cpp.o.d"
  "test_undef_suite"
  "test_undef_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_undef_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
