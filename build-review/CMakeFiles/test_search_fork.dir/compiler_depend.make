# Empty compiler generated dependencies file for test_search_fork.
# This may be replaced when dependencies are built.
