file(REMOVE_RECURSE
  "CMakeFiles/test_search_fork.dir/tests/test_search_fork.cpp.o"
  "CMakeFiles/test_search_fork.dir/tests/test_search_fork.cpp.o.d"
  "test_search_fork"
  "test_search_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
