file(REMOVE_RECURSE
  "CMakeFiles/test_styles.dir/tests/test_styles.cpp.o"
  "CMakeFiles/test_styles.dir/tests/test_styles.cpp.o.d"
  "test_styles"
  "test_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
