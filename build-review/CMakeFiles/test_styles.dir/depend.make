# Empty dependencies file for test_styles.
# This may be replaced when dependencies are built.
