# Empty compiler generated dependencies file for test_static_ub.
# This may be replaced when dependencies are built.
