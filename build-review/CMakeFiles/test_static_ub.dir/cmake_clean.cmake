file(REMOVE_RECURSE
  "CMakeFiles/test_static_ub.dir/tests/test_static_ub.cpp.o"
  "CMakeFiles/test_static_ub.dir/tests/test_static_ub.cpp.o.d"
  "test_static_ub"
  "test_static_ub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_ub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
