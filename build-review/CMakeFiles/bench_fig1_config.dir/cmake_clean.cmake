file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_config.dir/bench/bench_fig1_config.cpp.o"
  "CMakeFiles/bench_fig1_config.dir/bench/bench_fig1_config.cpp.o.d"
  "bench_fig1_config"
  "bench_fig1_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
