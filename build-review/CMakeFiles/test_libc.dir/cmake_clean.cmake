file(REMOVE_RECURSE
  "CMakeFiles/test_libc.dir/tests/test_libc.cpp.o"
  "CMakeFiles/test_libc.dir/tests/test_libc.cpp.o.d"
  "test_libc"
  "test_libc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
