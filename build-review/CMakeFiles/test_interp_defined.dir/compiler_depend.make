# Empty compiler generated dependencies file for test_interp_defined.
# This may be replaced when dependencies are built.
