file(REMOVE_RECURSE
  "CMakeFiles/test_interp_defined.dir/tests/test_interp_defined.cpp.o"
  "CMakeFiles/test_interp_defined.dir/tests/test_interp_defined.cpp.o.d"
  "test_interp_defined"
  "test_interp_defined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_defined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
