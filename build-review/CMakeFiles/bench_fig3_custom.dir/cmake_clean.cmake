file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_custom.dir/bench/bench_fig3_custom.cpp.o"
  "CMakeFiles/bench_fig3_custom.dir/bench/bench_fig3_custom.cpp.o.d"
  "bench_fig3_custom"
  "bench_fig3_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
