file(REMOVE_RECURSE
  "libcundef.a"
)
