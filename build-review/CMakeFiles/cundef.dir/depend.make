# Empty dependencies file for cundef.
# This may be replaced when dependencies are built.
