
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/MemGrind.cpp" "CMakeFiles/cundef.dir/src/analysis/MemGrind.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/analysis/MemGrind.cpp.o.d"
  "/root/repo/src/analysis/PtrCheck.cpp" "CMakeFiles/cundef.dir/src/analysis/PtrCheck.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/analysis/PtrCheck.cpp.o.d"
  "/root/repo/src/analysis/Tool.cpp" "CMakeFiles/cundef.dir/src/analysis/Tool.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/analysis/Tool.cpp.o.d"
  "/root/repo/src/analysis/ValueAnalysis.cpp" "CMakeFiles/cundef.dir/src/analysis/ValueAnalysis.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/analysis/ValueAnalysis.cpp.o.d"
  "/root/repo/src/ast/Ast.cpp" "CMakeFiles/cundef.dir/src/ast/Ast.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/ast/Ast.cpp.o.d"
  "/root/repo/src/ast/AstPrinter.cpp" "CMakeFiles/cundef.dir/src/ast/AstPrinter.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/ast/AstPrinter.cpp.o.d"
  "/root/repo/src/core/EvalOrder.cpp" "CMakeFiles/cundef.dir/src/core/EvalOrder.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/EvalOrder.cpp.o.d"
  "/root/repo/src/core/Fingerprint.cpp" "CMakeFiles/cundef.dir/src/core/Fingerprint.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/Fingerprint.cpp.o.d"
  "/root/repo/src/core/Machine.cpp" "CMakeFiles/cundef.dir/src/core/Machine.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/Machine.cpp.o.d"
  "/root/repo/src/core/Monitors.cpp" "CMakeFiles/cundef.dir/src/core/Monitors.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/Monitors.cpp.o.d"
  "/root/repo/src/core/RulesExpr.cpp" "CMakeFiles/cundef.dir/src/core/RulesExpr.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/RulesExpr.cpp.o.d"
  "/root/repo/src/core/RulesMem.cpp" "CMakeFiles/cundef.dir/src/core/RulesMem.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/RulesMem.cpp.o.d"
  "/root/repo/src/core/RulesStmt.cpp" "CMakeFiles/cundef.dir/src/core/RulesStmt.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/RulesStmt.cpp.o.d"
  "/root/repo/src/core/Scheduler.cpp" "CMakeFiles/cundef.dir/src/core/Scheduler.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/Scheduler.cpp.o.d"
  "/root/repo/src/core/Search.cpp" "CMakeFiles/cundef.dir/src/core/Search.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/Search.cpp.o.d"
  "/root/repo/src/core/Value.cpp" "CMakeFiles/cundef.dir/src/core/Value.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/core/Value.cpp.o.d"
  "/root/repo/src/driver/Driver.cpp" "CMakeFiles/cundef.dir/src/driver/Driver.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/driver/Driver.cpp.o.d"
  "/root/repo/src/driver/ToolRunner.cpp" "CMakeFiles/cundef.dir/src/driver/ToolRunner.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/driver/ToolRunner.cpp.o.d"
  "/root/repo/src/libc/Builtins.cpp" "CMakeFiles/cundef.dir/src/libc/Builtins.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/libc/Builtins.cpp.o.d"
  "/root/repo/src/libc/Headers.cpp" "CMakeFiles/cundef.dir/src/libc/Headers.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/libc/Headers.cpp.o.d"
  "/root/repo/src/mem/SymbolicMemory.cpp" "CMakeFiles/cundef.dir/src/mem/SymbolicMemory.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/mem/SymbolicMemory.cpp.o.d"
  "/root/repo/src/parse/ParseDecl.cpp" "CMakeFiles/cundef.dir/src/parse/ParseDecl.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/parse/ParseDecl.cpp.o.d"
  "/root/repo/src/parse/ParseExpr.cpp" "CMakeFiles/cundef.dir/src/parse/ParseExpr.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/parse/ParseExpr.cpp.o.d"
  "/root/repo/src/parse/ParseStmt.cpp" "CMakeFiles/cundef.dir/src/parse/ParseStmt.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/parse/ParseStmt.cpp.o.d"
  "/root/repo/src/parse/Parser.cpp" "CMakeFiles/cundef.dir/src/parse/Parser.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/parse/Parser.cpp.o.d"
  "/root/repo/src/sema/ConstEval.cpp" "CMakeFiles/cundef.dir/src/sema/ConstEval.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/sema/ConstEval.cpp.o.d"
  "/root/repo/src/sema/Sema.cpp" "CMakeFiles/cundef.dir/src/sema/Sema.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/sema/Sema.cpp.o.d"
  "/root/repo/src/sema/SemaExpr.cpp" "CMakeFiles/cundef.dir/src/sema/SemaExpr.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/sema/SemaExpr.cpp.o.d"
  "/root/repo/src/suites/JulietGen.cpp" "CMakeFiles/cundef.dir/src/suites/JulietGen.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/suites/JulietGen.cpp.o.d"
  "/root/repo/src/suites/SuiteRunner.cpp" "CMakeFiles/cundef.dir/src/suites/SuiteRunner.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/suites/SuiteRunner.cpp.o.d"
  "/root/repo/src/suites/UndefSuite.cpp" "CMakeFiles/cundef.dir/src/suites/UndefSuite.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/suites/UndefSuite.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "CMakeFiles/cundef.dir/src/support/Diagnostics.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/StringInterner.cpp" "CMakeFiles/cundef.dir/src/support/StringInterner.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/support/StringInterner.cpp.o.d"
  "/root/repo/src/support/Strings.cpp" "CMakeFiles/cundef.dir/src/support/Strings.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/support/Strings.cpp.o.d"
  "/root/repo/src/text/Lexer.cpp" "CMakeFiles/cundef.dir/src/text/Lexer.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/text/Lexer.cpp.o.d"
  "/root/repo/src/text/Preprocessor.cpp" "CMakeFiles/cundef.dir/src/text/Preprocessor.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/text/Preprocessor.cpp.o.d"
  "/root/repo/src/types/TargetConfig.cpp" "CMakeFiles/cundef.dir/src/types/TargetConfig.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/types/TargetConfig.cpp.o.d"
  "/root/repo/src/types/Type.cpp" "CMakeFiles/cundef.dir/src/types/Type.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/types/Type.cpp.o.d"
  "/root/repo/src/ub/Catalog.cpp" "CMakeFiles/cundef.dir/src/ub/Catalog.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/ub/Catalog.cpp.o.d"
  "/root/repo/src/ub/Report.cpp" "CMakeFiles/cundef.dir/src/ub/Report.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/ub/Report.cpp.o.d"
  "/root/repo/src/ub/StaticChecks.cpp" "CMakeFiles/cundef.dir/src/ub/StaticChecks.cpp.o" "gcc" "CMakeFiles/cundef.dir/src/ub/StaticChecks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
