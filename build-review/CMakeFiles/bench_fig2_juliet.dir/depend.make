# Empty dependencies file for bench_fig2_juliet.
# This may be replaced when dependencies are built.
