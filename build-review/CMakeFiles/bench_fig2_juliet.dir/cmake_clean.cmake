file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_juliet.dir/bench/bench_fig2_juliet.cpp.o"
  "CMakeFiles/bench_fig2_juliet.dir/bench/bench_fig2_juliet.cpp.o.d"
  "bench_fig2_juliet"
  "bench_fig2_juliet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_juliet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
