# Empty dependencies file for example_compare_tools.
# This may be replaced when dependencies are built.
