file(REMOVE_RECURSE
  "CMakeFiles/example_compare_tools.dir/examples/compare_tools.cpp.o"
  "CMakeFiles/example_compare_tools.dir/examples/compare_tools.cpp.o.d"
  "example_compare_tools"
  "example_compare_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
