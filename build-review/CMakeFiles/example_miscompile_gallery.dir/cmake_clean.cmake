file(REMOVE_RECURSE
  "CMakeFiles/example_miscompile_gallery.dir/examples/miscompile_gallery.cpp.o"
  "CMakeFiles/example_miscompile_gallery.dir/examples/miscompile_gallery.cpp.o.d"
  "example_miscompile_gallery"
  "example_miscompile_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_miscompile_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
