# Empty compiler generated dependencies file for example_miscompile_gallery.
# This may be replaced when dependencies are built.
