file(REMOVE_RECURSE
  "CMakeFiles/test_property_arith.dir/tests/test_property_arith.cpp.o"
  "CMakeFiles/test_property_arith.dir/tests/test_property_arith.cpp.o.d"
  "test_property_arith"
  "test_property_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
