# Empty dependencies file for test_property_arith.
# This may be replaced when dependencies are built.
