# Empty compiler generated dependencies file for test_ub_sequence.
# This may be replaced when dependencies are built.
