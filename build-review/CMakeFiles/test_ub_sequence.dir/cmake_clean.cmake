file(REMOVE_RECURSE
  "CMakeFiles/test_ub_sequence.dir/tests/test_ub_sequence.cpp.o"
  "CMakeFiles/test_ub_sequence.dir/tests/test_ub_sequence.cpp.o.d"
  "test_ub_sequence"
  "test_ub_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ub_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
