file(REMOVE_RECURSE
  "CMakeFiles/test_interp_control.dir/tests/test_interp_control.cpp.o"
  "CMakeFiles/test_interp_control.dir/tests/test_interp_control.cpp.o.d"
  "test_interp_control"
  "test_interp_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
