# Empty compiler generated dependencies file for test_interp_control.
# This may be replaced when dependencies are built.
