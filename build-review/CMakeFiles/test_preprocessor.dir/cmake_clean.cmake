file(REMOVE_RECURSE
  "CMakeFiles/test_preprocessor.dir/tests/test_preprocessor.cpp.o"
  "CMakeFiles/test_preprocessor.dir/tests/test_preprocessor.cpp.o.d"
  "test_preprocessor"
  "test_preprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
