# Empty dependencies file for test_preprocessor.
# This may be replaced when dependencies are built.
