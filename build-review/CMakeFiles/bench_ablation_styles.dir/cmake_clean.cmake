file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_styles.dir/bench/bench_ablation_styles.cpp.o"
  "CMakeFiles/bench_ablation_styles.dir/bench/bench_ablation_styles.cpp.o.d"
  "bench_ablation_styles"
  "bench_ablation_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
