# Empty compiler generated dependencies file for bench_ablation_styles.
# This may be replaced when dependencies are built.
