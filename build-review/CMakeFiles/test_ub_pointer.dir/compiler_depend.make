# Empty compiler generated dependencies file for test_ub_pointer.
# This may be replaced when dependencies are built.
