file(REMOVE_RECURSE
  "CMakeFiles/test_ub_pointer.dir/tests/test_ub_pointer.cpp.o"
  "CMakeFiles/test_ub_pointer.dir/tests/test_ub_pointer.cpp.o.d"
  "test_ub_pointer"
  "test_ub_pointer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ub_pointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
