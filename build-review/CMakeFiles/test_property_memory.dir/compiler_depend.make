# Empty compiler generated dependencies file for test_property_memory.
# This may be replaced when dependencies are built.
