file(REMOVE_RECURSE
  "CMakeFiles/test_property_memory.dir/tests/test_property_memory.cpp.o"
  "CMakeFiles/test_property_memory.dir/tests/test_property_memory.cpp.o.d"
  "test_property_memory"
  "test_property_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
