//===- tools/kcc.cpp - The kcc command-line interface -------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// A command-line wrapper mimicking the paper's kcc usage (section 3.2):
// feed it C files; defined programs run (their output and exit status
// pass through), undefined programs are reported in kcc's format.
//
//   kcc [options] file.c [file2.c ...]
//     --target=lp64|ilp32|wideint   implementation-defined parameters
//     --style=cond|chain|decl       specification style (section 4.5)
//     --search=N                    evaluation orders to search (2.5.2)
//     --search-jobs=N               worker threads (0 = all hardware threads)
//     --search-engine=fork|replay   fork snapshots vs replay prefixes
//     --search-sched=steal|wave     scheduling layer (results identical)
//     --translation-cache=on|off    content-addressed reuse of compiled
//                                   translation units (on by default;
//                                   off recompiles every file — results
//                                   identical, A/B the wall-clock)
//     --result-cache=on|off         content-addressed reuse of completed
//                                   search results (on by default; off
//                                   re-searches every file — results
//                                   identical, A/B the wall-clock).
//                                   Per-request, so it composes with
//                                   --remote: the daemon honors the
//                                   client's choice without affecting
//                                   other clients
//     --no-dedup                    disable search state deduplication
//     --show-witness                print the undefined order's decisions
//                                   plus a search stats block
//     --batch-stats                 print shared-scheduler stats (batch mode)
//     --json                        machine-readable output: the whole run
//                                   as one cundef-kcc-v1 JSON document on
//                                   stdout (docs/JSON_OUTPUT.md); human
//                                   reports and program output passthrough
//                                   are suppressed, the exit-code contract
//                                   is unchanged
//     --no-static                   skip the static undefinedness pass
//     --static-analyze=on|off|only  flow-sensitive static layer (CFG +
//                                   dataflow must/may analysis): on by
//                                   default; off keeps only the
//                                   syntactic checks; only skips the
//                                   dynamic search entirely (the
//                                   verdict is the static one). May
//                                   hints print with --show-witness or
//                                   in only mode; incompatible with
//                                   --catalog-coverage (exit 2)
//     --remote=HOST:PORT            route the analysis through a running
//     --remote=unix:PATH            kcc-serve daemon (docs/SERVE.md)
//                                   instead of a local engine: identical
//                                   stdout and exit codes, but pool
//                                   spawn and frontend work are amortized
//                                   across every client of the daemon.
//                                   Incompatible with --catalog-coverage,
//                                   --static-analyze=only, and
//                                   --translation-cache=off (exit 2);
//                                   transport failures exit 3
//     --order=ltr|rtl|random        evaluation order policy
//     --seed=N                      seed for --order=random
//     --dump-catalog=markdown       print the UB catalog reference (with a
//                                   live Coverage column) and exit
//     --catalog-coverage[=MODE]     run the catalog coverage harness and
//                                   exit: one triggering program per
//                                   catalog row, graded covered /
//                                   wrong-code / missed / inexpressible.
//                                   MODE is quick (4 search runs), full
//                                   (64, the default), or an explicit
//                                   per-program search budget N; with
//                                   --json the verdicts come out as the
//                                   coverage document of cundef-kcc-v1
//
// Every translation unit is submitted to ONE persistent AnalysisEngine
// (driver/Engine.h): program outputs appear on stdout in command-line
// order, per-program reports on stderr, and the exit code is 139 if
// any program is undefined, else 1 if any failed to compile, else the
// program's own exit code (0 for multi-file batches). Results are
// byte-identical to running each file separately.
// --search-sched=wave runs each unit synchronously through the wave
// reference engine (same outcomes, no shared pool).
//
// Flags are validated once, through the AnalysisRequest builder:
// non-numeric values, a zero search budget, or an absurd worker count
// are usage errors (exit 2), never silently coerced.
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"
#include "driver/JsonOutput.h"
#include "serve/Client.h"
#include "suites/CatalogCoverage.h"
#include "support/Strings.h"
#include "ub/Catalog.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cundef;

static void usage() {
  std::fprintf(stderr,
               "usage: kcc [options] file.c [file2.c ...]\n"
               "  --target=lp64|ilp32|wideint\n"
               "  --style=cond|chain|decl\n"
               "  --search=N\n"
               "  --search-jobs=N      (0 = all hardware threads)\n"
               "  --search-engine=fork|replay\n"
               "  --search-sched=steal|wave\n"
               "  --translation-cache=on|off\n"
               "  --result-cache=on|off\n"
               "  --no-dedup\n"
               "  --show-witness\n"
               "  --batch-stats\n"
               "  --json\n"
               "  --remote=HOST:PORT|unix:PATH\n"
               "  --order=ltr|rtl|random\n"
               "  --seed=N\n"
               "  --no-static\n"
               "  --static-analyze=on|off|only\n"
               "  --dump-catalog=markdown\n"
               "  --catalog-coverage[=quick|full|N]\n");
}

/// Strict numeric flag parsing: `--flag=garbage` is diagnosed and exits
/// 2 (atoi silently mapped it to 0, which --search then clamped to 1 —
/// a typo like --search-jobs=1O quietly serialized the whole search).
static bool parseNumericFlag(const char *Name, const char *Value,
                             unsigned &Out) {
  if (parseUnsigned(Value, Out))
    return true;
  std::fprintf(stderr, "kcc: invalid value '%s' for %s (expected a "
                       "non-negative integer)\n",
               Value, Name);
  return false;
}

/// The per-program stderr tail shared by the single-file and batch
/// paths: truncation honesty, the kcc error report, and the witness.
/// Returns true when the program is undefined.
static bool printProgramReport(const DriverOutcome &O, bool ShowWitness) {
  if (ShowWitness && O.SearchTruncated) {
    // Never let a budget-limited search masquerade as exhaustive: a
    // clean verdict below this line means "no UB found within
    // --search=N runs", not "no order is undefined".
    std::fprintf(stderr,
                 "Search frontier truncated: %u subtree(s) dropped "
                 "unexplored (raise --search to cover them)\n",
                 O.SearchDropped);
  }
  if (!O.anyUb())
    return false;
  std::fputs(O.renderReport().c_str(), stderr);
  if (ShowWitness && !O.DynamicUb.empty()) {
    // The deterministic witness: the evaluation-order decisions that
    // expose the undefinedness (0 = source order, 1 = reversed, one
    // per choice point). Empty = the default order already fails.
    std::string W = "Witness decisions:";
    if (O.SearchWitness.empty())
      W += " (default order)";
    for (uint8_t D : O.SearchWitness)
      W += D ? " 1" : " 0";
    W += "\n";
    std::fputs(W.c_str(), stderr);
  }
  return true;
}

/// Flow-layer may-findings: triage hints, never part of the verdict.
/// Printed in static-only mode (where they are the point) and under
/// --show-witness (where the user asked for everything the analysis
/// knows).
static void printStaticHints(const DriverOutcome &O) {
  if (O.StaticHints.empty())
    return;
  std::fprintf(stderr,
               "Static analysis hints (may-UB, not part of the verdict):\n");
  for (const UbReport &R : O.StaticHints)
    std::fprintf(stderr, "  [may] %05u (%s) function %s line %u: %s\n",
                 static_cast<unsigned>(R.Kind), R.Domain, R.Function.c_str(),
                 R.Loc.Line, R.Description.c_str());
}

/// The --show-witness stats block: the per-program scheduler counters
/// plus the frontend-vs-search cost split (and whether the frontend
/// pass was skipped via the translation cache).
static void printSearchStats(const DriverOutcome &O) {
  std::fprintf(stderr,
               "Search stats: orders=%u deduped=%u steals=%u evictions=%u "
               "peak-frontier=%u\n",
               O.OrdersExplored, O.OrdersDeduped, O.SearchSteals,
               O.SearchEvictions, O.SearchPeakFrontier);
  std::fprintf(stderr,
               "Compile stats: cache=%s frontend-micros=%.1f "
               "search-micros=%.1f\n",
               O.TranslationCacheHit ? "hit" : "miss", O.FrontendMicros,
               O.SearchMicros);
}

/// The --show-witness pool block: scheduler-wide speculation and
/// snapshot-cache contention counters (one line each; zeros on the
/// wave path, which never speculates).
static void printPoolStats(const cundef::SchedulerStats &Pool) {
  const double Waste =
      Pool.RunsCommitted
          ? static_cast<double>(Pool.RunsExecuted - Pool.RunsCommitted) /
                static_cast<double>(Pool.RunsCommitted)
          : 0.0;
  std::fprintf(stderr,
               "Pool stats: workers=%u runs-executed=%llu "
               "runs-committed=%llu waste=%.2f%% provisional-hits=%llu "
               "provisional-requeues=%llu commit-lag-peak=%llu\n",
               Pool.Jobs,
               static_cast<unsigned long long>(Pool.RunsExecuted),
               static_cast<unsigned long long>(Pool.RunsCommitted),
               Waste * 100.0,
               static_cast<unsigned long long>(Pool.ProvisionalHits),
               static_cast<unsigned long long>(Pool.ProvisionalRequeues),
               static_cast<unsigned long long>(Pool.CommitLagPeak));
  std::fprintf(stderr,
               "Snapshot cache: shards=%u takes=%llu hits=%llu "
               "slot-steals=%llu evictions=%llu shared-hits=%llu\n",
               Pool.SnapshotShards,
               static_cast<unsigned long long>(Pool.SnapshotTakes),
               static_cast<unsigned long long>(Pool.SnapshotHits),
               static_cast<unsigned long long>(Pool.SnapshotSlotSteals),
               static_cast<unsigned long long>(Pool.SnapshotEvictions),
               static_cast<unsigned long long>(Pool.SnapshotSharedHits));
}

int main(int argc, char **argv) {
  AnalysisRequest::Builder Builder;
  Builder.searchRuns(8);
  SchedKind Sched = SchedKind::Stealing;
  bool ShowWitness = false;
  bool StaticOnly = false;
  bool BatchStats = false;
  bool Json = false;
  bool UseTranslationCache = true;
  bool UseResultCache = true;
  bool CoverageMode = false;
  unsigned CoverageRuns = 64;
  std::string CoverageModeName = "full";
  std::string RemoteSpec;
  std::vector<const char *> Paths;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--dump-catalog=")) {
      const char *Value = Arg + 15;
      if (std::strcmp(Value, "markdown")) {
        usage();
        return 2;
      }
      // The Coverage column is live: run the quick harness (verdicts
      // are deterministic, so the committed doc stays byte-stable).
      CatalogCoverageColumn Col =
          coverageColumn(runCatalogCoverage(coverageRequest(true)));
      std::fputs(renderCatalogMarkdown(&Col).c_str(), stdout);
      return 0;
    } else if (!std::strcmp(Arg, "--catalog-coverage")) {
      CoverageMode = true;
    } else if (startsWith(Arg, "--catalog-coverage=")) {
      // Strict mode parsing: quick, full, or an explicit per-program
      // search budget; anything else (including a garbled number) is a
      // usage error, never silently coerced.
      const char *Value = Arg + 19;
      CoverageMode = true;
      CoverageModeName = Value;
      if (!std::strcmp(Value, "quick"))
        CoverageRuns = 4;
      else if (!std::strcmp(Value, "full"))
        CoverageRuns = 64;
      else if (!parseNumericFlag("--catalog-coverage", Value, CoverageRuns))
        return 2;
    } else if (startsWith(Arg, "--target=")) {
      const char *Value = Arg + 9;
      if (!std::strcmp(Value, "lp64"))
        Builder.target(TargetConfig::lp64());
      else if (!std::strcmp(Value, "ilp32"))
        Builder.target(TargetConfig::ilp32());
      else if (!std::strcmp(Value, "wideint"))
        Builder.target(TargetConfig::wideInt());
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--style=")) {
      const char *Value = Arg + 8;
      if (!std::strcmp(Value, "cond"))
        Builder.style(RuleStyle::SideConditions);
      else if (!std::strcmp(Value, "chain"))
        Builder.style(RuleStyle::PrecedenceChain);
      else if (!std::strcmp(Value, "decl"))
        Builder.style(RuleStyle::Declarative);
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--search=")) {
      // A budget of 0 is rejected below by the request builder, with
      // the rest of the combination validation.
      unsigned Runs = 0;
      if (!parseNumericFlag("--search", Arg + 9, Runs))
        return 2;
      Builder.searchRuns(Runs);
    } else if (startsWith(Arg, "--search-jobs=")) {
      // 0 is meaningful: auto-detect hardware_concurrency.
      unsigned Jobs = 0;
      if (!parseNumericFlag("--search-jobs", Arg + 14, Jobs))
        return 2;
      Builder.searchJobs(Jobs);
    } else if (startsWith(Arg, "--search-engine=")) {
      const char *Value = Arg + 16;
      if (!std::strcmp(Value, "fork"))
        Builder.snapshots(true);
      else if (!std::strcmp(Value, "replay"))
        Builder.snapshots(false);
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--search-sched=")) {
      const char *Value = Arg + 15;
      if (!std::strcmp(Value, "steal"))
        Sched = SchedKind::Stealing;
      else if (!std::strcmp(Value, "wave"))
        Sched = SchedKind::Wave;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--translation-cache=")) {
      const char *Value = Arg + 20;
      if (!std::strcmp(Value, "on"))
        UseTranslationCache = true;
      else if (!std::strcmp(Value, "off"))
        UseTranslationCache = false;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--result-cache=")) {
      const char *Value = Arg + 15;
      if (!std::strcmp(Value, "on"))
        UseResultCache = true;
      else if (!std::strcmp(Value, "off"))
        UseResultCache = false;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--remote=")) {
      RemoteSpec = Arg + 9;
      if (RemoteSpec.empty()) {
        std::fprintf(stderr, "kcc: --remote= requires HOST:PORT or "
                             "unix:PATH\n");
        return 2;
      }
    } else if (!std::strcmp(Arg, "--no-dedup")) {
      Builder.dedup(false);
    } else if (!std::strcmp(Arg, "--show-witness")) {
      ShowWitness = true;
    } else if (!std::strcmp(Arg, "--batch-stats")) {
      BatchStats = true;
    } else if (!std::strcmp(Arg, "--json")) {
      Json = true;
    } else if (startsWith(Arg, "--order=")) {
      const char *Value = Arg + 8;
      if (!std::strcmp(Value, "ltr"))
        Builder.order(EvalOrderKind::LeftToRight);
      else if (!std::strcmp(Value, "rtl"))
        Builder.order(EvalOrderKind::RightToLeft);
      else if (!std::strcmp(Value, "random"))
        Builder.order(EvalOrderKind::Random);
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--seed=")) {
      unsigned Seed = 0;
      if (!parseNumericFlag("--seed", Arg + 7, Seed))
        return 2;
      Builder.seed(Seed);
    } else if (!std::strcmp(Arg, "--no-static")) {
      Builder.staticChecks(false);
    } else if (startsWith(Arg, "--static-analyze=")) {
      const char *Value = Arg + 17;
      if (!std::strcmp(Value, "on"))
        Builder.staticAnalyze(StaticAnalysisMode::On);
      else if (!std::strcmp(Value, "off"))
        Builder.staticAnalyze(StaticAnalysisMode::Off);
      else if (!std::strcmp(Value, "only")) {
        Builder.staticAnalyze(StaticAnalysisMode::Only);
        StaticOnly = true;
      } else {
        std::fprintf(stderr,
                     "kcc: invalid value '%s' for --static-analyze "
                     "(expected on, off, or only)\n",
                     Value);
        return 2;
      }
    } else if (Arg[0] == '-') {
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (CoverageMode && !Paths.empty()) {
    std::fprintf(stderr, "kcc: --catalog-coverage takes no input files\n");
    return 2;
  }
  if (CoverageMode && StaticOnly) {
    // The coverage harness grades the combined static+dynamic verdict;
    // a static-only run would grade most rows as missed by design.
    std::fprintf(stderr, "kcc: --static-analyze=only is incompatible with "
                         "--catalog-coverage\n");
    return 2;
  }
  if (!CoverageMode && Paths.empty()) {
    usage();
    return 2;
  }

  RemoteEndpoint Remote;
  if (!RemoteSpec.empty()) {
    // Endpoint syntax is validated here, with the rest of the flag
    // surface, so a typo'd --remote exits 2 before any connection or
    // file I/O is attempted.
    std::string EpErr;
    if (!parseRemoteEndpoint(RemoteSpec, Remote, EpErr)) {
      std::fprintf(stderr, "kcc: %s\n", EpErr.c_str());
      return 2;
    }
    if (CoverageMode) {
      // The coverage harness generates its programs and grades them
      // in-process; there is nothing to route through a daemon.
      std::fprintf(stderr,
                   "kcc: --remote is incompatible with --catalog-coverage\n");
      return 2;
    }
    if (StaticOnly) {
      // Static-only triage is a local, sub-millisecond analysis; the
      // daemon exists to amortize pool and frontend work that this
      // mode never does.
      std::fprintf(stderr, "kcc: --remote is incompatible with "
                           "--static-analyze=only\n");
      return 2;
    }
    if (!UseTranslationCache) {
      // The daemon owns its engine's cache; a client cannot switch it
      // off per-request, and silently ignoring the A/B flag would make
      // the comparison lie.
      std::fprintf(stderr, "kcc: --remote is incompatible with "
                           "--translation-cache=off (the daemon owns the "
                           "cache)\n");
      return 2;
    }
  }

  // One validation point for the whole flag surface: nonsense
  // combinations (--search=0, absurd worker counts) exit 2 with the
  // builder's typed diagnostic instead of being silently clamped.
  // Per-request, so it rides the wire to a daemon unchanged (unlike
  // --translation-cache, which configures the engine itself).
  Builder.resultCache(UseResultCache);
  Builder.sched(Sched);
  AnalysisRequest::Builder::Result Built = Builder.build();
  if (!Built.ok()) {
    std::fprintf(stderr, "kcc: %s\n", Built.Err.Message.c_str());
    return 2;
  }
  const AnalysisRequest &Req = Built.Request;

  if (CoverageMode) {
    // The whole catalog, one batch, one engine; CoverageRuns is the
    // per-program search budget (the builder rejects a zero budget).
    AnalysisRequest::Builder CovBuilder;
    CovBuilder.searchRuns(CoverageRuns).searchJobs(0).sched(Sched);
    AnalysisRequest::Builder::Result Cov = CovBuilder.build();
    if (!Cov.ok()) {
      std::fprintf(stderr, "kcc: %s\n", Cov.Err.Message.c_str());
      return 2;
    }
    auto Start = std::chrono::steady_clock::now();
    CoverageReport Report = runCatalogCoverage(Cov.Request);
    double WallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    if (Json)
      std::fputs(renderCoverageJson(Report, CoverageModeName.c_str(),
                                    WallMs)
                     .c_str(),
                 stdout);
    else
      std::fputs(renderCoverageReport(Report).c_str(), stdout);
    return 0;
  }

  std::vector<BatchInput> Inputs;
  for (const char *Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "kcc: cannot open %s\n", Path);
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Inputs.push_back({Buffer.str(), Path});
  }

  // The single submission path: every translation unit goes through
  // one AnalysisEngine — local, or a kcc-serve daemon's warm one.
  // Both branches fill the same Outcomes/Micros/Pool/TStats and fall
  // through to the same rendering code, so remote stdout is
  // byte-identical to local by construction (volatile stats fields
  // aside; docs/SERVE.md discusses which).
  auto Start = std::chrono::steady_clock::now();
  std::vector<DriverOutcome> Outcomes;
  std::vector<double> Micros;
  SchedulerStats Pool;
  TranslationCacheStats TStats;
  ResultCacheStats RStats;
  if (!RemoteSpec.empty()) {
    RemoteClient Client;
    std::string Err;
    if (!Client.connect(Remote, Err) ||
        !Client.runBatch(Req, Inputs, Outcomes, Micros, Err)) {
      // Exit 3: a transport/protocol/rejection failure, distinct from
      // usage errors (2) and analysis verdicts (139/1/program).
      std::fprintf(stderr, "kcc: remote analysis failed: %s\n", Err.c_str());
      return 3;
    }
    EngineMemoryStats RemoteMemory;
    if (!Client.queryStats(Pool, RemoteMemory, TStats, RStats, Err)) {
      std::fprintf(stderr, "kcc: remote analysis failed: %s\n", Err.c_str());
      return 3;
    }
    // The daemon's counters are engine-lifetime monotonic (shared by
    // every client); wave-scheduled runs aggregate truthful per-program
    // counters instead, exactly like the local branch.
    if (Req.searchSched() == SchedKind::Wave)
      Pool = waveAggregateStats(Outcomes);
  } else {
    EngineConfig ECfg = engineConfigFor(Req);
    if (!UseTranslationCache)
      ECfg.TranslationCacheEntries = 0; // A/B mode: recompile every file
    if (!UseResultCache)
      ECfg.ResultCacheEntries = 0; // A/B mode: re-search every file
    AnalysisEngine Eng(ECfg);
    std::vector<JobHandle> Handles = Eng.submitBatch(Req, Inputs);
    Outcomes.reserve(Handles.size());
    for (JobHandle &H : Handles) {
      Micros.push_back(H.wallMicros());
      Outcomes.push_back(H.take());
    }
    Pool = Req.searchSched() == SchedKind::Wave ? waveAggregateStats(Outcomes)
                                                : Eng.poolStats();
    TStats = Eng.translationStats();
    RStats = Eng.resultCacheStats();
  }
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  Pool.Programs = static_cast<unsigned>(Inputs.size());

  bool AnyUb = false, AnyCompileFail = false;
  for (const DriverOutcome &O : Outcomes) {
    AnyUb |= O.anyUb();
    AnyCompileFail |= !O.CompileOk && !O.anyUb();
  }
  int ExitCode = AnyUb            ? 139
                 : AnyCompileFail ? 1
                 : Outcomes.size() == 1 ? Outcomes[0].ExitCode
                                        : 0;

  if (Json) {
    // Machine-readable boundary: the document is the entire stdout;
    // program output is embedded, the human report is suppressed.
    const char *StaticModeName =
        Req.staticAnalyze() == StaticAnalysisMode::Off  ? "off"
        : Req.staticAnalyze() == StaticAnalysisMode::Only ? "only"
                                                          : "on";
    std::vector<JsonProgram> Progs;
    Progs.reserve(Outcomes.size());
    for (size_t I = 0; I < Outcomes.size(); ++I)
      Progs.push_back({&Outcomes[I], Inputs[I].Name, Micros[I],
                       StaticModeName});
    std::fputs(renderJsonDocument(Progs, Pool, TStats, RStats, WallMs,
                                  ExitCode)
                   .c_str(),
               stdout);
    return ExitCode;
  }

  for (size_t I = 0; I < Outcomes.size(); ++I) {
    const DriverOutcome &O = Outcomes[I];
    if (Inputs.size() > 1)
      std::fprintf(stderr, "== %s ==\n", Inputs[I].Name.c_str());
    if (!O.CompileOk) {
      std::fputs(O.CompileErrors.c_str(), stderr);
      if (!O.anyUb())
        continue;
    }
    // Program output passes through, in command-line order.
    std::fputs(O.Output.c_str(), stdout);
    printProgramReport(O, ShowWitness);
    if (StaticOnly || ShowWitness)
      printStaticHints(O);
    if (ShowWitness)
      printSearchStats(O);
  }
  if (ShowWitness)
    printPoolStats(Pool);
  if (BatchStats) {
    std::fprintf(stderr,
                 "Batch stats: programs=%u jobs=%u runs=%llu committed=%llu "
                 "waste=%.2f%% steals=%llu "
                 "dedup-hits=%llu evictions=%llu peak-frontier=%llu "
                 "wall-ms=%.2f\n",
                 Pool.Programs, Pool.Jobs,
                 static_cast<unsigned long long>(Pool.RunsExecuted),
                 static_cast<unsigned long long>(Pool.RunsCommitted),
                 Pool.RunsCommitted
                     ? 100.0 *
                           static_cast<double>(Pool.RunsExecuted -
                                               Pool.RunsCommitted) /
                           static_cast<double>(Pool.RunsCommitted)
                     : 0.0,
                 static_cast<unsigned long long>(Pool.Steals),
                 static_cast<unsigned long long>(Pool.DedupHits),
                 static_cast<unsigned long long>(Pool.SnapshotEvictions),
                 static_cast<unsigned long long>(Pool.PeakFrontier),
                 WallMs);
    std::fprintf(stderr,
                 "Translation cache: hits=%llu joins=%llu misses=%llu "
                 "evictions=%llu\n",
                 static_cast<unsigned long long>(TStats.Hits),
                 static_cast<unsigned long long>(TStats.InflightJoins),
                 static_cast<unsigned long long>(TStats.Misses),
                 static_cast<unsigned long long>(TStats.Evictions));
    std::fprintf(stderr,
                 "Result cache: hits=%llu joins=%llu misses=%llu "
                 "evictions=%llu\n",
                 static_cast<unsigned long long>(RStats.Hits),
                 static_cast<unsigned long long>(RStats.InflightJoins),
                 static_cast<unsigned long long>(RStats.Misses),
                 static_cast<unsigned long long>(RStats.Evictions));
    for (size_t I = 0; I < Outcomes.size(); ++I) {
      const DriverOutcome &O = Outcomes[I];
      const char *Verdict = !O.CompileOk && !O.anyUb() ? "compile-error"
                            : O.anyUb()                ? "UNDEFINED"
                                                       : "clean";
      std::fprintf(stderr, "  %s: %s (orders=%u deduped=%u)\n",
                   Inputs[I].Name.c_str(), Verdict, O.OrdersExplored,
                   O.OrdersDeduped);
    }
  }
  return ExitCode;
}
