//===- tools/kcc.cpp - The kcc command-line interface -------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// A command-line wrapper mimicking the paper's kcc usage (section 3.2):
// feed it C files; defined programs run (their output and exit status
// pass through), undefined programs are reported in kcc's format.
//
//   kcc [options] file.c [file2.c ...]
//     --target=lp64|ilp32|wideint   implementation-defined parameters
//     --style=cond|chain|decl       specification style (section 4.5)
//     --search=N                    evaluation orders to search (2.5.2)
//     --search-jobs=N               worker threads (0 = all hardware threads)
//     --search-engine=fork|replay   fork snapshots vs replay prefixes
//     --search-sched=steal|wave     scheduling layer (results identical)
//     --no-dedup                    disable search state deduplication
//     --show-witness                print the undefined order's decisions
//                                   plus a search stats block
//     --batch-stats                 print shared-scheduler stats (batch mode)
//     --no-static                   skip the static undefinedness pass
//     --order=ltr|rtl|random        evaluation order policy
//     --seed=N                      seed for --order=random
//     --dump-catalog=markdown       print the UB catalog reference and exit
//
// With several input files (or --batch-stats), every translation unit
// runs through ONE shared work-stealing scheduler (batched driver
// mode): program outputs appear on stdout in command-line order,
// per-program reports on stderr, and the exit code is 139 if any
// program is undefined, else 1 if any failed to compile, else 0.
// Results are byte-identical to running each file separately.
// --search-sched=wave in batch mode runs the sequential reference path
// (same outcomes, no shared pool).
//
// Numeric flags are parsed strictly: non-numeric values are a usage
// error (exit 2), never silently coerced.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "support/Strings.h"
#include "ub/Catalog.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cundef;

static void usage() {
  std::fprintf(stderr,
               "usage: kcc [options] file.c [file2.c ...]\n"
               "  --target=lp64|ilp32|wideint\n"
               "  --style=cond|chain|decl\n"
               "  --search=N\n"
               "  --search-jobs=N      (0 = all hardware threads)\n"
               "  --search-engine=fork|replay\n"
               "  --search-sched=steal|wave\n"
               "  --no-dedup\n"
               "  --show-witness\n"
               "  --batch-stats\n"
               "  --order=ltr|rtl|random\n"
               "  --seed=N\n"
               "  --no-static\n"
               "  --dump-catalog=markdown\n");
}

/// Strict numeric flag parsing: `--flag=garbage` is diagnosed and exits
/// 2 (atoi silently mapped it to 0, which --search then clamped to 1 —
/// a typo like --search-jobs=1O quietly serialized the whole search).
static bool parseNumericFlag(const char *Name, const char *Value,
                             unsigned &Out) {
  if (parseUnsigned(Value, Out))
    return true;
  std::fprintf(stderr, "kcc: invalid value '%s' for %s (expected a "
                       "non-negative integer)\n",
               Value, Name);
  return false;
}

/// The per-program stderr tail shared by the single-file and batch
/// paths: truncation honesty, the kcc error report, and the witness.
/// Returns true when the program is undefined.
static bool printProgramReport(const DriverOutcome &O, bool ShowWitness) {
  if (ShowWitness && O.SearchTruncated) {
    // Never let a budget-limited search masquerade as exhaustive: a
    // clean verdict below this line means "no UB found within
    // --search=N runs", not "no order is undefined".
    std::fprintf(stderr,
                 "Search frontier truncated: %u subtree(s) dropped "
                 "unexplored (raise --search to cover them)\n",
                 O.SearchDropped);
  }
  if (!O.anyUb())
    return false;
  std::fputs(O.renderReport().c_str(), stderr);
  if (ShowWitness && !O.DynamicUb.empty()) {
    // The deterministic witness: the evaluation-order decisions that
    // expose the undefinedness (0 = source order, 1 = reversed, one
    // per choice point). Empty = the default order already fails.
    std::string W = "Witness decisions:";
    if (O.SearchWitness.empty())
      W += " (default order)";
    for (uint8_t D : O.SearchWitness)
      W += D ? " 1" : " 0";
    W += "\n";
    std::fputs(W.c_str(), stderr);
  }
  return true;
}

/// The --show-witness stats block: the scheduler counters used to be
/// dropped on the floor; now every search surfaces them.
static void printSearchStats(const DriverOutcome &O) {
  std::fprintf(stderr,
               "Search stats: orders=%u deduped=%u steals=%u evictions=%u "
               "peak-frontier=%u\n",
               O.OrdersExplored, O.OrdersDeduped, O.SearchSteals,
               O.SearchEvictions, O.SearchPeakFrontier);
}

int main(int argc, char **argv) {
  DriverOptions Opts;
  Opts.SearchRuns = 8;
  bool ShowWitness = false;
  bool BatchStats = false;
  std::vector<const char *> Paths;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--dump-catalog=")) {
      const char *Value = Arg + 15;
      if (std::strcmp(Value, "markdown")) {
        usage();
        return 2;
      }
      std::fputs(renderCatalogMarkdown().c_str(), stdout);
      return 0;
    } else if (startsWith(Arg, "--target=")) {
      const char *Value = Arg + 9;
      if (!std::strcmp(Value, "lp64"))
        Opts.Target = TargetConfig::lp64();
      else if (!std::strcmp(Value, "ilp32"))
        Opts.Target = TargetConfig::ilp32();
      else if (!std::strcmp(Value, "wideint"))
        Opts.Target = TargetConfig::wideInt();
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--style=")) {
      const char *Value = Arg + 8;
      if (!std::strcmp(Value, "cond"))
        Opts.Machine.Style = RuleStyle::SideConditions;
      else if (!std::strcmp(Value, "chain"))
        Opts.Machine.Style = RuleStyle::PrecedenceChain;
      else if (!std::strcmp(Value, "decl"))
        Opts.Machine.Style = RuleStyle::Declarative;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--search=")) {
      if (!parseNumericFlag("--search", Arg + 9, Opts.SearchRuns))
        return 2;
      if (Opts.SearchRuns == 0) {
        // A budget of 0 runs cannot even execute the default order;
        // rejecting it keeps the strict-parsing contract (nothing is
        // silently coerced).
        std::fprintf(stderr,
                     "kcc: invalid value '0' for --search (the budget "
                     "must allow at least one run)\n");
        return 2;
      }
    } else if (startsWith(Arg, "--search-jobs=")) {
      // 0 is meaningful: auto-detect hardware_concurrency (resolved in
      // OrderSearch::run so every surface shares the default).
      if (!parseNumericFlag("--search-jobs", Arg + 14, Opts.SearchJobs))
        return 2;
    } else if (startsWith(Arg, "--search-engine=")) {
      const char *Value = Arg + 16;
      if (!std::strcmp(Value, "fork"))
        Opts.SearchSnapshots = true;
      else if (!std::strcmp(Value, "replay"))
        Opts.SearchSnapshots = false;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--search-sched=")) {
      const char *Value = Arg + 15;
      if (!std::strcmp(Value, "steal"))
        Opts.SearchSched = SchedKind::Stealing;
      else if (!std::strcmp(Value, "wave"))
        Opts.SearchSched = SchedKind::Wave;
      else {
        usage();
        return 2;
      }
    } else if (!std::strcmp(Arg, "--no-dedup")) {
      Opts.SearchDedup = false;
    } else if (!std::strcmp(Arg, "--show-witness")) {
      ShowWitness = true;
    } else if (!std::strcmp(Arg, "--batch-stats")) {
      BatchStats = true;
    } else if (startsWith(Arg, "--order=")) {
      const char *Value = Arg + 8;
      if (!std::strcmp(Value, "ltr"))
        Opts.Machine.Order = EvalOrderKind::LeftToRight;
      else if (!std::strcmp(Value, "rtl"))
        Opts.Machine.Order = EvalOrderKind::RightToLeft;
      else if (!std::strcmp(Value, "random"))
        Opts.Machine.Order = EvalOrderKind::Random;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--seed=")) {
      unsigned Seed = 0;
      if (!parseNumericFlag("--seed", Arg + 7, Seed))
        return 2;
      Opts.Machine.Seed = Seed;
    } else if (!std::strcmp(Arg, "--no-static")) {
      Opts.RunStaticChecks = false;
    } else if (Arg[0] == '-') {
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    usage();
    return 2;
  }

  std::vector<BatchInput> Inputs;
  for (const char *Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "kcc: cannot open %s\n", Path);
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Inputs.push_back({Buffer.str(), Path});
  }

  if (Inputs.size() == 1 && !BatchStats) {
    // Single-program mode: the paper's kcc contract, byte-for-byte.
    Driver Drv(Opts);
    DriverOutcome O = Drv.runSource(Inputs[0].Source, Inputs[0].Name);
    if (!O.CompileOk) {
      std::fputs(O.CompileErrors.c_str(), stderr);
      if (!O.anyUb())
        return 1;
    }
    // Program output passes through.
    std::fputs(O.Output.c_str(), stdout);
    bool Ub = printProgramReport(O, ShowWitness);
    if (ShowWitness)
      printSearchStats(O);
    if (Ub)
      return 139; // undefined: report and fail like a crashed process
    return O.ExitCode;
  }

  // Batch mode: every translation unit through one shared scheduler.
  Driver Drv(Opts);
  BatchResult Batch = Drv.runBatch(Inputs);
  bool AnyUb = false, AnyCompileFail = false;
  for (size_t I = 0; I < Batch.Outcomes.size(); ++I) {
    const DriverOutcome &O = Batch.Outcomes[I];
    if (Batch.Outcomes.size() > 1)
      std::fprintf(stderr, "== %s ==\n", Inputs[I].Name.c_str());
    if (!O.CompileOk) {
      std::fputs(O.CompileErrors.c_str(), stderr);
      if (!O.anyUb()) {
        AnyCompileFail = true;
        continue;
      }
    }
    std::fputs(O.Output.c_str(), stdout);
    AnyUb |= printProgramReport(O, ShowWitness);
    if (ShowWitness)
      printSearchStats(O);
  }
  if (BatchStats) {
    std::fprintf(stderr,
                 "Batch stats: programs=%u jobs=%u runs=%llu steals=%llu "
                 "dedup-hits=%llu evictions=%llu peak-frontier=%llu "
                 "wall-ms=%.2f\n",
                 Batch.Stats.Programs, Batch.Stats.Jobs,
                 static_cast<unsigned long long>(Batch.Stats.RunsExecuted),
                 static_cast<unsigned long long>(Batch.Stats.Steals),
                 static_cast<unsigned long long>(Batch.Stats.DedupHits),
                 static_cast<unsigned long long>(
                     Batch.Stats.SnapshotEvictions),
                 static_cast<unsigned long long>(Batch.Stats.PeakFrontier),
                 Batch.Stats.WallMs);
    for (size_t I = 0; I < Batch.Outcomes.size(); ++I) {
      const DriverOutcome &O = Batch.Outcomes[I];
      const char *Verdict = !O.CompileOk && !O.anyUb() ? "compile-error"
                            : O.anyUb()                ? "UNDEFINED"
                                                       : "clean";
      std::fprintf(stderr, "  %s: %s (orders=%u deduped=%u)\n",
                   Inputs[I].Name.c_str(), Verdict, O.OrdersExplored,
                   O.OrdersDeduped);
    }
  }
  if (AnyUb)
    return 139;
  if (AnyCompileFail)
    return 1;
  return Batch.Outcomes.size() == 1 ? Batch.Outcomes[0].ExitCode : 0;
}
