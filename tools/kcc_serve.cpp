//===- tools/kcc_serve.cpp - The kcc analysis daemon ----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// A long-running analysis service: accepts concurrent clients over TCP
// and Unix-domain sockets (the length-prefixed cundef-kcc-v1 protocol,
// docs/SERVE.md) and multiplexes every submission onto ONE warm
// AnalysisEngine, so a fleet of kcc invocations pays pool spawn and
// frontend work once instead of once per process.
//
//   kcc-serve [options]
//     --socket=PATH          listen on a Unix-domain socket
//     --port=N               listen on TCP (127.0.0.1 by default;
//                            0 binds an ephemeral port, printed in the
//                            ready line)
//     --host=ADDR            TCP bind address (IPv4)
//     --max-clients=N        concurrent connections (default 64)
//     --max-inflight=N       per-client in-flight jobs (default 16)
//     --max-queue=N          engine-wide in-flight jobs (default 1024)
//     --workers=N            search-pool threads (0 = hardware)
//     --translation-cache=on|off
//     --result-cache=on|off  engine-wide search-result cache
//
// At least one endpoint is required. The daemon prints one
// "kcc-serve: listening on ..." line per endpoint to stderr once it is
// accepting (scripts wait for those lines), runs until SIGTERM/SIGINT,
// then drains: stops accepting, finishes in-flight jobs, flushes
// results, exits 0.
//
// Flags are validated strictly: non-numeric values, a zero client or
// in-flight bound, an out-of-range port, or a missing endpoint are
// usage errors (exit 2), never silently coerced.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/Strings.h"

#include <csignal>
#include <cstdio>
#include <cstring>

using namespace cundef;

static void usage() {
  std::fprintf(stderr,
               "usage: kcc-serve [options]  (at least one endpoint)\n"
               "  --socket=PATH          Unix-domain socket endpoint\n"
               "  --port=N               TCP endpoint (0 = ephemeral)\n"
               "  --host=ADDR            TCP bind address (default "
               "127.0.0.1)\n"
               "  --max-clients=N        concurrent connections\n"
               "  --max-inflight=N       per-client in-flight jobs\n"
               "  --max-queue=N          engine-wide in-flight jobs\n"
               "  --workers=N            search workers (0 = hardware)\n"
               "  --translation-cache=on|off\n"
               "  --result-cache=on|off\n");
}

static bool parseNumericFlag(const char *Name, const char *Value,
                             unsigned &Out) {
  if (parseUnsigned(Value, Out))
    return true;
  std::fprintf(stderr, "kcc-serve: invalid value '%s' for %s (expected a "
                       "non-negative integer)\n",
               Value, Name);
  return false;
}

static ServeDaemon *ActiveDaemon = nullptr;

static void onSignal(int) {
  // Async-signal-safe: requestStop() is one write(2) to a self-pipe.
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

int main(int argc, char **argv) {
  ServeConfig Cfg;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--socket=")) {
      Cfg.UnixPath = Arg + 9;
      if (Cfg.UnixPath.empty()) {
        std::fprintf(stderr, "kcc-serve: --socket= requires a path\n");
        return 2;
      }
    } else if (startsWith(Arg, "--port=")) {
      unsigned Port = 0;
      if (!parseNumericFlag("--port", Arg + 7, Port))
        return 2;
      if (Port > 65535) {
        std::fprintf(stderr,
                     "kcc-serve: invalid value '%u' for --port "
                     "(expected 0..65535)\n",
                     Port);
        return 2;
      }
      Cfg.UseTcp = true;
      Cfg.TcpPort = Port;
    } else if (startsWith(Arg, "--host=")) {
      Cfg.TcpHost = Arg + 7;
      if (Cfg.TcpHost.empty()) {
        std::fprintf(stderr, "kcc-serve: --host= requires an address\n");
        return 2;
      }
    } else if (startsWith(Arg, "--max-clients=")) {
      if (!parseNumericFlag("--max-clients", Arg + 14, Cfg.MaxClients))
        return 2;
      if (Cfg.MaxClients == 0) {
        std::fprintf(stderr, "kcc-serve: --max-clients must be at least 1\n");
        return 2;
      }
    } else if (startsWith(Arg, "--max-inflight=")) {
      if (!parseNumericFlag("--max-inflight", Arg + 15,
                            Cfg.MaxInflightPerClient))
        return 2;
      if (Cfg.MaxInflightPerClient == 0) {
        std::fprintf(stderr, "kcc-serve: --max-inflight must be at least 1\n");
        return 2;
      }
    } else if (startsWith(Arg, "--max-queue=")) {
      if (!parseNumericFlag("--max-queue", Arg + 12, Cfg.MaxQueueDepth))
        return 2;
      if (Cfg.MaxQueueDepth == 0) {
        std::fprintf(stderr, "kcc-serve: --max-queue must be at least 1\n");
        return 2;
      }
    } else if (startsWith(Arg, "--workers=")) {
      if (!parseNumericFlag("--workers", Arg + 10, Cfg.Engine.Workers))
        return 2;
      // Explicit worker counts mean what they say, even above hardware
      // concurrency (the engine clamp is for request-sized pools).
      if (Cfg.Engine.Workers != 0)
        Cfg.Engine.ClampWorkersToHardware = false;
    } else if (startsWith(Arg, "--translation-cache=")) {
      const char *Value = Arg + 20;
      if (!std::strcmp(Value, "on"))
        ; // the default capacity stands
      else if (!std::strcmp(Value, "off"))
        Cfg.Engine.TranslationCacheEntries = 0;
      else {
        usage();
        return 2;
      }
    } else if (startsWith(Arg, "--result-cache=")) {
      const char *Value = Arg + 15;
      if (!std::strcmp(Value, "on"))
        ; // the default capacity stands
      else if (!std::strcmp(Value, "off"))
        Cfg.Engine.ResultCacheEntries = 0;
      else {
        usage();
        return 2;
      }
    } else {
      usage();
      return 2;
    }
  }
  if (Cfg.UnixPath.empty() && !Cfg.UseTcp) {
    std::fprintf(stderr,
                 "kcc-serve: no endpoint (give --socket=PATH or --port=N)\n");
    usage();
    return 2;
  }

  const std::string UnixPath = Cfg.UnixPath;
  const std::string TcpHost = Cfg.TcpHost;
  const bool UseTcp = Cfg.UseTcp;

  ServeDaemon Daemon(std::move(Cfg));
  std::string Err;
  if (!Daemon.listen(Err)) {
    std::fprintf(stderr, "kcc-serve: %s\n", Err.c_str());
    return 1;
  }

  ActiveDaemon = &Daemon;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  // Ready lines: one per endpoint, emitted only once accepting. The
  // remote CLI test and the bench wait for these (and read the
  // resolved port when --port=0 asked for an ephemeral one).
  if (!UnixPath.empty())
    std::fprintf(stderr, "kcc-serve: listening on unix:%s\n",
                 UnixPath.c_str());
  if (UseTcp)
    std::fprintf(stderr, "kcc-serve: listening on %s:%u\n", TcpHost.c_str(),
                 Daemon.tcpPort());
  std::fprintf(stderr, "kcc-serve: ready (workers=%u)\n",
               Daemon.engine().workers());

  int Code = Daemon.run();
  ActiveDaemon = nullptr;
  return Code;
}
